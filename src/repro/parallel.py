"""Parallel multi-worker batch conversion over a persistent warm pool.

Batch conversion is embarrassingly parallel in exactly the way the
cascade's savepoint discipline guarantees: every probe rolls back, so
both databases are byte-identical before *every* program and the
per-program work is independent of batch order.  The original executor
exploited that with a spawn-per-batch pool, which made parallelism
*slower* than serial on realistic small batches -- process spawn plus
seed-state rehydration cost whole seconds against milliseconds of
work.  This module replaces it with a :class:`WorkerPool` of
long-lived worker processes:

* the coordinator pickles the cascade seed state **once** and ships it
  **once per worker at spawn**, never per batch; each worker
  rehydrates once and stays warm for any number of batches;
* programs are dispatched in **chunks** from a coordinator-side bag of
  tasks (dynamic dispatch: a fast worker completes more chunks, so an
  expensive pathology on one worker no longer stalls a static
  round-robin share);
* worker ``k`` journals its cumulative batch progress to the
  ``<checkpoint>.shard<k>`` file after **every chunk**, so a killed or
  interrupted run resumes exactly as before;
* batches below ``options.parallel_threshold`` pending programs
  auto-degrade to the in-process path (and say why at INFO level) --
  ``--jobs 8`` on a tiny batch must not cost 35x;
* Ctrl-C / SIGTERM inside the pool window **drains** gracefully: no
  new chunks are dispatched, in-flight chunks finish and are
  journaled, every shard is folded into the main checkpoint, and the
  interrupt is re-raised with a resumable journal on disk;
* the coordinator **supervises** the pool: a dead worker's in-flight
  chunks are reclaimed from the dealt-chunk ledger and re-dealt, a
  replacement worker is respawned (exponential backoff with
  deterministic, seed-stable jitter; bounded by
  ``options.max_worker_respawns`` consecutive respawns without
  progress), a chunk that keeps killing workers is bisected until the
  poison program is isolated, and a program that individually kills a
  worker ``options.max_program_retries`` times is **quarantined** with
  a synthesized ``STATUS_QUARANTINED`` report -- the batch completes
  instead of raising.  ``options.program_timeout`` arms the
  interpreter's cooperative watchdog so a hung program times out with
  the same deterministic report serially and in-worker.

The deterministic merge is unchanged from the spawn-per-batch
executor: report summaries come back through the exact render/parse
round trip and are reassembled in program order, per-program metrics
are reattached, worker registry deltas are absorbed via
:class:`~repro.observe.registry.FrozenMetricsSource`, worker span
forests mount under per-worker ``parallel.worker`` roots, and shards
fold into the main journal in program order -- so reports, checkpoint
bytes, and metrics are byte-identical to a serial run at any worker
count, any chunk size, and any dispatch interleaving.

``jobs=1`` (or a batch with at most one pending program) takes the
in-process fast path: no pool, no pickling, no subprocess -- just
:func:`repro.batch.run_batch`.
"""

from __future__ import annotations

import logging
import pickle
import random
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from multiprocessing import get_context
from queue import Empty
from typing import Iterator

from repro.batch import (
    BatchCheckpoint,
    CheckpointError,
    ProgressCallback,
    check_program_names,
    convert_one,
    quarantine_report,
    run_batch,
)
from repro.core.report import BatchReport, ConversionReport
from repro.errors import ReproError
from repro.faultinject import mark_worker_process
from repro.jsonio import remove_durable
from repro.observe.merge import merge_worker_trace
from repro.observe.registry import (
    FrozenMetricsSource,
    get_registry,
    named_counters,
    registry_delta,
)
from repro.observe.tracing import Tracer, current_tracer, span
from repro.options import ConversionOptions
from repro.programs.ast import Program
from repro.strategies.cascade import FallbackCascade

log = logging.getLogger(__name__)

#: Chunks kept in flight per worker: two, so the worker that finishes
#: a chunk always has the next one already queued (the dispatch round
#: trip hides behind real work) while the bag keeps enough undispatched
#: chunks for dynamic rebalancing.
PREFILL = 2

#: Result-queue poll interval; every timeout re-checks worker health.
#: Historic default -- the live value is ``options.poll_interval``.
POLL_SECONDS = 0.2

#: Budget for the graceful-interrupt drain: in-flight chunks get this
#: long to finish and journal before the pool is terminated.  Historic
#: default -- the live value is ``options.drain_timeout``.
DRAIN_SECONDS = 30.0

#: How long ``close()`` waits for a worker to exit before terminating.
CLOSE_SECONDS = 5.0

#: Base of the respawn backoff: respawn ``n`` (since the last sign of
#: progress) sleeps ``BASE * 2**n`` seconds, capped, plus a
#: deterministic jitter seeded by the respawn ordinal -- seed-stable,
#: so chaos runs replay with identical pacing.
RESPAWN_BACKOFF_BASE = 0.02
RESPAWN_BACKOFF_CAP = 1.0


class ParallelExecutionError(ReproError):
    """The worker pool could not finish the batch.

    Individual worker deaths no longer raise this -- the coordinator
    reclaims the dead worker's chunks, respawns a replacement, and
    quarantines poison programs.  What remains fatal is a pool that
    crash-loops without making progress (``max_worker_respawns``
    consecutive respawns with nothing completed, quarantined, or
    narrowed) or a worker shipping a coordinator-level error.  Any
    per-worker checkpoint shards already journaled remain on disk, so
    a ``resume`` run completes only the genuinely unfinished programs.
    """


def _pool_worker(worker_id: int, seed_blob: bytes, task_queue, result_queue):
    """One long-lived worker process.

    Rehydrates the pickled ``(cascade, options)`` seed exactly once
    (unpickling re-registers the engine metrics bundles into *this*
    process's registry, see
    :meth:`repro.engine.metrics.Metrics.__setstate__`), then serves
    ``begin`` / ``chunk`` / ``flush`` / ``exit`` messages until told to
    stop.  SIGINT is ignored: a terminal Ctrl-C reaches the whole
    process group, and it is the coordinator's drain -- not the
    signal -- that must stop a worker, *after* its in-flight chunk is
    journaled.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def _drain_results() -> None:
        # Ran by an injected kill_worker fault just before os._exit:
        # close the result queue and join its feeder thread so a
        # previous chunk's already-queued result is fully written to
        # the pipe rather than torn mid-exit.
        result_queue.close()
        result_queue.join_thread()

    mark_worker_process(_drain_results)
    cascade, options = pickle.loads(seed_blob)
    registry = get_registry()

    journal: BatchCheckpoint | None = None
    names: list[str] = []
    summaries: list[dict] = []
    tracer: Tracer | None = None
    before: dict[str, int] = {}
    calibration_before: dict[str, dict[str, float]] = {}
    clock_base = 0.0
    active = False

    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "exit":
            return
        if kind == "begin":
            _, names, shard_path, trace = message
            journal = BatchCheckpoint(shard_path) if shard_path else None
            if journal is not None and journal.exists():
                # A stale shard from a crashed run the caller chose not
                # to resume must not leak into this batch's merge --
                # durably, so a machine crash cannot resurrect it.
                remove_durable(journal.path)
            summaries = []
            before = registry.snapshot()
            calibration_before = cascade.calibrator.snapshot()
            tracer = Tracer() if trace else None
            if tracer is not None:
                tracer.__enter__()
            clock_base = time.perf_counter()
            active = True
            continue
        if kind == "flush":
            if not active:
                result_queue.put(("flush", worker_id, {}, [], 0.0, {}))
                continue
            if tracer is not None:
                tracer.__exit__(None, None, None)
            spans = (
                [root.to_dict() for root in tracer.roots] if tracer else []
            )
            result_queue.put(
                (
                    "flush",
                    worker_id,
                    registry_delta(before, registry.snapshot()),
                    spans,
                    clock_base,
                    cascade.calibrator.delta(calibration_before),
                )
            )
            tracer = None
            active = False
            continue
        # ("chunk", chunk_id, programs_blob)
        _, chunk_id, programs_blob = message
        try:
            programs: list[Program] = pickle.loads(programs_blob)
            chunk_summaries: list[dict] = []
            chunk_metrics: dict[str, dict[str, int]] = {}
            chunk_costs: dict[str, dict] = {}
            for program in programs:
                with span("batch.program", program=program.name):
                    report = convert_one(cascade, program, options)
                chunk_summaries.append(report.to_summary())
                # A fault that escapes the cascade leaves metrics/cost
                # as None (convert_one's belt-and-braces path); ship
                # that as-is so the merged report matches serial.
                if report.metrics is not None:
                    chunk_metrics[program.name] = dict(report.metrics)
                chunk_costs[program.name] = report.cost
            summaries.extend(chunk_summaries)
            if journal is not None:
                journal.write_summaries(names, summaries)
        except Exception as exc:  # pragma: no cover - shipped upward
            result_queue.put(
                ("error", worker_id, f"{type(exc).__name__}: {exc}")
            )
            continue
        result_queue.put(
            ("chunk", worker_id, chunk_id, chunk_summaries, chunk_metrics,
             chunk_costs)
        )


class WorkerPool:
    """A persistent pool of warm worker processes bound to one seed.

    Construction pickles ``(cascade, options)`` once and spawns
    ``jobs`` worker processes, each receiving the seed bytes exactly
    once; every worker rehydrates on startup and then serves any
    number of batches.  Reuse the pool across batches (via
    ``ParallelExecutor(..., pool=...)`` or
    :func:`repro.api.convert_batch`'s ``pool=``) to amortize spawn and
    rehydration entirely.

    The pool is a context manager; :meth:`close` shuts the workers
    down cleanly.  Savepoint discipline keeps every worker's engines
    byte-identical to the seed between programs, so a warm worker is
    exactly as deterministic as a fresh one.
    """

    def __init__(
        self,
        cascade: FallbackCascade,
        options: ConversionOptions | None = None,
        jobs: int | None = None,
        context: str = "spawn",
    ):
        options = options if options is not None else ConversionOptions()
        self.jobs = jobs if jobs is not None else options.resolved_jobs()
        if self.jobs < 1:
            raise ValueError(f"pool needs >= 1 worker, got {self.jobs}")
        # Spawn, not fork: fork in a threaded parent is deprecated (and
        # unsafe), and spawn gives each worker the clean interpreter
        # the rehydration contract assumes.
        ctx = get_context(context)
        self._ctx = ctx
        self.seed_blob = pickle.dumps((cascade, options))
        self._results = ctx.Queue()
        self._tasks = [ctx.Queue() for _ in range(self.jobs)]
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(k, self.seed_blob, self._tasks[k], self._results),
                name=f"repro-worker-{k}",
                daemon=True,
            )
            for k in range(self.jobs)
        ]
        for proc in self._procs:
            proc.start()
        #: Worker ids taken out of service by the supervisor (their
        #: shard files stay on disk for the merge; their queues stay
        #: allocated so ids never recycle).
        self.retired: set[int] = set()
        self.closed = False

    # -- messaging -----------------------------------------------------

    def send(self, worker_id: int, message: tuple) -> None:
        self._tasks[worker_id].put(message)

    def receive(self, timeout: float) -> tuple:
        """The next worker result (raises ``queue.Empty`` on timeout)."""
        return self._results.get(timeout=timeout)

    def flush(self, worker_id: int) -> None:
        self.send(worker_id, ("flush",))

    # -- health and lifecycle ------------------------------------------

    def active_ids(self) -> list[int]:
        """Worker ids currently in service (spawned, not retired)."""
        return [
            k for k in range(len(self._procs)) if k not in self.retired
        ]

    def dead_workers(self) -> list[int]:
        """In-service workers whose process has exited."""
        return [
            k
            for k, proc in enumerate(self._procs)
            if k not in self.retired and not proc.is_alive()
        ]

    def retire(self, worker_id: int) -> None:
        """Take a (dead) worker out of service.  Its shard file stays
        on disk -- the chunks it journaled before dying are folded into
        the main checkpoint at merge time."""
        self.retired.add(worker_id)

    def respawn(self) -> int:
        """Spawn a replacement worker under a fresh id.

        A fresh id, never a recycled one: the dead worker's shard must
        survive for the merge, so the replacement gets its own shard
        path (and its own task queue -- messages queued to the dead
        worker are reclaimed from the coordinator's ledger, not from
        its queue).
        """
        worker_id = len(self._procs)
        task_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(worker_id, self.seed_blob, task_queue, self._results),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        self._tasks.append(task_queue)
        self._procs.append(proc)
        proc.start()
        return worker_id

    def worker_pids(self) -> list[int]:
        """Live worker PIDs (stable across batches: the warmness proof)."""
        return [
            proc.pid
            for k, proc in enumerate(self._procs)
            if k not in self.retired
        ]

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self.closed:
            return
        self.closed = True
        for worker_id in range(len(self._tasks)):
            try:
                self.send(worker_id, ("exit",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for proc in self._procs:
            proc.join(timeout=CLOSE_SECONDS)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=CLOSE_SECONDS)

    def terminate(self) -> None:
        """Hard-kill the workers (drain deadline exceeded)."""
        self.closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=CLOSE_SECONDS)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def _interrupt_on_sigterm() -> Iterator[None]:
    """Convert SIGTERM into KeyboardInterrupt inside the pool window,
    so an orchestrator's polite kill takes the same graceful-drain path
    as a terminal Ctrl-C.  No-op outside the main thread (signal
    handlers cannot be installed elsewhere)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class ParallelExecutor:
    """Coordinates a multi-process batch conversion over a warm pool.

    The executor owns the deterministic merge: reports come back in
    program order regardless of which worker converted what, checkpoint
    shards fold into the main journal in program order, worker metrics
    are absorbed into the coordinator registry, and worker span forests
    mount under per-worker roots on the active tracer.

    Pass ``pool=`` to reuse a :class:`WorkerPool` across batches (the
    caller owns its lifecycle); otherwise the executor spins one up for
    the run and closes it after.  With an external pool the pool's
    seed state and worker count govern the conversion.
    """

    def __init__(
        self,
        cascade: FallbackCascade,
        programs: list[Program],
        options: ConversionOptions | None = None,
        pool: WorkerPool | None = None,
        progress: ProgressCallback | None = None,
    ):
        self.cascade = cascade
        self.programs = list(programs)
        self.options = options if options is not None else ConversionOptions()
        self.pool = pool
        #: Per-program progress callback (see
        #: :data:`repro.batch.ProgressCallback`).  On the pool path it
        #: fires in completion order, once per program, as chunk
        #: results reach the coordinator -- after the producing worker
        #: journaled its shard, so a callback that raises
        #: ``KeyboardInterrupt`` (the service's cooperative stop)
        #: drains to a checkpoint that resumes past every reported
        #: program.
        self.progress = progress
        #: Strong references to absorbed worker deltas (the registry
        #: holds sources weakly).
        self.absorbed: list[FrozenMetricsSource] = []

    def run(self) -> BatchReport:
        """Convert the batch; equivalent to :func:`run_batch` output."""
        options = self.options
        names = check_program_names(self.programs)
        jobs = self.pool.jobs if self.pool is not None else options.resolved_jobs()

        journal = BatchCheckpoint(options.checkpoint) if options.checkpoint else None
        done: dict[str, ConversionReport] = {}
        if journal is not None and options.resume:
            done = journal.recover(names)
        pending = [p for p in self.programs if p.name not in done]

        if jobs <= 1 or len(pending) <= 1:
            # In-process fast path: no pool, no pickling, no fork.
            return run_batch(
                self.cascade, self.programs, options, progress=self.progress
            )
        threshold = options.resolved_parallel_threshold(jobs)
        if self.pool is None and len(pending) < threshold:
            # Auto-degrade: below the threshold the pool's spawn and
            # rehydration cost dwarfs the conversion work.  An external
            # warm pool skips this check -- its marginal cost is nil.
            log.info(
                "parallel: %d pending program(s) is below the pool "
                "threshold %d for jobs=%d; converting in-process "
                "(spawn + seed rehydration would dominate)",
                len(pending),
                threshold,
                jobs,
            )
            return run_batch(
                self.cascade, self.programs, options, progress=self.progress
            )

        pool = self.pool
        owned = pool is None
        if owned:
            pool = WorkerPool(
                self.cascade, options, jobs=min(jobs, len(pending))
            )
        trace = current_tracer() is not None
        coordinator_base = time.perf_counter()
        try:
            with _interrupt_on_sigterm():
                try:
                    chunk_results, flushes, quarantined = self._run_pool(
                        pool, pending, names, journal, trace, done
                    )
                except (KeyboardInterrupt, SystemExit):
                    self._drain(pool, names, journal)
                    raise
        finally:
            if owned:
                pool.close()

        return self._merge(
            chunk_results,
            flushes,
            names,
            done,
            journal,
            coordinator_base,
            quarantined,
        )

    # -- the pool ------------------------------------------------------

    def _run_pool(
        self,
        pool: WorkerPool,
        pending: list[Program],
        names: list[str],
        journal: BatchCheckpoint | None,
        trace: bool,
        done: dict[str, ConversionReport],
    ) -> tuple[
        list[tuple[list[dict], dict, dict]],
        list[tuple],
        dict[str, ConversionReport],
    ]:
        """Dispatch chunks dynamically, supervising the pool.

        Returns ``(chunk_results, flushes, quarantined)``: chunk
        results in arrival order (the merge re-sorts by program), one
        flush per surviving worker in worker-id order, and the reports
        synthesized for quarantined poison programs.

        Supervision: every result-queue poll timeout re-checks worker
        health.  A dead worker is retired, its dealt-but-unjournaled
        chunks are reclaimed from the ledger and re-dealt (the first
        chunk not fully present in its shard journal is the suspect:
        shards are journaled after every chunk, so that is exactly
        where the worker died), suspect chunks are bisected until the
        poison program is isolated, and a program whose chunk-of-one
        kills ``options.max_program_retries`` workers is quarantined
        with the same synthesized report the serial engine produces.
        A replacement worker is respawned under backoff whenever
        re-dealt work exists; ``options.max_worker_respawns``
        consecutive respawns without progress (a chunk completed,
        quarantined, or narrowed) fail the batch instead of
        crash-looping forever.
        """
        options = self.options
        if options.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be > 0, got {options.poll_interval}"
            )
        if options.drain_timeout < 0:
            raise ValueError(
                f"drain_timeout must be >= 0, got {options.drain_timeout}"
            )
        chunk_size = options.resolved_chunk_size(len(pending), pool.jobs)
        supervision = named_counters("supervision")
        retries = max(1, options.max_program_retries)

        bag: deque[tuple[int, list[Program]]] = deque()
        next_chunk_id = 0
        for index in range(0, len(pending), chunk_size):
            bag.append((next_chunk_id, pending[index : index + chunk_size]))
            next_chunk_id += 1

        #: worker id -> chunks dealt to it and not yet completed, in
        #: deal order (workers process their queue FIFO).
        ledger: dict[int, deque[tuple[int, list[Program]]]] = {}
        kill_counts: dict[str, int] = {}
        quarantined: dict[str, ConversionReport] = {}
        remaining = {program.name for program in pending}
        unproductive_respawns = 0
        total_respawns = 0

        progress = self.progress
        total = len(names)
        settled = 0
        reported: set[str] = set()

        def notify(report: ConversionReport, resumed: bool = False) -> None:
            # Once per program, in completion order; re-dealt duplicate
            # chunk results are filtered on the program name.  Raising
            # here (the service's cooperative stop) propagates into the
            # graceful-drain path with the reporting worker's shard
            # already journaled.
            nonlocal settled
            if progress is None or report.program_name in reported:
                return
            reported.add(report.program_name)
            settled += 1
            progress(report, settled, total, resumed)

        for name in names:
            if name in done:
                notify(done[name], resumed=True)

        def begin(worker_id: int) -> None:
            shard = (
                str(journal.shard_path(worker_id))
                if journal is not None
                else None
            )
            pool.send(worker_id, ("begin", names, shard, trace))
            ledger[worker_id] = deque()

        def fill(worker_id: int) -> None:
            dealt = ledger.get(worker_id)
            if dealt is None:
                return
            while len(dealt) < PREFILL and bag:
                chunk_id, chunk = bag.popleft()
                pool.send(
                    worker_id, ("chunk", chunk_id, pickle.dumps(chunk))
                )
                dealt.append((chunk_id, chunk))

        def journal_quarantine() -> None:
            # Quarantined programs never complete in any worker, so
            # their summaries go into the *main* checkpoint directly
            # (together with any resumed reports); the shard merge
            # folds the union, and an interrupt or crash at any moment
            # leaves them journaled.
            if journal is None:
                return
            summaries = {
                name: report.to_summary() for name, report in done.items()
            }
            summaries.update(
                {
                    name: report.to_summary()
                    for name, report in quarantined.items()
                }
            )
            journal.write_summaries(
                names,
                [summaries[name] for name in names if name in summaries],
            )

        def quarantine(program: Program) -> None:
            report = quarantine_report(
                program.name,
                kill_counts[program.name],
                options.fault_plan,
            )
            quarantined[program.name] = report
            remaining.discard(program.name)
            supervision.bump("quarantined")
            journal_quarantine()
            notify(report)
            log.warning(
                "parallel: quarantined %s after it killed %d worker(s)",
                program.name,
                kill_counts[program.name],
            )

        def journaled_names(worker_id: int) -> set[str]:
            # What the dead worker durably finished: its shard is
            # rewritten after every chunk, so the first dealt chunk
            # not fully present in it is where the worker died.
            if journal is None:
                return set()
            shard = BatchCheckpoint(journal.shard_path(worker_id))
            if not shard.exists():
                return set()
            try:
                return set(shard.completed_summaries(names))
            except CheckpointError:
                return set()

        def handle_death(worker_id: int) -> None:
            nonlocal next_chunk_id, total_respawns, unproductive_respawns
            dealt = ledger.pop(worker_id, None) or deque()
            pool.retire(worker_id)
            finished = journaled_names(worker_id)
            progressed = False
            suspect_found = False
            for chunk_id, chunk in dealt:
                complete = all(p.name in finished for p in chunk)
                if not suspect_found and not complete:
                    # The chunk the worker died inside.
                    suspect_found = True
                    progressed = True
                    if len(chunk) == 1:
                        program = chunk[0]
                        kill_counts[program.name] = (
                            kill_counts.get(program.name, 0) + 1
                        )
                        if kill_counts[program.name] >= retries:
                            quarantine(program)
                        else:
                            bag.append((chunk_id, chunk))
                            supervision.bump("chunks_redealt")
                    else:
                        # Bisect: the poison program is in here
                        # somewhere; halving isolates it in O(log n)
                        # redeliveries while innocent neighbours
                        # convert on the way.
                        mid = (len(chunk) + 1) // 2
                        log.warning(
                            "parallel: worker %d died in a %d-program "
                            "chunk; bisecting for the poison program",
                            worker_id,
                            len(chunk),
                        )
                        for half in (chunk[:mid], chunk[mid:]):
                            bag.append((next_chunk_id, half))
                            next_chunk_id += 1
                            supervision.bump("chunks_redealt")
                else:
                    # Innocent: journaled already (its result may be in
                    # flight or lost with the worker -- re-running is
                    # deterministic and the merge dedups by name) or
                    # dealt behind the suspect and never started.
                    bag.append((chunk_id, chunk))
                    supervision.bump("chunks_redealt")
            if not bag:
                # Nothing to re-deal; surviving workers hold the rest.
                return
            if not progressed:
                # Died holding no unfinished work: the canary of a
                # crash-looping pool (e.g. seed state that cannot
                # rehydrate), which re-dealing cannot fix.
                unproductive_respawns += 1
                if unproductive_respawns > max(
                    0, options.max_worker_respawns
                ):
                    raise ParallelExecutionError(
                        f"worker pool is crash-looping: "
                        f"{unproductive_respawns} consecutive respawns "
                        "without progress; completed programs are "
                        "journaled in the checkpoint shards -- rerun "
                        "with resume to finish the batch"
                    )
            total_respawns += 1
            supervision.bump("respawns")
            self._backoff(total_respawns, unproductive_respawns)
            replacement = pool.respawn()
            log.warning(
                "parallel: worker %d died; respawned replacement %d "
                "(%d chunk(s) re-dealt)",
                worker_id,
                replacement,
                len(bag),
            )
            begin(replacement)
            fill(replacement)

        if not pool.active_ids():
            # A warm external pool whose every worker was retired by a
            # previous chaotic batch: revive it to full strength.
            for _ in range(pool.jobs):
                pool.respawn()
        for worker_id in pool.active_ids():
            begin(worker_id)
        for worker_id in pool.active_ids():
            fill(worker_id)

        chunk_results: list[tuple[list[dict], dict, dict]] = []
        while remaining:
            message = self._receive(pool)
            kind = message[0]
            if kind == "dead":
                for worker_id in message[1]:
                    handle_death(worker_id)
                for worker_id in pool.active_ids():
                    fill(worker_id)
            elif kind == "chunk":
                _, worker_id, chunk_id, summaries, metrics, costs = message
                chunk_results.append((summaries, metrics, costs))
                unproductive_respawns = 0
                dealt = ledger.get(worker_id)
                if dealt is not None:
                    for index, (dealt_id, _chunk) in enumerate(dealt):
                        if dealt_id == chunk_id:
                            del dealt[index]
                            break
                for summary in summaries:
                    remaining.discard(summary["program"])
                if progress is not None:
                    for summary in summaries:
                        if summary["program"] in reported:
                            continue
                        report = ConversionReport.from_summary(summary)
                        raw = metrics.get(report.program_name)
                        report.metrics = dict(raw) if raw is not None else None
                        report.cost = costs.get(report.program_name)
                        notify(report)
                fill(worker_id)
            elif kind == "flush":  # pragma: no cover - defensive
                continue
            else:  # ("error", worker_id, detail)
                raise ParallelExecutionError(
                    f"worker {message[1]} failed: {message[2]}; "
                    "completed programs are journaled in the checkpoint "
                    "shards -- rerun with resume to finish the batch"
                )

        # Every program is accounted for; flush the survivors for
        # their observability deltas (metrics, spans, calibration).
        expected = set(pool.active_ids())
        for worker_id in sorted(expected):
            pool.flush(worker_id)
        flushes: dict[int, tuple] = {}
        while expected - set(flushes):
            message = self._receive(pool)
            kind = message[0]
            if kind == "flush":
                if message[1] in expected:
                    flushes[message[1]] = message
            elif kind == "chunk":
                # A re-dealt duplicate whose original result raced the
                # end of the batch; keep it -- the merge dedups.
                chunk_results.append((message[3], message[4], message[5]))
            elif kind == "dead":
                for worker_id in message[1]:
                    pool.retire(worker_id)
                    if worker_id in expected:
                        expected.discard(worker_id)
                        log.warning(
                            "parallel: worker %d died during flush; "
                            "its observability delta is lost",
                            worker_id,
                        )
            else:  # pragma: no cover - defensive
                raise ParallelExecutionError(
                    f"worker {message[1]} failed during flush: "
                    f"{message[2]}"
                )
        ordered_flushes = [flushes[k] for k in sorted(flushes)]
        return chunk_results, ordered_flushes, quarantined

    def _backoff(self, total_respawns: int, unproductive: int) -> None:
        """Sleep before a respawn: exponential in the consecutive
        no-progress count, plus a small deterministic jitter seeded by
        the respawn ordinal (seed-stable: chaos replays pace
        identically; jitter still decorrelates respawn storms when
        several supervisors share a machine)."""
        delay = min(
            RESPAWN_BACKOFF_CAP,
            RESPAWN_BACKOFF_BASE * (2 ** min(unproductive, 6)),
        )
        jitter = random.Random(f"respawn:{total_respawns}").uniform(
            0.0, RESPAWN_BACKOFF_BASE
        )
        time.sleep(delay + jitter)

    def _receive(self, pool: WorkerPool) -> tuple:
        """Wait for the next worker message, watching pool health.

        A separate method so the fault-injection harness can arm the
        coordinator's receive path (e.g. raising KeyboardInterrupt to
        model a mid-batch Ctrl-C at a precise point).  Dead workers are
        reported as a synthetic ``("dead", [worker_id, ...])`` message
        for the supervision loop to reclaim and respawn."""
        while True:
            try:
                return pool.receive(timeout=self.options.poll_interval)
            except Empty:
                dead = pool.dead_workers()
                if dead:
                    return ("dead", dead)

    def _drain(
        self,
        pool: WorkerPool,
        names: list[str],
        journal: BatchCheckpoint | None,
    ) -> None:
        """Graceful-interrupt path: let in-flight chunks finish and
        journal, stop dispatching, fold every shard into the main
        checkpoint, and leave the pool idle (warm) or terminated.

        Called with the interrupt pending; the caller re-raises it once
        the journal is resumable."""
        active = set(pool.active_ids())
        log.warning(
            "parallel: interrupted -- draining %d worker(s), "
            "in-flight chunks will be journaled",
            len(active),
        )
        deadline = time.monotonic() + self.options.drain_timeout
        try:
            for worker_id in sorted(active):
                pool.flush(worker_id)
            flushed: set[int] = set()
            while (
                len(flushed) < len(active)
                and time.monotonic() < deadline
            ):
                try:
                    message = pool.receive(
                        timeout=self.options.poll_interval
                    )
                except Empty:
                    if not set(pool.active_ids()) - set(
                        pool.dead_workers()
                    ):
                        break
                    continue
                if message[0] == "flush":
                    flushed.add(message[1])
            if len(flushed) < len(active):
                log.warning(
                    "parallel: drain deadline exceeded; terminating workers"
                )
                pool.terminate()
        except (KeyboardInterrupt, SystemExit):
            # A second interrupt mid-drain: stop waiting, kill the pool,
            # still fold whatever the shards already hold.
            pool.terminate()
        finally:
            if journal is not None:
                journal.merge_shards(names)
                log.warning(
                    "parallel: progress journaled to %s -- rerun with "
                    "resume to finish the batch",
                    journal.path,
                )

    # -- the deterministic merge --------------------------------------

    def _merge(
        self,
        chunk_results: list[tuple[list[dict], dict, dict]],
        flushes: list[tuple],
        names: list[str],
        done: dict[str, ConversionReport],
        journal: BatchCheckpoint | None,
        coordinator_base: float,
        quarantined: dict[str, ConversionReport] | None = None,
    ) -> BatchReport:
        by_name: dict[str, ConversionReport] = dict(done)
        if quarantined:
            by_name.update(quarantined)
        for summaries, metrics, costs in chunk_results:
            for summary in summaries:
                report = ConversionReport.from_summary(summary)
                raw_metrics = metrics.get(report.program_name)
                report.metrics = (dict(raw_metrics)
                                  if raw_metrics is not None else None)
                report.cost = costs.get(report.program_name)
                by_name[report.program_name] = report
        for _, worker_id, delta, spans, clock_base, calibration in flushes:
            self._absorb_registry(delta)
            self._absorb_trace(worker_id, spans, clock_base, coordinator_base,
                               delta)
            # Fold the worker's calibration samples into the seed
            # cascade, exactly as a serial run would have observed them.
            self.cascade.calibrator.absorb(calibration)

        missing = [name for name in names if name not in by_name]
        if missing:
            raise ParallelExecutionError(
                f"parallel batch lost programs: {missing}"
            )

        if journal is not None:
            journal.merge_shards(names)

        batch = BatchReport()
        for name in names:
            batch.add(by_name[name])
        return batch

    def _absorb_registry(self, delta: dict[str, int]) -> None:
        if not delta:
            return
        source = FrozenMetricsSource(delta)
        self.absorbed.append(source)
        get_registry().register(source)

    def _absorb_trace(
        self,
        worker_id: int,
        spans: list[dict],
        clock_base: float,
        coordinator_base: float,
        delta: dict[str, int] | None = None,
    ) -> None:
        tracer = current_tracer()
        if tracer is None or not spans:
            return
        cost_attrs = {
            name.replace(".", "_"): value
            for name, value in (delta or {}).items()
            if name.startswith("cost.")
        }
        merge_worker_trace(
            tracer,
            worker_id,
            spans,
            worker_base=clock_base,
            coordinator_base=coordinator_base,
            **cost_attrs,
        )


def run_parallel_batch(
    cascade: FallbackCascade,
    programs: list[Program],
    options: ConversionOptions | None = None,
    pool: WorkerPool | None = None,
    progress: ProgressCallback | None = None,
) -> BatchReport:
    """Run a batch with ``options.jobs`` workers (function form)."""
    return ParallelExecutor(
        cascade, programs, options, pool=pool, progress=progress
    ).run()


__all__ = [
    "ParallelExecutionError",
    "ParallelExecutor",
    "WorkerPool",
    "run_parallel_batch",
]
