"""Parallel multi-worker batch conversion over a persistent warm pool.

Batch conversion is embarrassingly parallel in exactly the way the
cascade's savepoint discipline guarantees: every probe rolls back, so
both databases are byte-identical before *every* program and the
per-program work is independent of batch order.  The original executor
exploited that with a spawn-per-batch pool, which made parallelism
*slower* than serial on realistic small batches -- process spawn plus
seed-state rehydration cost whole seconds against milliseconds of
work.  This module replaces it with a :class:`WorkerPool` of
long-lived worker processes:

* the coordinator pickles the cascade seed state **once** and ships it
  **once per worker at spawn**, never per batch; each worker
  rehydrates once and stays warm for any number of batches;
* programs are dispatched in **chunks** from a coordinator-side bag of
  tasks (dynamic dispatch: a fast worker completes more chunks, so an
  expensive pathology on one worker no longer stalls a static
  round-robin share);
* worker ``k`` journals its cumulative batch progress to the
  ``<checkpoint>.shard<k>`` file after **every chunk**, so a killed or
  interrupted run resumes exactly as before;
* batches below ``options.parallel_threshold`` pending programs
  auto-degrade to the in-process path (and say why at INFO level) --
  ``--jobs 8`` on a tiny batch must not cost 35x;
* Ctrl-C / SIGTERM inside the pool window **drains** gracefully: no
  new chunks are dispatched, in-flight chunks finish and are
  journaled, every shard is folded into the main checkpoint, and the
  interrupt is re-raised with a resumable journal on disk.

The deterministic merge is unchanged from the spawn-per-batch
executor: report summaries come back through the exact render/parse
round trip and are reassembled in program order, per-program metrics
are reattached, worker registry deltas are absorbed via
:class:`~repro.observe.registry.FrozenMetricsSource`, worker span
forests mount under per-worker ``parallel.worker`` roots, and shards
fold into the main journal in program order -- so reports, checkpoint
bytes, and metrics are byte-identical to a serial run at any worker
count, any chunk size, and any dispatch interleaving.

``jobs=1`` (or a batch with at most one pending program) takes the
in-process fast path: no pool, no pickling, no subprocess -- just
:func:`repro.batch.run_batch`.
"""

from __future__ import annotations

import logging
import pickle
import signal
import threading
import time
from contextlib import contextmanager
from multiprocessing import get_context
from queue import Empty
from typing import Iterator

from repro.batch import (
    BatchCheckpoint,
    check_program_names,
    convert_one,
    run_batch,
)
from repro.core.report import BatchReport, ConversionReport
from repro.errors import ReproError
from repro.observe.merge import merge_worker_trace
from repro.observe.registry import (
    FrozenMetricsSource,
    get_registry,
    registry_delta,
)
from repro.observe.tracing import Tracer, current_tracer, span
from repro.options import ConversionOptions
from repro.programs.ast import Program
from repro.strategies.cascade import FallbackCascade

log = logging.getLogger(__name__)

#: Chunks kept in flight per worker: two, so the worker that finishes
#: a chunk always has the next one already queued (the dispatch round
#: trip hides behind real work) while the bag keeps enough undispatched
#: chunks for dynamic rebalancing.
PREFILL = 2

#: Result-queue poll interval; every timeout re-checks worker health.
POLL_SECONDS = 0.2

#: Budget for the graceful-interrupt drain: in-flight chunks get this
#: long to finish and journal before the pool is terminated.
DRAIN_SECONDS = 30.0

#: How long ``close()`` waits for a worker to exit before terminating.
CLOSE_SECONDS = 5.0


class ParallelExecutionError(ReproError):
    """The worker pool died before the batch finished.

    Any per-worker checkpoint shards already journaled remain on disk,
    so a ``resume`` run completes only the genuinely unfinished
    programs.
    """


def _pool_worker(worker_id: int, seed_blob: bytes, task_queue, result_queue):
    """One long-lived worker process.

    Rehydrates the pickled ``(cascade, options)`` seed exactly once
    (unpickling re-registers the engine metrics bundles into *this*
    process's registry, see
    :meth:`repro.engine.metrics.Metrics.__setstate__`), then serves
    ``begin`` / ``chunk`` / ``flush`` / ``exit`` messages until told to
    stop.  SIGINT is ignored: a terminal Ctrl-C reaches the whole
    process group, and it is the coordinator's drain -- not the
    signal -- that must stop a worker, *after* its in-flight chunk is
    journaled.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    cascade, options = pickle.loads(seed_blob)
    registry = get_registry()

    journal: BatchCheckpoint | None = None
    names: list[str] = []
    summaries: list[dict] = []
    tracer: Tracer | None = None
    before: dict[str, int] = {}
    calibration_before: dict[str, dict[str, float]] = {}
    clock_base = 0.0
    active = False

    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "exit":
            return
        if kind == "begin":
            _, names, shard_path, trace = message
            journal = BatchCheckpoint(shard_path) if shard_path else None
            if journal is not None and journal.exists():
                # A stale shard from a crashed run the caller chose not
                # to resume must not leak into this batch's merge.
                journal.path.unlink()
            summaries = []
            before = registry.snapshot()
            calibration_before = cascade.calibrator.snapshot()
            tracer = Tracer() if trace else None
            if tracer is not None:
                tracer.__enter__()
            clock_base = time.perf_counter()
            active = True
            continue
        if kind == "flush":
            if not active:
                result_queue.put(("flush", worker_id, {}, [], 0.0, {}))
                continue
            if tracer is not None:
                tracer.__exit__(None, None, None)
            spans = (
                [root.to_dict() for root in tracer.roots] if tracer else []
            )
            result_queue.put(
                (
                    "flush",
                    worker_id,
                    registry_delta(before, registry.snapshot()),
                    spans,
                    clock_base,
                    cascade.calibrator.delta(calibration_before),
                )
            )
            tracer = None
            active = False
            continue
        # ("chunk", chunk_id, programs_blob)
        _, chunk_id, programs_blob = message
        try:
            programs: list[Program] = pickle.loads(programs_blob)
            chunk_summaries: list[dict] = []
            chunk_metrics: dict[str, dict[str, int]] = {}
            chunk_costs: dict[str, dict] = {}
            for program in programs:
                with span("batch.program", program=program.name):
                    report = convert_one(cascade, program, options)
                chunk_summaries.append(report.to_summary())
                # A fault that escapes the cascade leaves metrics/cost
                # as None (convert_one's belt-and-braces path); ship
                # that as-is so the merged report matches serial.
                if report.metrics is not None:
                    chunk_metrics[program.name] = dict(report.metrics)
                chunk_costs[program.name] = report.cost
            summaries.extend(chunk_summaries)
            if journal is not None:
                journal.write_summaries(names, summaries)
        except Exception as exc:  # pragma: no cover - shipped upward
            result_queue.put(
                ("error", worker_id, f"{type(exc).__name__}: {exc}")
            )
            continue
        result_queue.put(
            ("chunk", worker_id, chunk_id, chunk_summaries, chunk_metrics,
             chunk_costs)
        )


class WorkerPool:
    """A persistent pool of warm worker processes bound to one seed.

    Construction pickles ``(cascade, options)`` once and spawns
    ``jobs`` worker processes, each receiving the seed bytes exactly
    once; every worker rehydrates on startup and then serves any
    number of batches.  Reuse the pool across batches (via
    ``ParallelExecutor(..., pool=...)`` or
    :func:`repro.api.convert_batch`'s ``pool=``) to amortize spawn and
    rehydration entirely.

    The pool is a context manager; :meth:`close` shuts the workers
    down cleanly.  Savepoint discipline keeps every worker's engines
    byte-identical to the seed between programs, so a warm worker is
    exactly as deterministic as a fresh one.
    """

    def __init__(
        self,
        cascade: FallbackCascade,
        options: ConversionOptions | None = None,
        jobs: int | None = None,
        context: str = "spawn",
    ):
        options = options if options is not None else ConversionOptions()
        self.jobs = jobs if jobs is not None else options.resolved_jobs()
        if self.jobs < 1:
            raise ValueError(f"pool needs >= 1 worker, got {self.jobs}")
        # Spawn, not fork: fork in a threaded parent is deprecated (and
        # unsafe), and spawn gives each worker the clean interpreter
        # the rehydration contract assumes.
        ctx = get_context(context)
        self.seed_blob = pickle.dumps((cascade, options))
        self._results = ctx.Queue()
        self._tasks = [ctx.Queue() for _ in range(self.jobs)]
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(k, self.seed_blob, self._tasks[k], self._results),
                name=f"repro-worker-{k}",
                daemon=True,
            )
            for k in range(self.jobs)
        ]
        for proc in self._procs:
            proc.start()
        self.closed = False

    # -- messaging -----------------------------------------------------

    def send(self, worker_id: int, message: tuple) -> None:
        self._tasks[worker_id].put(message)

    def receive(self, timeout: float) -> tuple:
        """The next worker result (raises ``queue.Empty`` on timeout)."""
        return self._results.get(timeout=timeout)

    def begin_batch(
        self,
        names: list[str],
        shard_paths: "list[str | None]",
        trace: bool,
    ) -> None:
        for worker_id in range(self.jobs):
            self.send(
                worker_id, ("begin", names, shard_paths[worker_id], trace)
            )

    def flush(self, worker_id: int) -> None:
        self.send(worker_id, ("flush",))

    # -- health and lifecycle ------------------------------------------

    def dead_workers(self) -> list[int]:
        return [
            k for k, proc in enumerate(self._procs) if not proc.is_alive()
        ]

    def worker_pids(self) -> list[int]:
        """Live worker PIDs (stable across batches: the warmness proof)."""
        return [proc.pid for proc in self._procs]

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        if self.closed:
            return
        self.closed = True
        for worker_id in range(self.jobs):
            try:
                self.send(worker_id, ("exit",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for proc in self._procs:
            proc.join(timeout=CLOSE_SECONDS)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=CLOSE_SECONDS)

    def terminate(self) -> None:
        """Hard-kill the workers (drain deadline exceeded)."""
        self.closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=CLOSE_SECONDS)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def _interrupt_on_sigterm() -> Iterator[None]:
    """Convert SIGTERM into KeyboardInterrupt inside the pool window,
    so an orchestrator's polite kill takes the same graceful-drain path
    as a terminal Ctrl-C.  No-op outside the main thread (signal
    handlers cannot be installed elsewhere)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def handler(signum, frame):
        raise KeyboardInterrupt(f"signal {signum}")

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class ParallelExecutor:
    """Coordinates a multi-process batch conversion over a warm pool.

    The executor owns the deterministic merge: reports come back in
    program order regardless of which worker converted what, checkpoint
    shards fold into the main journal in program order, worker metrics
    are absorbed into the coordinator registry, and worker span forests
    mount under per-worker roots on the active tracer.

    Pass ``pool=`` to reuse a :class:`WorkerPool` across batches (the
    caller owns its lifecycle); otherwise the executor spins one up for
    the run and closes it after.  With an external pool the pool's
    seed state and worker count govern the conversion.
    """

    def __init__(
        self,
        cascade: FallbackCascade,
        programs: list[Program],
        options: ConversionOptions | None = None,
        pool: WorkerPool | None = None,
    ):
        self.cascade = cascade
        self.programs = list(programs)
        self.options = options if options is not None else ConversionOptions()
        self.pool = pool
        #: Strong references to absorbed worker deltas (the registry
        #: holds sources weakly).
        self.absorbed: list[FrozenMetricsSource] = []

    def run(self) -> BatchReport:
        """Convert the batch; equivalent to :func:`run_batch` output."""
        options = self.options
        names = check_program_names(self.programs)
        jobs = self.pool.jobs if self.pool is not None else options.resolved_jobs()

        journal = BatchCheckpoint(options.checkpoint) if options.checkpoint else None
        done: dict[str, ConversionReport] = {}
        if journal is not None and options.resume:
            done = journal.recover(names)
        pending = [p for p in self.programs if p.name not in done]

        if jobs <= 1 or len(pending) <= 1:
            # In-process fast path: no pool, no pickling, no fork.
            return run_batch(self.cascade, self.programs, options)
        threshold = options.resolved_parallel_threshold(jobs)
        if self.pool is None and len(pending) < threshold:
            # Auto-degrade: below the threshold the pool's spawn and
            # rehydration cost dwarfs the conversion work.  An external
            # warm pool skips this check -- its marginal cost is nil.
            log.info(
                "parallel: %d pending program(s) is below the pool "
                "threshold %d for jobs=%d; converting in-process "
                "(spawn + seed rehydration would dominate)",
                len(pending),
                threshold,
                jobs,
            )
            return run_batch(self.cascade, self.programs, options)

        pool = self.pool
        owned = pool is None
        if owned:
            pool = WorkerPool(
                self.cascade, options, jobs=min(jobs, len(pending))
            )
        trace = current_tracer() is not None
        coordinator_base = time.perf_counter()
        try:
            with _interrupt_on_sigterm():
                try:
                    chunk_results, flushes = self._run_pool(
                        pool, pending, names, journal, trace
                    )
                except (KeyboardInterrupt, SystemExit):
                    self._drain(pool, names, journal)
                    raise
        finally:
            if owned:
                pool.close()

        return self._merge(
            chunk_results, flushes, names, done, journal, coordinator_base
        )

    # -- the pool ------------------------------------------------------

    def _run_pool(
        self,
        pool: WorkerPool,
        pending: list[Program],
        names: list[str],
        journal: BatchCheckpoint | None,
        trace: bool,
    ) -> tuple[list[tuple[list[dict], dict]], list[tuple]]:
        """Dispatch chunks dynamically and collect every result.

        Returns ``(chunk_results, flushes)``: chunk results in arrival
        order (the merge re-sorts by program), one flush per worker in
        worker-id order.
        """
        chunk_size = self.options.resolved_chunk_size(
            len(pending), pool.jobs
        )
        chunks = [
            pending[index : index + chunk_size]
            for index in range(0, len(pending), chunk_size)
        ]
        shard_paths = [
            str(journal.shard_path(k)) if journal is not None else None
            for k in range(pool.jobs)
        ]
        pool.begin_batch(names, shard_paths, trace)

        todo = iter(enumerate(chunks))
        outstanding = {k: 0 for k in range(pool.jobs)}
        flush_requested: set[int] = set()

        def dispatch(worker_id: int) -> None:
            item = next(todo, None)
            if item is None:
                if (
                    outstanding[worker_id] == 0
                    and worker_id not in flush_requested
                ):
                    flush_requested.add(worker_id)
                    pool.flush(worker_id)
                return
            chunk_id, chunk = item
            pool.send(
                worker_id, ("chunk", chunk_id, pickle.dumps(chunk))
            )
            outstanding[worker_id] += 1

        for _ in range(PREFILL):
            for worker_id in range(pool.jobs):
                if outstanding[worker_id] >= PREFILL:
                    continue
                dispatch(worker_id)

        chunk_results: list[tuple[list[dict], dict, dict]] = []
        flushes: dict[int, tuple] = {}
        while len(flushes) < pool.jobs:
            message = self._receive(pool)
            kind = message[0]
            if kind == "chunk":
                _, worker_id, _chunk_id, summaries, metrics, costs = message
                chunk_results.append((summaries, metrics, costs))
                outstanding[worker_id] -= 1
                dispatch(worker_id)
            elif kind == "flush":
                flushes[message[1]] = message
            else:  # ("error", worker_id, detail)
                raise ParallelExecutionError(
                    f"worker {message[1]} failed: {message[2]}; completed "
                    "programs are journaled in the checkpoint shards -- "
                    "rerun with resume to finish the batch"
                )
        return chunk_results, [flushes[k] for k in sorted(flushes)]

    def _receive(self, pool: WorkerPool) -> tuple:
        """Wait for the next worker message, watching pool health.

        A separate method so the fault-injection harness can arm the
        coordinator's receive path (e.g. raising KeyboardInterrupt to
        model a mid-batch Ctrl-C at a precise point)."""
        while True:
            try:
                return pool.receive(timeout=POLL_SECONDS)
            except Empty:
                dead = pool.dead_workers()
                if dead:
                    raise ParallelExecutionError(
                        f"worker process(es) {dead} died mid-batch; "
                        "completed programs are journaled in the "
                        "checkpoint shards -- rerun with resume to "
                        "finish the batch"
                    ) from None

    def _drain(
        self,
        pool: WorkerPool,
        names: list[str],
        journal: BatchCheckpoint | None,
    ) -> None:
        """Graceful-interrupt path: let in-flight chunks finish and
        journal, stop dispatching, fold every shard into the main
        checkpoint, and leave the pool idle (warm) or terminated.

        Called with the interrupt pending; the caller re-raises it once
        the journal is resumable."""
        log.warning(
            "parallel: interrupted -- draining %d worker(s), "
            "in-flight chunks will be journaled",
            pool.jobs,
        )
        deadline = time.monotonic() + DRAIN_SECONDS
        try:
            for worker_id in range(pool.jobs):
                pool.flush(worker_id)
            flushed: set[int] = set()
            while len(flushed) < pool.jobs and time.monotonic() < deadline:
                try:
                    message = pool.receive(timeout=POLL_SECONDS)
                except Empty:
                    if len(pool.dead_workers()) == pool.jobs:
                        break
                    continue
                if message[0] == "flush":
                    flushed.add(message[1])
            if len(flushed) < pool.jobs:
                log.warning(
                    "parallel: drain deadline exceeded; terminating workers"
                )
                pool.terminate()
        except (KeyboardInterrupt, SystemExit):
            # A second interrupt mid-drain: stop waiting, kill the pool,
            # still fold whatever the shards already hold.
            pool.terminate()
        finally:
            if journal is not None:
                journal.merge_shards(names)
                log.warning(
                    "parallel: progress journaled to %s -- rerun with "
                    "resume to finish the batch",
                    journal.path,
                )

    # -- the deterministic merge --------------------------------------

    def _merge(
        self,
        chunk_results: list[tuple[list[dict], dict, dict]],
        flushes: list[tuple],
        names: list[str],
        done: dict[str, ConversionReport],
        journal: BatchCheckpoint | None,
        coordinator_base: float,
    ) -> BatchReport:
        by_name: dict[str, ConversionReport] = dict(done)
        for summaries, metrics, costs in chunk_results:
            for summary in summaries:
                report = ConversionReport.from_summary(summary)
                raw_metrics = metrics.get(report.program_name)
                report.metrics = (dict(raw_metrics)
                                  if raw_metrics is not None else None)
                report.cost = costs.get(report.program_name)
                by_name[report.program_name] = report
        for _, worker_id, delta, spans, clock_base, calibration in flushes:
            self._absorb_registry(delta)
            self._absorb_trace(worker_id, spans, clock_base, coordinator_base,
                               delta)
            # Fold the worker's calibration samples into the seed
            # cascade, exactly as a serial run would have observed them.
            self.cascade.calibrator.absorb(calibration)

        missing = [name for name in names if name not in by_name]
        if missing:
            raise ParallelExecutionError(
                f"parallel batch lost programs: {missing}"
            )

        if journal is not None:
            journal.merge_shards(names)

        batch = BatchReport()
        for name in names:
            batch.add(by_name[name])
        return batch

    def _absorb_registry(self, delta: dict[str, int]) -> None:
        if not delta:
            return
        source = FrozenMetricsSource(delta)
        self.absorbed.append(source)
        get_registry().register(source)

    def _absorb_trace(
        self,
        worker_id: int,
        spans: list[dict],
        clock_base: float,
        coordinator_base: float,
        delta: dict[str, int] | None = None,
    ) -> None:
        tracer = current_tracer()
        if tracer is None or not spans:
            return
        cost_attrs = {
            name.replace(".", "_"): value
            for name, value in (delta or {}).items()
            if name.startswith("cost.")
        }
        merge_worker_trace(
            tracer,
            worker_id,
            spans,
            worker_base=clock_base,
            coordinator_base=coordinator_base,
            **cost_attrs,
        )


def run_parallel_batch(
    cascade: FallbackCascade,
    programs: list[Program],
    options: ConversionOptions | None = None,
    pool: WorkerPool | None = None,
) -> BatchReport:
    """Run a batch with ``options.jobs`` workers (function form)."""
    return ParallelExecutor(cascade, programs, options, pool=pool).run()


__all__ = [
    "ParallelExecutionError",
    "ParallelExecutor",
    "WorkerPool",
    "run_parallel_batch",
]
