"""Parallel multi-worker batch conversion.

Batch conversion is embarrassingly parallel in exactly the way the
cascade's savepoint discipline guarantees: every probe rolls back, so
both databases are byte-identical before *every* program and the
per-program work is independent of batch order.  The
:class:`ParallelExecutor` exploits that: ``N`` worker processes each
rehydrate the source/target engines from one pickled seed state, each
converts its round-robin share of the programs through the ordinary
:func:`repro.batch.convert_one` isolation path, and ships back

* report **summaries** (the exact render/parse round-trip form, so the
  merged reports are byte-identical to a serial run's),
* per-program **metrics deltas** (summaries exclude metrics by design;
  the coordinator reattaches them),
* its **registry delta**, absorbed into the coordinator's registry via
  a :class:`~repro.observe.registry.FrozenMetricsSource`,
* its **span forest** plus clock base, merged under a per-worker
  ``parallel.worker`` root on the coordinator's tracer.

Durability: worker ``k`` journals to ``<checkpoint>.shard<k>`` after
each program; the coordinator merges the shards into the main
checkpoint in program order (:meth:`BatchCheckpoint.merge_shards`), so
the merged journal -- and a ``resume`` after any crash, including one
inside the merge window -- is byte-identical to a serial run's.

``jobs=1`` (or a batch with at most one pending program) takes the
in-process fast path: no pool, no pickling, no subprocess -- just
:func:`repro.batch.run_batch`.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from multiprocessing import get_context

from repro.batch import (
    BatchCheckpoint,
    check_program_names,
    convert_one,
    run_batch,
)
from repro.core.report import BatchReport, ConversionReport
from repro.errors import ReproError
from repro.observe.merge import merge_worker_trace
from repro.observe.registry import (
    FrozenMetricsSource,
    get_registry,
    registry_delta,
)
from repro.observe.tracing import Tracer, current_tracer, span
from repro.options import ConversionOptions
from repro.programs.ast import Program
from repro.strategies.cascade import FallbackCascade


class ParallelExecutionError(ReproError):
    """The worker pool died before the batch finished.

    Any per-worker checkpoint shards already journaled remain on disk,
    so a ``resume`` run completes only the genuinely unfinished
    programs.
    """


def _worker_main(
    worker_id: int,
    shared_blob: bytes,
    programs_blob: bytes,
    names: list[str],
    shard_path: str | None,
    trace: bool,
) -> dict:
    """One worker process: rehydrate, convert the assigned share,
    journal to the private shard, ship results back.

    Runs in a spawned interpreter: unpickling the cascade re-registers
    its engine metrics bundles into *this* process's registry (see
    :meth:`repro.engine.metrics.Metrics.__setstate__`), so registry
    deltas and span metrics work exactly as in-process.
    """
    cascade, options = pickle.loads(shared_blob)
    programs: list[Program] = pickle.loads(programs_blob)
    journal = BatchCheckpoint(shard_path) if shard_path else None
    registry = get_registry()
    before = registry.snapshot()
    tracer = Tracer() if trace else None
    clock_base = time.perf_counter()

    summaries: list[dict] = []
    program_metrics: dict[str, dict[str, int]] = {}
    scope = tracer if tracer is not None else nullcontext()
    with scope:
        for program in programs:
            with span("batch.program", program=program.name):
                report = convert_one(cascade, program, options)
            summaries.append(report.to_summary())
            program_metrics[program.name] = dict(report.metrics)
            if journal is not None:
                journal.write_summaries(names, summaries)

    spans = [root.to_dict() for root in tracer.roots] if tracer is not None else []
    return {
        "worker_id": worker_id,
        "summaries": summaries,
        "metrics": program_metrics,
        "registry_delta": registry_delta(before, registry.snapshot()),
        "spans": spans,
        "clock_base": clock_base,
    }


class ParallelExecutor:
    """Coordinates a multi-process batch conversion.

    The executor owns the deterministic merge: reports come back in
    program order regardless of which worker finished first, checkpoint
    shards fold into the main journal in program order, worker metrics
    are absorbed into the coordinator registry, and worker span forests
    mount under per-worker roots on the active tracer.
    """

    def __init__(
        self,
        cascade: FallbackCascade,
        programs: list[Program],
        options: ConversionOptions | None = None,
    ):
        self.cascade = cascade
        self.programs = list(programs)
        self.options = options if options is not None else ConversionOptions()
        #: Strong references to absorbed worker deltas (the registry
        #: holds sources weakly).
        self.absorbed: list[FrozenMetricsSource] = []

    def run(self) -> BatchReport:
        """Convert the batch; equivalent to :func:`run_batch` output."""
        options = self.options
        names = check_program_names(self.programs)
        jobs = options.resolved_jobs()

        journal = BatchCheckpoint(options.checkpoint) if options.checkpoint else None
        done: dict[str, ConversionReport] = {}
        if journal is not None and options.resume:
            done = journal.recover(names)
        pending = [p for p in self.programs if p.name not in done]

        if jobs <= 1 or len(pending) <= 1:
            # In-process fast path: no pool, no pickling, no fork.
            return run_batch(self.cascade, self.programs, options)

        shares = [pending[k::jobs] for k in range(jobs)]
        shares = [share for share in shares if share]
        trace = current_tracer() is not None
        coordinator_base = time.perf_counter()

        results = self._run_workers(shares, names, journal, trace)

        return self._merge(results, names, done, journal, coordinator_base)

    # -- the pool ------------------------------------------------------

    def _run_workers(
        self,
        shares: list[list[Program]],
        names: list[str],
        journal: BatchCheckpoint | None,
        trace: bool,
    ) -> list[dict]:
        shared_blob = pickle.dumps((self.cascade, self.options))
        # Spawn, not fork: fork in a threaded parent is deprecated (and
        # unsafe), and spawn gives each worker the clean interpreter
        # the rehydration contract assumes.
        pool = ProcessPoolExecutor(
            max_workers=len(shares), mp_context=get_context("spawn")
        )
        try:
            with pool:
                futures = []
                for worker_id, share in enumerate(shares):
                    shard = None
                    if journal is not None:
                        shard = str(journal.shard_path(worker_id))
                    futures.append(
                        pool.submit(
                            _worker_main,
                            worker_id,
                            shared_blob,
                            pickle.dumps(share),
                            names,
                            shard,
                            trace,
                        )
                    )
                return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            raise ParallelExecutionError(
                "parallel batch worker pool died; completed programs "
                "are journaled in the checkpoint shards -- rerun with "
                "resume to finish the batch"
            ) from exc

    # -- the deterministic merge --------------------------------------

    def _merge(
        self,
        results: list[dict],
        names: list[str],
        done: dict[str, ConversionReport],
        journal: BatchCheckpoint | None,
        coordinator_base: float,
    ) -> BatchReport:
        by_name: dict[str, ConversionReport] = dict(done)
        for result in sorted(results, key=lambda r: r["worker_id"]):
            for summary in result["summaries"]:
                report = ConversionReport.from_summary(summary)
                report.metrics = dict(result["metrics"].get(report.program_name, {}))
                by_name[report.program_name] = report
            self._absorb_registry(result["registry_delta"])
            self._absorb_trace(result, coordinator_base)

        missing = [name for name in names if name not in by_name]
        if missing:
            raise ParallelExecutionError(f"parallel batch lost programs: {missing}")

        if journal is not None:
            journal.merge_shards(names)

        batch = BatchReport()
        for name in names:
            batch.add(by_name[name])
        return batch

    def _absorb_registry(self, delta: dict[str, int]) -> None:
        if not delta:
            return
        source = FrozenMetricsSource(delta)
        self.absorbed.append(source)
        get_registry().register(source)

    def _absorb_trace(self, result: dict, coordinator_base: float) -> None:
        tracer = current_tracer()
        if tracer is None or not result["spans"]:
            return
        merge_worker_trace(
            tracer,
            result["worker_id"],
            result["spans"],
            worker_base=result["clock_base"],
            coordinator_base=coordinator_base,
        )


def run_parallel_batch(
    cascade: FallbackCascade,
    programs: list[Program],
    options: ConversionOptions | None = None,
) -> BatchReport:
    """Run a batch with ``options.jobs`` workers (function form)."""
    return ParallelExecutor(cascade, programs, options).run()


__all__ = [
    "ParallelExecutionError",
    "ParallelExecutor",
    "run_parallel_batch",
]
