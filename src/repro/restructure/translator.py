"""Model-neutral data snapshots and data translation.

A :class:`DataSnapshot` captures a database instance independent of the
data model: rows per record type (identified by a per-type position)
plus the set connections.  Restructuring operators transform snapshots;
loaders materialize them into any of the three engines.  This is the
reproduction's analogue of the data-translation systems the paper
builds on (EXPRESS and the Michigan translator, references 4 and 5).

Identity convention: a row is identified by ``(record_name, index)``
with index the 0-based position in the snapshot's row list.  Links are
``(owner_id | None, member_id)`` -- None for SYSTEM-owned sets.

Performance model: ``owner_of``/``members_of`` answer from lazily-built
per-set adjacency indexes (one O(links) build, then O(1) probes),
counted in :attr:`DataSnapshot.stats` so tests can assert access-path
complexity rather than wall-clock.  Replacing or removing a set's link
list through ``snapshot.links`` invalidates that set's indexes
automatically; code that mutates a link *list* in place must call
:meth:`DataSnapshot.invalidate_indexes`.  Operators derive snapshots
with :meth:`DataSnapshot.share` (structural sharing) and only pay to
copy the record types they actually mutate via
:meth:`DataSnapshot.rows_for_write`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.metrics import Metrics
from repro.errors import RestructureError
from repro.observe.registry import get_registry
from repro.observe.tracing import span
from repro.hierarchical.database import HierarchicalDatabase
from repro.network.database import NetworkDatabase
from repro.network.sets import SYSTEM_OWNER_RID
from repro.relational.database import RelationalDatabase, fk_columns
from repro.schema.model import Schema

RowId = tuple[str, int]

LinkPair = tuple["RowId | None", RowId]


@dataclass
class SnapshotStats:
    """Access-path counters for one snapshot's link lookups.

    ``index_probes`` counts O(1) adjacency-index hits, ``link_scans``
    counts full linear scans of a link list (the pre-index path, kept
    for benchmarking via ``use_indexes=False``), ``index_builds``
    counts O(links) index constructions.
    """

    index_probes: int = 0
    link_scans: int = 0
    index_builds: int = 0

    def __post_init__(self) -> None:
        get_registry().register(self)

    def metrics_items(self) -> Iterable[tuple[str, int]]:
        """Yield ``(snapshot.<counter>, value)`` registry pairs."""
        yield "snapshot.index_probes", self.index_probes
        yield "snapshot.link_scans", self.link_scans
        yield "snapshot.index_builds", self.index_builds

    def snapshot(self) -> dict[str, int]:
        return {
            "index_probes": self.index_probes,
            "link_scans": self.link_scans,
            "index_builds": self.index_builds,
        }


class _LinkMap(dict):
    """``links`` mapping that invalidates adjacency indexes on change.

    Only entry-level mutation is observable (assignment, pop, del,
    update, clear); in-place mutation of a link *list* must be followed
    by :meth:`DataSnapshot.invalidate_indexes`.
    """

    def __init__(self, owner: "DataSnapshot", data=()):
        super().__init__(data)
        self._owner = owner

    def __setitem__(self, set_name, pairs):
        super().__setitem__(set_name, pairs)
        self._owner._on_links_changed(set_name)

    def __delitem__(self, set_name):
        super().__delitem__(set_name)
        self._owner._on_links_changed(set_name)

    def pop(self, set_name, *default):
        had = set_name in self
        value = super().pop(set_name, *default)
        if had:
            self._owner._on_links_changed(set_name)
        return value

    def setdefault(self, set_name, default=None):
        if set_name not in self:
            self[set_name] = default
        return super().__getitem__(set_name)

    def update(self, *args, **kwargs):
        incoming = dict(*args, **kwargs)
        for set_name, pairs in incoming.items():
            self[set_name] = pairs

    def clear(self):
        names = list(self)
        super().clear()
        for set_name in names:
            self._owner._on_links_changed(set_name)


@dataclass
class DataSnapshot:
    """A database instance, detached from any engine.

    ``rows[record]`` holds stored-field dicts; ``links[set]`` holds
    (owner RowId or None, member RowId) pairs in set order.
    """

    rows: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    links: dict[str, list[LinkPair]] = field(default_factory=dict)
    #: When False, owner_of/members_of fall back to the linear scan the
    #: seed used -- kept so the perf harness can measure the old path.
    use_indexes: bool = field(default=True, compare=False)
    stats: SnapshotStats = field(default_factory=SnapshotStats,
                                 compare=False, repr=False)

    def __post_init__(self) -> None:
        # Per-set adjacency indexes, built lazily and dropped whenever
        # the set's link list is replaced (see _LinkMap).
        self._owner_index: dict[str, dict[RowId, RowId | None]] = {}
        self._members_index: dict[str, dict[RowId | None, list[RowId]]] = {}
        # Record types / sets whose lists are borrowed from another
        # snapshot (structural sharing); they are copied on first write.
        self._borrowed_rows: set[str] = set()
        self._borrowed_links: set[str] = set()
        if not isinstance(self.links, _LinkMap):
            self.links = _LinkMap(self, self.links)

    # -- copying ---------------------------------------------------------

    def copy(self) -> "DataSnapshot":
        """A fully independent deep copy."""
        return DataSnapshot(
            {name: [dict(row) for row in rows]
             for name, rows in self.rows.items()},
            {name: list(pairs) for name, pairs in self.links.items()},
            use_indexes=self.use_indexes,
        )

    def share(self) -> "DataSnapshot":
        """A structurally-shared copy (O(record types + set types)).

        Row lists and link lists are borrowed from this snapshot; the
        derived snapshot copies a record type's rows only when
        :meth:`rows_for_write` / :meth:`links_for_write` is called for
        it, so an operator chain pays per type it touches instead of
        deep-copying the whole instance per operator.
        """
        out = DataSnapshot(dict(self.rows), dict(self.links),
                           use_indexes=self.use_indexes)
        out._borrowed_rows = set(self.rows)
        out._borrowed_links = set(self.links)
        return out

    def rows_for_write(self, record_name: str) -> list[dict[str, Any]]:
        """The row list of a record type, safe to mutate in place."""
        rows = self.rows.get(record_name)
        if rows is None:
            return []
        if record_name in self._borrowed_rows:
            rows = [dict(row) for row in rows]
            self.rows[record_name] = rows
            self._borrowed_rows.discard(record_name)
        return rows

    def links_for_write(self, set_name: str) -> list[LinkPair]:
        """The link list of a set, safe to mutate in place."""
        pairs = self.links.get(set_name)
        if pairs is None:
            return []
        if set_name in self._borrowed_links:
            pairs = list(pairs)
            self.links[set_name] = pairs
        else:
            self.invalidate_indexes(set_name)
        return pairs

    def row_for_write(self, row_id: RowId) -> dict[str, Any]:
        """Like :meth:`row` but guaranteed safe to mutate."""
        record_name, index = row_id
        return self.rows_for_write(record_name)[index]

    def rename_rows_key(self, old: str, new: str) -> None:
        """Move a record type's rows under a new name (borrow-aware)."""
        if old not in self.rows:
            return
        self.rows[new] = self.rows.pop(old)
        if old in self._borrowed_rows:
            self._borrowed_rows.discard(old)
            self._borrowed_rows.add(new)

    def rename_links_key(self, old: str, new: str) -> None:
        """Move a set's links under a new name (borrow-aware)."""
        if old not in self.links:
            return
        borrowed = old in self._borrowed_links
        self.links[new] = self.links.pop(old)
        if borrowed:
            self._borrowed_links.add(new)

    # -- reads -----------------------------------------------------------

    def row(self, row_id: RowId) -> dict[str, Any]:
        record_name, index = row_id
        return self.rows[record_name][index]

    def owner_of(self, set_name: str, member_id: RowId) -> RowId | None:
        if not self.use_indexes:
            self.stats.link_scans += 1
            for owner_id, linked_member in self.links.get(set_name, ()):
                if linked_member == member_id:
                    return owner_id
            return None
        self.stats.index_probes += 1
        return self._owner_map(set_name).get(member_id)

    def members_of(self, set_name: str, owner_id: RowId | None) -> list[RowId]:
        if not self.use_indexes:
            self.stats.link_scans += 1
            return [
                member_id
                for linked_owner, member_id in self.links.get(set_name, ())
                if linked_owner == owner_id
            ]
        self.stats.index_probes += 1
        return list(self._members_map(set_name).get(owner_id, ()))

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())

    # -- adjacency indexes ------------------------------------------------

    def invalidate_indexes(self, set_name: str | None = None) -> None:
        """Drop cached adjacency indexes (all sets when name is None).

        Required after mutating a link *list* in place; replacing the
        list through ``snapshot.links[name] = ...`` (or pop/del)
        invalidates automatically.
        """
        if set_name is None:
            self._owner_index.clear()
            self._members_index.clear()
        else:
            self._owner_index.pop(set_name, None)
            self._members_index.pop(set_name, None)

    def _on_links_changed(self, set_name: str) -> None:
        self.invalidate_indexes(set_name)
        self._borrowed_links.discard(set_name)

    def _owner_map(self, set_name: str) -> dict[RowId, RowId | None]:
        index = self._owner_index.get(set_name)
        if index is None:
            self.stats.index_builds += 1
            index = {}
            for owner_id, member_id in self.links.get(set_name, ()):
                # setdefault preserves first-match semantics should a
                # member appear in several pairs.
                index.setdefault(member_id, owner_id)
            self._owner_index[set_name] = index
        return index

    def _members_map(self, set_name: str) -> dict[RowId | None, list[RowId]]:
        index = self._members_index.get(set_name)
        if index is None:
            self.stats.index_builds += 1
            index = {}
            for owner_id, member_id in self.links.get(set_name, ()):
                index.setdefault(owner_id, []).append(member_id)
            self._members_index[set_name] = index
        return index


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def extract_snapshot(db) -> DataSnapshot:
    """Snapshot any of the three database types."""
    if isinstance(db, NetworkDatabase):
        return _extract_network(db)
    if isinstance(db, RelationalDatabase):
        return _extract_relational(db)
    if isinstance(db, HierarchicalDatabase):
        return _extract_hierarchical(db)
    raise RestructureError(
        f"cannot snapshot database of type {type(db).__name__}"
    )


def _extract_network(db: NetworkDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    rid_to_id: dict[tuple[str, int], RowId] = {}
    for record_name in db.schema.records:
        stored = db.schema.record(record_name).stored_field_names()
        rows = []
        for index, record in enumerate(db.store(record_name).all_records()):
            rows.append({name: record.get(name) for name in stored})
            rid_to_id[(record_name, record.rid)] = (record_name, index)
        snapshot.rows[record_name] = rows
    for set_name, set_type in db.schema.sets.items():
        pairs: list[LinkPair] = []
        set_store = db.set_store(set_name)
        owner_rids = ([SYSTEM_OWNER_RID] if set_type.system_owned
                      else set_store.owners())
        for owner_rid in owner_rids:
            owner_id = (None if set_type.system_owned
                        else rid_to_id[(set_type.owner, owner_rid)])
            for member_rid in set_store.members(owner_rid):
                member_id = rid_to_id[(set_type.member, member_rid)]
                pairs.append((owner_id, member_id))
        snapshot.links[set_name] = pairs
    return snapshot


def _extract_relational(db: RelationalDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    for record_name in db.schema.records:
        stored = db.schema.record(record_name).stored_field_names()
        snapshot.rows[record_name] = [
            {name: row.get(name) for name in stored}
            for row in db.relation(record_name).rows()
        ]
    for set_name, set_type in db.schema.sets.items():
        pairs: list[LinkPair] = []
        if set_type.system_owned:
            for index in range(len(snapshot.rows[set_type.member])):
                pairs.append((None, (set_type.member, index)))
        else:
            columns = fk_columns(db.schema, set_type)
            owner_rows = db.relation(set_type.owner).rows()
            owner_by_key = {
                tuple(row.get(c) for c in columns): index
                for index, row in enumerate(owner_rows)
            }
            member_rows = db.relation(set_type.member).rows()
            for index, row in enumerate(member_rows):
                key = tuple(row.get(c) for c in columns)
                if any(part is None for part in key):
                    continue
                owner_index = owner_by_key.get(key)
                if owner_index is None:
                    continue
                pairs.append((
                    (set_type.owner, owner_index),
                    (set_type.member, index),
                ))
        snapshot.links[set_name] = pairs
    return snapshot


def _extract_hierarchical(db: HierarchicalDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    rid_to_id: dict[tuple[str, int], RowId] = {}
    for record_name in db.schema.records:
        stored = db.schema.record(record_name).stored_field_names()
        rows = []
        for index, record in enumerate(db.store(record_name).all_records()):
            rows.append({name: record.get(name) for name in stored})
            rid_to_id[(record_name, record.rid)] = (record_name, index)
        snapshot.rows[record_name] = rows
    for set_name, set_type in db.schema.sets.items():
        pairs: list[LinkPair] = []
        if set_type.system_owned:
            for rid in db.roots(set_type.member):
                pairs.append((None, rid_to_id[(set_type.member, rid)]))
        else:
            for record in db.store(set_type.owner).all_records():
                for child_rid in db.children(set_type.owner, record.rid,
                                             set_type.member):
                    pairs.append((
                        rid_to_id[(set_type.owner, record.rid)],
                        rid_to_id[(set_type.member, child_rid)],
                    ))
        snapshot.links[set_name] = pairs
    return snapshot


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


def load_network(schema: Schema, snapshot: DataSnapshot,
                 metrics: Metrics | None = None) -> NetworkDatabase:
    """Materialize a snapshot as a network database (bulk path)."""
    db = NetworkDatabase(schema, metrics)
    id_to_rid: dict[RowId, int] = {}
    for record_name in schema.records:
        records = db.insert_records(
            record_name, snapshot.rows.get(record_name, [])
        )
        for index, record in enumerate(records):
            id_to_rid[(record_name, index)] = record.rid
    for set_name in schema.sets:
        # Group members per owner so each occurrence is ordered once.
        by_owner: dict[int, list[int]] = {}
        for owner_id, member_id in snapshot.links.get(set_name, []):
            owner_rid = (SYSTEM_OWNER_RID if owner_id is None
                         else id_to_rid[owner_id])
            by_owner.setdefault(owner_rid, []).append(id_to_rid[member_id])
        for owner_rid, member_rids in by_owner.items():
            db.connect_many(set_name, owner_rid, member_rids)
    return db


def load_relational(schema: Schema, snapshot: DataSnapshot,
                    metrics: Metrics | None = None,
                    use_indexes: bool = True) -> RelationalDatabase:
    """Materialize a snapshot as a relational database.

    Foreign-key columns are filled from the snapshot's links (owner
    CALC-key values copied into the member row, Figure 3.1a style).
    Weak-entity owners (composite foreign keys) require the owner's own
    FK columns to be filled first, so rows are completed in ownership
    order (owners before members).  ``use_indexes=False`` builds the
    database with secondary indexes disabled (the linear-scan baseline).
    """
    db = RelationalDatabase(schema, metrics, use_indexes=use_indexes)
    # Complete rows (stored fields + FK columns) per record type.
    complete: dict[str, list[dict[str, Any]]] = {
        name: [dict(row) for row in snapshot.rows.get(name, [])]
        for name in schema.records
    }

    depth_cache: dict[str, int] = {}

    def ownership_depth(record_name: str,
                        seen: frozenset[str] = frozenset()) -> int:
        return _depth(record_name, seen)[0]

    def _depth(record_name: str,
               seen: frozenset[str]) -> tuple[int, bool]:
        # The bool reports whether the value is context-free (no cycle
        # guard fired beneath) and therefore safe to memoize.
        if record_name in seen:
            return 0, False
        cached = depth_cache.get(record_name)
        if cached is not None:
            return cached, True
        depth = 0
        clean = True
        for set_type in schema.sets_with_member(record_name):
            if set_type.system_owned:
                continue
            sub, sub_clean = _depth(set_type.owner, seen | {record_name})
            clean = clean and sub_clean
            depth = max(depth, 1 + sub)
        if clean:
            depth_cache[record_name] = depth
        return depth, clean

    ordered = sorted(schema.records, key=ownership_depth)
    for record_name in ordered:
        for set_type in schema.sets_with_member(record_name):
            if set_type.system_owned:
                continue
            columns = fk_columns(schema, set_type)
            for owner_id, member_id in snapshot.links.get(
                    set_type.name, []):
                if owner_id is None or member_id[0] != record_name:
                    continue
                owner_row = complete[owner_id[0]][owner_id[1]]
                member_row = complete[record_name][member_id[1]]
                for column in columns:
                    member_row.setdefault(column, owner_row.get(column))
    for record_name in schema.records:
        db.insert_many(record_name, complete[record_name],
                       enforce_keys=False)
    return db


def load_hierarchical(schema: Schema, snapshot: DataSnapshot,
                      metrics: Metrics | None = None) -> HierarchicalDatabase:
    """Materialize a snapshot as a hierarchical database.

    Parents must be inserted before children; we insert record types in
    topological (root-first) order, one bulk ISRT per segment type.
    Parent lookups go through the snapshot's owner index: O(1) per row
    after one O(links) build per parent set.
    """
    db = HierarchicalDatabase(schema, metrics)
    id_to_rid: dict[RowId, int] = {}
    parent_sets = {
        set_type.member: set_type
        for set_type in schema.sets.values() if not set_type.system_owned
    }

    def depth(record_name: str) -> int:
        level = 0
        node = record_name
        while node in parent_sets:
            level += 1
            node = parent_sets[node].owner
        return level

    ordered = sorted(schema.records, key=depth)
    for record_name in ordered:
        set_type = parent_sets.get(record_name)
        entries: list[tuple[dict[str, Any], tuple[str, int] | None]] = []
        for index, row in enumerate(snapshot.rows.get(record_name, [])):
            parent: tuple[str, int] | None = None
            if set_type is not None:
                owner_id = snapshot.owner_of(set_type.name,
                                             (record_name, index))
                if owner_id is None:
                    raise RestructureError(
                        f"cannot load {record_name}[{index}] into a "
                        f"hierarchy: no parent link in {set_type.name}"
                    )
                parent = (owner_id[0], id_to_rid[owner_id])
            entries.append((row, parent))
        records = db.insert_segments(record_name, entries)
        for index, record in enumerate(records):
            id_to_rid[(record_name, index)] = record.rid
    return db


_LOADERS = {
    "network": load_network,
    "relational": load_relational,
    "hierarchical": load_hierarchical,
}


def restructure_database(db, operator, target_model: str = "network",
                         metrics: Metrics | None = None):
    """End-to-end data translation: snapshot the source, apply the
    operator's schema and data mappings, load into the target model.

    Returns ``(target_schema, target_db)``.
    """
    try:
        loader = _LOADERS[target_model]
    except KeyError:
        raise RestructureError(
            f"unknown target model {target_model!r}"
        ) from None
    source_schema = db.schema
    target_schema = operator.apply_schema(source_schema)
    with span("restructure.extract", model=type(db).__name__):
        snapshot = extract_snapshot(db)
    with span("restructure.translate"), \
            span(f"operator.{type(operator).__name__}",
                 operator=operator.describe()):
        translated = operator.translate(snapshot, source_schema,
                                        target_schema)
    with span("restructure.load", model=target_model):
        loaded = loader(target_schema, translated, metrics)
    return target_schema, loaded
