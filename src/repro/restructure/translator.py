"""Model-neutral data snapshots and data translation.

A :class:`DataSnapshot` captures a database instance independent of the
data model: rows per record type (identified by a per-type position)
plus the set connections.  Restructuring operators transform snapshots;
loaders materialize them into any of the three engines.  This is the
reproduction's analogue of the data-translation systems the paper
builds on (EXPRESS and the Michigan translator, references 4 and 5).

Identity convention: a row is identified by ``(record_name, index)``
with index the 0-based position in the snapshot's row list.  Links are
``(owner_id | None, member_id)`` -- None for SYSTEM-owned sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.metrics import Metrics
from repro.errors import RestructureError
from repro.hierarchical.database import HierarchicalDatabase
from repro.network.database import NetworkDatabase
from repro.network.sets import SYSTEM_OWNER_RID
from repro.relational.database import RelationalDatabase, fk_columns
from repro.schema.model import Schema

RowId = tuple[str, int]


@dataclass
class DataSnapshot:
    """A database instance, detached from any engine.

    ``rows[record]`` holds stored-field dicts; ``links[set]`` holds
    (owner RowId or None, member RowId) pairs in set order.
    """

    rows: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    links: dict[str, list[tuple[RowId | None, RowId]]] = \
        field(default_factory=dict)

    def copy(self) -> "DataSnapshot":
        return DataSnapshot(
            {name: [dict(row) for row in rows]
             for name, rows in self.rows.items()},
            {name: list(pairs) for name, pairs in self.links.items()},
        )

    def row(self, row_id: RowId) -> dict[str, Any]:
        record_name, index = row_id
        return self.rows[record_name][index]

    def owner_of(self, set_name: str, member_id: RowId) -> RowId | None:
        for owner_id, linked_member in self.links.get(set_name, []):
            if linked_member == member_id:
                return owner_id
        return None

    def members_of(self, set_name: str, owner_id: RowId | None) -> list[RowId]:
        return [
            member_id
            for linked_owner, member_id in self.links.get(set_name, [])
            if linked_owner == owner_id
        ]

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.rows.values())


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def extract_snapshot(db) -> DataSnapshot:
    """Snapshot any of the three database types."""
    if isinstance(db, NetworkDatabase):
        return _extract_network(db)
    if isinstance(db, RelationalDatabase):
        return _extract_relational(db)
    if isinstance(db, HierarchicalDatabase):
        return _extract_hierarchical(db)
    raise RestructureError(
        f"cannot snapshot database of type {type(db).__name__}"
    )


def _extract_network(db: NetworkDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    rid_to_id: dict[tuple[str, int], RowId] = {}
    for record_name in db.schema.records:
        rows = []
        for index, record in enumerate(db.store(record_name).all_records()):
            record_type = db.schema.record(record_name)
            rows.append({
                name: record.get(name)
                for name in record_type.stored_field_names()
            })
            rid_to_id[(record_name, record.rid)] = (record_name, index)
        snapshot.rows[record_name] = rows
    for set_name, set_type in db.schema.sets.items():
        pairs: list[tuple[RowId | None, RowId]] = []
        set_store = db.set_store(set_name)
        owner_rids = ([SYSTEM_OWNER_RID] if set_type.system_owned
                      else set_store.owners())
        for owner_rid in owner_rids:
            owner_id = (None if set_type.system_owned
                        else rid_to_id[(set_type.owner, owner_rid)])
            for member_rid in set_store.members(owner_rid):
                member_id = rid_to_id[(set_type.member, member_rid)]
                pairs.append((owner_id, member_id))
        snapshot.links[set_name] = pairs
    return snapshot


def _extract_relational(db: RelationalDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    for record_name in db.schema.records:
        record_type = db.schema.record(record_name)
        stored = record_type.stored_field_names()
        snapshot.rows[record_name] = [
            {name: row.get(name) for name in stored}
            for row in db.relation(record_name).rows()
        ]
    for set_name, set_type in db.schema.sets.items():
        pairs: list[tuple[RowId | None, RowId]] = []
        if set_type.system_owned:
            for index in range(len(snapshot.rows[set_type.member])):
                pairs.append((None, (set_type.member, index)))
        else:
            columns = fk_columns(db.schema, set_type)
            owner_rows = db.relation(set_type.owner).rows()
            owner_by_key = {
                tuple(row.get(c) for c in columns): index
                for index, row in enumerate(owner_rows)
            }
            member_rows = db.relation(set_type.member).rows()
            for index, row in enumerate(member_rows):
                key = tuple(row.get(c) for c in columns)
                if any(part is None for part in key):
                    continue
                owner_index = owner_by_key.get(key)
                if owner_index is None:
                    continue
                pairs.append((
                    (set_type.owner, owner_index),
                    (set_type.member, index),
                ))
        snapshot.links[set_name] = pairs
    return snapshot


def _extract_hierarchical(db: HierarchicalDatabase) -> DataSnapshot:
    snapshot = DataSnapshot()
    rid_to_id: dict[tuple[str, int], RowId] = {}
    for record_name in db.schema.records:
        record_type = db.schema.record(record_name)
        rows = []
        for index, record in enumerate(db.store(record_name).all_records()):
            rows.append({
                name: record.get(name)
                for name in record_type.stored_field_names()
            })
            rid_to_id[(record_name, record.rid)] = (record_name, index)
        snapshot.rows[record_name] = rows
    for set_name, set_type in db.schema.sets.items():
        pairs: list[tuple[RowId | None, RowId]] = []
        if set_type.system_owned:
            for rid in db.roots(set_type.member):
                pairs.append((None, rid_to_id[(set_type.member, rid)]))
        else:
            for record in db.store(set_type.owner).all_records():
                for child_rid in db.children(set_type.owner, record.rid,
                                             set_type.member):
                    pairs.append((
                        rid_to_id[(set_type.owner, record.rid)],
                        rid_to_id[(set_type.member, child_rid)],
                    ))
        snapshot.links[set_name] = pairs
    return snapshot


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


def load_network(schema: Schema, snapshot: DataSnapshot,
                 metrics: Metrics | None = None) -> NetworkDatabase:
    """Materialize a snapshot as a network database."""
    db = NetworkDatabase(schema, metrics)
    id_to_rid: dict[RowId, int] = {}
    for record_name in schema.records:
        for index, row in enumerate(snapshot.rows.get(record_name, [])):
            record = db.insert_record(record_name, row)
            id_to_rid[(record_name, index)] = record.rid
    for set_name, set_type in schema.sets.items():
        for owner_id, member_id in snapshot.links.get(set_name, []):
            owner_rid = (SYSTEM_OWNER_RID if owner_id is None
                         else id_to_rid[owner_id])
            db.connect(set_name, owner_rid, id_to_rid[member_id])
    return db


def load_relational(schema: Schema, snapshot: DataSnapshot,
                    metrics: Metrics | None = None) -> RelationalDatabase:
    """Materialize a snapshot as a relational database.

    Foreign-key columns are filled from the snapshot's links (owner
    CALC-key values copied into the member row, Figure 3.1a style).
    Weak-entity owners (composite foreign keys) require the owner's own
    FK columns to be filled first, so rows are completed in ownership
    order (owners before members).
    """
    db = RelationalDatabase(schema, metrics)
    # Complete rows (stored fields + FK columns) per record type.
    complete: dict[str, list[dict[str, Any]]] = {
        name: [dict(row) for row in snapshot.rows.get(name, [])]
        for name in schema.records
    }

    def ownership_depth(record_name: str,
                        seen: frozenset[str] = frozenset()) -> int:
        if record_name in seen:
            return 0
        depth = 0
        for set_type in schema.sets_with_member(record_name):
            if set_type.system_owned:
                continue
            depth = max(depth, 1 + ownership_depth(
                set_type.owner, seen | {record_name}))
        return depth

    ordered = sorted(schema.records, key=ownership_depth)
    for record_name in ordered:
        for set_type in schema.sets_with_member(record_name):
            if set_type.system_owned:
                continue
            columns = fk_columns(schema, set_type)
            for owner_id, member_id in snapshot.links.get(
                    set_type.name, []):
                if owner_id is None or member_id[0] != record_name:
                    continue
                owner_row = complete[owner_id[0]][owner_id[1]]
                member_row = complete[record_name][member_id[1]]
                for column in columns:
                    member_row.setdefault(column, owner_row.get(column))
    for record_name in schema.records:
        for row in complete[record_name]:
            db.insert(record_name, row, enforce_keys=False)
    return db


def load_hierarchical(schema: Schema, snapshot: DataSnapshot,
                      metrics: Metrics | None = None) -> HierarchicalDatabase:
    """Materialize a snapshot as a hierarchical database.

    Parents must be inserted before children; we insert record types in
    topological (root-first) order.
    """
    db = HierarchicalDatabase(schema, metrics)
    id_to_rid: dict[RowId, int] = {}
    parent_sets = {
        set_type.member: set_type
        for set_type in schema.sets.values() if not set_type.system_owned
    }

    def depth(record_name: str) -> int:
        level = 0
        node = record_name
        while node in parent_sets:
            level += 1
            node = parent_sets[node].owner
        return level

    ordered = sorted(schema.records, key=depth)
    for record_name in ordered:
        set_type = parent_sets.get(record_name)
        for index, row in enumerate(snapshot.rows.get(record_name, [])):
            parent: tuple[str, int] | None = None
            if set_type is not None:
                owner_id = snapshot.owner_of(set_type.name,
                                             (record_name, index))
                if owner_id is None:
                    raise RestructureError(
                        f"cannot load {record_name}[{index}] into a "
                        f"hierarchy: no parent link in {set_type.name}"
                    )
                parent = (owner_id[0], id_to_rid[owner_id])
            record = db.insert_segment(record_name, row, parent)
            id_to_rid[(record_name, index)] = record.rid
    return db


_LOADERS = {
    "network": load_network,
    "relational": load_relational,
    "hierarchical": load_hierarchical,
}


def restructure_database(db, operator, target_model: str = "network",
                         metrics: Metrics | None = None):
    """End-to-end data translation: snapshot the source, apply the
    operator's schema and data mappings, load into the target model.

    Returns ``(target_schema, target_db)``.
    """
    try:
        loader = _LOADERS[target_model]
    except KeyError:
        raise RestructureError(
            f"unknown target model {target_model!r}"
        ) from None
    source_schema = db.schema
    target_schema = operator.apply_schema(source_schema)
    snapshot = extract_snapshot(db)
    translated = operator.translate(snapshot, source_schema, target_schema)
    return target_schema, loader(target_schema, translated, metrics)
