"""Restructuring operators.

Each operator packages the three things the framework needs about one
schema transformation:

1. the schema mapping (:meth:`apply_schema`),
2. the classified change list for the Conversion Analyzer
   (:meth:`changes`),
3. the data mapping over snapshots (:meth:`translate`),

plus Housel's question -- :meth:`inverse` returns the operator that
undoes this one, or raises :class:`~repro.errors.NotInvertible`
("the assumption of the existence of inverse operators restricts the
scope of the conversion problem", Section 2.2).

The star of the catalog is :class:`InterposeRecord`, which is the
paper's own Figure 4.2 -> Figure 4.4 transformation: a new DEPT record
type interposed on the DIV-EMP set, with the member's DEPT-NAME field
becoming VIRTUAL through the new set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import (
    InformationLoss,
    NotInvertible,
    RestructureError,
)
from repro.observe.tracing import span
from repro.restructure.translator import DataSnapshot, RowId
from repro.schema.constraints import Constraint
from repro.schema.diff import (
    ConstraintAdded,
    ConstraintRemoved,
    FieldAdded,
    FieldRemoved,
    FieldRenamed,
    FieldsExtracted,
    FieldsInlined,
    MembershipChanged,
    RecordInterposed,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetOrderChanged,
    SetRenamed,
    SiblingOrderChanged,
    VirtualizedField,
)
from repro.schema.model import (
    Field,
    Insertion,
    RecordType,
    Retention,
    Schema,
    SetType,
)
from repro.schema.types import parse_pic


class RestructuringOperator:
    """Base class; operators are immutable and schema-checked on use."""

    def apply_schema(self, schema: Schema) -> Schema:
        raise NotImplementedError

    def changes(self, schema: Schema) -> list[SchemaChange]:
        raise NotImplementedError

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        """Default data mapping: identity (structurally shared)."""
        return snapshot.share()

    def inverse(self, schema: Schema) -> "RestructuringOperator":
        raise NotInvertible(
            f"{type(self).__name__} has no inverse mapping"
        )

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__}: {self.describe()}>"


def _rename_row_ids(snapshot: DataSnapshot, old: str,
                    new: str) -> DataSnapshot:
    """Rewrite every RowId mentioning a renamed record type."""

    def fix(row_id: RowId | None) -> RowId | None:
        if row_id is None:
            return None
        return (new, row_id[1]) if row_id[0] == old else row_id

    out = snapshot.share()
    out.rename_rows_key(old, new)
    for set_name, pairs in list(out.links.items()):
        if any((owner_id is not None and owner_id[0] == old)
               or member_id[0] == old
               for owner_id, member_id in pairs):
            out.links[set_name] = [
                (fix(owner_id), fix(member_id))
                for owner_id, member_id in pairs
            ]
    return out


# ---------------------------------------------------------------------------
# Renames
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class RenameRecord(RestructuringOperator):
    old_name: str
    new_name: str

    def describe(self) -> str:
        return f"rename record {self.old_name} -> {self.new_name}"

    def apply_schema(self, schema: Schema) -> Schema:
        record = schema.record(self.old_name)
        if self.new_name in schema.records:
            raise RestructureError(
                f"record {self.new_name} already exists"
            )
        out = Schema(schema.name)
        for name, existing in schema.records.items():
            if name == self.old_name:
                out.records[self.new_name] = replace(
                    existing, name=self.new_name
                )
            else:
                out.records[name] = existing
        for name, set_type in schema.sets.items():
            out.sets[name] = replace(
                set_type,
                owner=(self.new_name if set_type.owner == self.old_name
                       else set_type.owner),
                member=(self.new_name if set_type.member == self.old_name
                        else set_type.member),
            )
        out.constraints = [
            _rename_constraint_record(c, self.old_name, self.new_name)
            for c in schema.constraints
        ]
        del record
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [RecordRenamed(self.old_name, self.new_name)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        return _rename_row_ids(snapshot, self.old_name, self.new_name)

    def inverse(self, schema: Schema) -> "RenameRecord":
        return RenameRecord(self.new_name, self.old_name)


def _rename_constraint_record(constraint: Constraint, old: str,
                              new: str) -> Constraint:
    if getattr(constraint, "record", None) == old:
        return replace(constraint, record=new)
    return constraint


@dataclass(frozen=True, repr=False)
class RenameField(RestructuringOperator):
    record: str
    old_name: str
    new_name: str

    def describe(self) -> str:
        return (f"rename field {self.record}.{self.old_name} -> "
                f"{self.new_name}")

    def apply_schema(self, schema: Schema) -> Schema:
        record_type = schema.record(self.record)
        record_type.field(self.old_name)
        if record_type.has_field(self.new_name):
            raise RestructureError(
                f"field {self.record}.{self.new_name} already exists"
            )
        out = schema.copy()
        new_fields = tuple(
            replace(f, name=self.new_name) if f.name == self.old_name else f
            for f in record_type.fields
        )
        new_calc = tuple(
            self.new_name if key == self.old_name else key
            for key in record_type.calc_keys
        )
        out.records[self.record] = replace(
            record_type, fields=new_fields, calc_keys=new_calc
        )
        for name, set_type in schema.sets.items():
            updated = set_type
            if set_type.member == self.record and \
                    self.old_name in set_type.order_keys:
                updated = replace(updated, order_keys=tuple(
                    self.new_name if key == self.old_name else key
                    for key in set_type.order_keys
                ))
            out.sets[name] = updated
        # Virtual fields on other records USING the renamed owner field.
        for name, other in list(out.records.items()):
            changed = False
            fields = []
            for fld in other.fields:
                if (fld.is_virtual and fld.virtual_using == self.old_name
                        and schema.set_type(fld.virtual_via).owner
                        == self.record):
                    fields.append(replace(fld, virtual_using=self.new_name))
                    changed = True
                else:
                    fields.append(fld)
            if changed:
                out.records[name] = replace(other, fields=tuple(fields))
        out.constraints = [
            _rename_constraint_field(c, self.record, self.old_name,
                                     self.new_name, schema)
            for c in schema.constraints
        ]
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [FieldRenamed(self.record, self.old_name, self.new_name)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        if source_schema.record(self.record).field(self.old_name).is_virtual:
            return out
        for row in out.rows_for_write(self.record):
            if self.old_name in row:
                row[self.new_name] = row.pop(self.old_name)
        return out

    def inverse(self, schema: Schema) -> "RenameField":
        return RenameField(self.record, self.new_name, self.old_name)


def _rename_constraint_field(constraint: Constraint, record: str, old: str,
                             new: str, schema: Schema) -> Constraint:
    if getattr(constraint, "record", None) == record:
        if getattr(constraint, "field", None) == old:
            return replace(constraint, field=new)
        fields = getattr(constraint, "fields", None)
        if fields and old in fields:
            return replace(constraint, fields=tuple(
                new if f == old else f for f in fields
            ))
    set_name = getattr(constraint, "set_name", None)
    per_fields = getattr(constraint, "per_fields", None)
    if set_name and per_fields and old in per_fields:
        if schema.set_type(set_name).member == record:
            return replace(constraint, per_fields=tuple(
                new if f == old else f for f in per_fields
            ))
    return constraint


@dataclass(frozen=True, repr=False)
class RenameSet(RestructuringOperator):
    old_name: str
    new_name: str

    def describe(self) -> str:
        return f"rename set {self.old_name} -> {self.new_name}"

    def apply_schema(self, schema: Schema) -> Schema:
        set_type = schema.set_type(self.old_name)
        if self.new_name in schema.sets:
            raise RestructureError(f"set {self.new_name} already exists")
        out = Schema(schema.name, dict(schema.records), {}, [])
        for name, existing in schema.sets.items():
            if name == self.old_name:
                out.sets[self.new_name] = replace(set_type,
                                                  name=self.new_name)
            else:
                out.sets[name] = existing
        for name, record in schema.records.items():
            fields = tuple(
                replace(f, virtual_via=self.new_name)
                if f.is_virtual and f.virtual_via == self.old_name else f
                for f in record.fields
            )
            if fields != record.fields:
                out.records[name] = replace(record, fields=fields)
        out.constraints = [
            replace(c, set_name=self.new_name)
            if getattr(c, "set_name", None) == self.old_name else c
            for c in schema.constraints
        ]
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [SetRenamed(self.old_name, self.new_name)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        out.rename_links_key(self.old_name, self.new_name)
        return out

    def inverse(self, schema: Schema) -> "RenameSet":
        return RenameSet(self.new_name, self.old_name)


# ---------------------------------------------------------------------------
# Field addition / removal
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class AddField(RestructuringOperator):
    record: str
    field_name: str
    pic: str
    default: Any = None

    def describe(self) -> str:
        return f"add field {self.record}.{self.field_name} PIC {self.pic}"

    def apply_schema(self, schema: Schema) -> Schema:
        record_type = schema.record(self.record)
        if record_type.has_field(self.field_name):
            raise RestructureError(
                f"field {self.record}.{self.field_name} already exists"
            )
        out = schema.copy()
        out.records[self.record] = record_type.with_fields(
            record_type.fields + (Field(self.field_name,
                                        parse_pic(self.pic)),)
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [FieldAdded(self.record, self.field_name, self.default)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        for row in out.rows_for_write(self.record):
            row[self.field_name] = self.default
        return out

    def inverse(self, schema: Schema) -> "DropField":
        return DropField(self.record, self.field_name, force=True)


@dataclass(frozen=True, repr=False)
class DropField(RestructuringOperator):
    """Remove a field -- information-reducing, so it must be forced
    (Section 1.1: "conversion when not all information is preserved is
    a different and more difficult conversion problem")."""

    record: str
    field_name: str
    force: bool = False

    def describe(self) -> str:
        return f"drop field {self.record}.{self.field_name}"

    def apply_schema(self, schema: Schema) -> Schema:
        if not self.force:
            raise InformationLoss(
                f"dropping {self.record}.{self.field_name} discards "
                "information; pass force=True to accept"
            )
        record_type = schema.record(self.record)
        record_type.field(self.field_name)
        if self.field_name in record_type.calc_keys:
            raise RestructureError(
                f"cannot drop CALC key field {self.record}.{self.field_name}"
            )
        for set_type in schema.sets_with_member(self.record):
            if self.field_name in set_type.order_keys:
                raise RestructureError(
                    f"cannot drop {self.record}.{self.field_name}: it is "
                    f"an order key of set {set_type.name}"
                )
        out = schema.copy()
        out.records[self.record] = record_type.with_fields(
            f for f in record_type.fields if f.name != self.field_name
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [FieldRemoved(self.record, self.field_name)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        for row in out.rows_for_write(self.record):
            row.pop(self.field_name, None)
        return out


# ---------------------------------------------------------------------------
# Set behaviour
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class ChangeSetOrder(RestructuringOperator):
    """Change a set's member ordering.

    ``allow_duplicates`` defaults to None (keep the source setting);
    pass True when the new keys are not unique within occurrences.
    """

    set_name: str
    new_keys: tuple[str, ...]
    allow_duplicates: bool | None = None

    def describe(self) -> str:
        return f"reorder set {self.set_name} by {list(self.new_keys)}"

    def apply_schema(self, schema: Schema) -> Schema:
        set_type = schema.set_type(self.set_name)
        member = schema.record(set_type.member)
        for key in self.new_keys:
            member.field(key)
        duplicates = (set_type.allow_duplicates
                      if self.allow_duplicates is None
                      else self.allow_duplicates)
        out = schema.copy()
        out.sets[self.set_name] = replace(
            set_type, order_keys=tuple(self.new_keys),
            allow_duplicates=duplicates,
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        set_type = schema.set_type(self.set_name)
        return [SetOrderChanged(self.set_name, set_type.order_keys,
                                tuple(self.new_keys))]

    def inverse(self, schema: Schema) -> "ChangeSetOrder":
        set_type = schema.set_type(self.set_name)
        return ChangeSetOrder(self.set_name, set_type.order_keys,
                              set_type.allow_duplicates)


@dataclass(frozen=True, repr=False)
class ChangeMembership(RestructuringOperator):
    set_name: str
    insertion: Insertion
    retention: Retention

    def describe(self) -> str:
        return (f"set {self.set_name} membership -> "
                f"{self.insertion.value}/{self.retention.value}")

    def apply_schema(self, schema: Schema) -> Schema:
        set_type = schema.set_type(self.set_name)
        out = schema.copy()
        out.sets[self.set_name] = replace(
            set_type, insertion=self.insertion, retention=self.retention
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        set_type = schema.set_type(self.set_name)
        return [MembershipChanged(
            self.set_name, set_type.insertion, self.insertion,
            set_type.retention, self.retention,
        )]

    def inverse(self, schema: Schema) -> "ChangeMembership":
        set_type = schema.set_type(self.set_name)
        return ChangeMembership(self.set_name, set_type.insertion,
                                set_type.retention)


@dataclass(frozen=True, repr=False)
class SwapSiblingOrder(RestructuringOperator):
    """Reorder the child set types of one owner (the sibling-order
    component of the Mehl & Wang hierarchical order transformation:
    the GN preorder sequence changes, the data does not)."""

    owner: str
    new_order: tuple[str, ...]

    def describe(self) -> str:
        return f"sibling order of {self.owner} -> {list(self.new_order)}"

    def apply_schema(self, schema: Schema) -> Schema:
        owned = [s.name for s in schema.sets_owned_by(self.owner)]
        if sorted(owned) != sorted(self.new_order):
            raise RestructureError(
                f"new order {list(self.new_order)} must be a permutation "
                f"of {owned}"
            )
        out = Schema(schema.name, dict(schema.records), {},
                     list(schema.constraints))
        pending = list(self.new_order)
        for name, set_type in schema.sets.items():
            if set_type.owner == self.owner:
                next_name = pending.pop(0)
                out.sets[next_name] = schema.sets[next_name]
            else:
                out.sets[name] = set_type
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        owned = tuple(s.name for s in schema.sets_owned_by(self.owner))
        return [SiblingOrderChanged(self.owner, owned,
                                    tuple(self.new_order))]

    def inverse(self, schema: Schema) -> "SwapSiblingOrder":
        owned = tuple(s.name for s in schema.sets_owned_by(self.owner))
        return SwapSiblingOrder(self.owner, owned)


# ---------------------------------------------------------------------------
# Virtualization
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class VirtualizeField(RestructuringOperator):
    """Replace a stored member field by a VIRTUAL reference to the
    owner's equal-valued field (factoring out redundancy)."""

    record: str
    field_name: str
    via_set: str
    using_field: str | None = None  # defaults to the same name
    force: bool = False

    @property
    def _using(self) -> str:
        return self.using_field or self.field_name

    def describe(self) -> str:
        return (f"virtualize {self.record}.{self.field_name} via "
                f"{self.via_set}")

    def apply_schema(self, schema: Schema) -> Schema:
        record_type = schema.record(self.record)
        fld = record_type.field(self.field_name)
        if fld.is_virtual:
            raise RestructureError(
                f"{self.record}.{self.field_name} is already virtual"
            )
        set_type = schema.set_type(self.via_set)
        if set_type.member != self.record:
            raise RestructureError(
                f"{self.record} is not the member of {self.via_set}"
            )
        schema.record(set_type.owner).field(self._using)
        if self.field_name in record_type.calc_keys:
            raise RestructureError(
                f"cannot virtualize CALC key {self.record}.{self.field_name}"
            )
        for owned in schema.sets_with_member(self.record):
            if self.field_name in owned.order_keys:
                raise RestructureError(
                    f"cannot virtualize order key "
                    f"{self.record}.{self.field_name} of {owned.name}"
                )
        out = schema.copy()
        out.records[self.record] = record_type.with_fields(
            replace(f, virtual_via=self.via_set, virtual_using=self._using)
            if f.name == self.field_name else f
            for f in record_type.fields
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [VirtualizedField(self.record, self.field_name, True,
                                 self.via_set)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        for index, row in enumerate(out.rows_for_write(self.record)):
            stored = row.pop(self.field_name, None)
            if stored is None:
                continue
            owner_id = out.owner_of(self.via_set, (self.record, index))
            owner_value = (out.row(owner_id).get(self._using)
                           if owner_id is not None else None)
            if stored != owner_value and not self.force:
                raise InformationLoss(
                    f"{self.record}[{index}].{self.field_name} = "
                    f"{stored!r} differs from owner's {self._using} = "
                    f"{owner_value!r}; virtualization loses it "
                    "(pass force=True to accept)"
                )
        return out

    def inverse(self, schema: Schema) -> "MaterializeField":
        return MaterializeField(self.record, self.field_name)


@dataclass(frozen=True, repr=False)
class MaterializeField(RestructuringOperator):
    """Turn a VIRTUAL field back into a stored field (denormalize)."""

    record: str
    field_name: str

    def describe(self) -> str:
        return f"materialize {self.record}.{self.field_name}"

    def apply_schema(self, schema: Schema) -> Schema:
        record_type = schema.record(self.record)
        fld = record_type.field(self.field_name)
        if not fld.is_virtual:
            raise RestructureError(
                f"{self.record}.{self.field_name} is not virtual"
            )
        owner = schema.record(schema.set_type(fld.virtual_via).owner)
        owner_field = owner.field(fld.virtual_using)
        out = schema.copy()
        out.records[self.record] = record_type.with_fields(
            Field(self.field_name, owner_field.type)
            if f.name == self.field_name else f
            for f in record_type.fields
        )
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [VirtualizedField(self.record, self.field_name, False)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        fld = source_schema.record(self.record).field(self.field_name)
        out = snapshot.share()
        for index, row in enumerate(out.rows_for_write(self.record)):
            owner_id = out.owner_of(fld.virtual_via, (self.record, index))
            row[self.field_name] = (
                out.row(owner_id).get(fld.virtual_using)
                if owner_id is not None else None
            )
        return out

    def inverse(self, schema: Schema) -> "VirtualizeField":
        fld = schema.record(self.record).field(self.field_name)
        return VirtualizeField(self.record, self.field_name,
                               fld.virtual_via, fld.virtual_using)


# ---------------------------------------------------------------------------
# Structural: interpose / merge (Figure 4.2 <-> Figure 4.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class InterposeRecord(RestructuringOperator):
    """Interpose a new record type on a set.

    The Figure 4.2 -> Figure 4.4 transformation: set ``old_set`` from
    owner O to member M is replaced by O -> (upper_set) -> N ->
    (lower_set) -> M, where one N instance exists per distinct
    (O instance, key_fields values) group and M's key fields become
    VIRTUAL through the lower set.
    """

    old_set: str
    new_record: str
    key_fields: tuple[str, ...]
    upper_set: str
    lower_set: str

    def describe(self) -> str:
        return (f"interpose {self.new_record}({', '.join(self.key_fields)}) "
                f"on set {self.old_set}")

    def _validate(self, schema: Schema) -> SetType:
        set_type = schema.set_type(self.old_set)
        if set_type.system_owned:
            raise RestructureError(
                f"cannot interpose on SYSTEM set {self.old_set}"
            )
        if self.new_record in schema.records:
            raise RestructureError(
                f"record {self.new_record} already exists"
            )
        member = schema.record(set_type.member)
        for key in self.key_fields:
            if member.field(key).is_virtual:
                raise RestructureError(
                    f"key field {key} of {member.name} is virtual"
                )
        return set_type

    def apply_schema(self, schema: Schema) -> Schema:
        set_type = self._validate(schema)
        member = schema.record(set_type.member)
        new_fields = [
            Field(key, member.field(key).type) for key in self.key_fields
        ]
        # Member fields that were VIRTUAL through the old set must be
        # re-routed: the new record gets a matching virtual field
        # through the upper set, and the member chains through it.
        for fld in member.fields:
            if fld.is_virtual and fld.virtual_via == self.old_set:
                new_fields.append(Field(
                    fld.name, fld.type,
                    virtual_via=self.upper_set,
                    virtual_using=fld.virtual_using,
                ))
        new_record = RecordType(self.new_record, tuple(new_fields),
                                calc_keys=tuple(self.key_fields))

        def rewire(fld: Field) -> Field:
            if fld.name in self.key_fields:
                return replace(fld, virtual_via=self.lower_set,
                               virtual_using=fld.name)
            if fld.is_virtual and fld.virtual_via == self.old_set:
                return replace(fld, virtual_via=self.lower_set,
                               virtual_using=fld.name)
            return fld

        member_fields = tuple(rewire(f) for f in member.fields)
        lower_keys = tuple(
            key for key in set_type.order_keys
            if key not in self.key_fields
        )
        upper = SetType(self.upper_set, set_type.owner, self.new_record,
                        tuple(self.key_fields), set_type.insertion,
                        set_type.retention, allow_duplicates=False)
        lower = SetType(self.lower_set, self.new_record, set_type.member,
                        lower_keys, set_type.insertion, set_type.retention,
                        set_type.allow_duplicates)
        out = Schema(schema.name, {}, {},
                     self._remap_constraints(schema))
        for name, record in schema.records.items():
            out.records[name] = (record.with_fields(member_fields)
                                 if name == member.name else record)
        out.records[self.new_record] = new_record
        for name, existing in schema.sets.items():
            if name == self.old_set:
                out.sets[self.upper_set] = upper
                out.sets[self.lower_set] = lower
            else:
                out.sets[name] = existing
        return out

    def _remap_constraints(self, schema: Schema) -> list[Constraint]:
        """Constraints naming the interposed set are restated.

        Existence over the old set decomposes into existence through
        both halves of the new path; cardinality limits over the old
        set count members per *owner*, which no single new set
        expresses -- the paper's "constraints can be arbitrarily
        complex" open problem -- so they are refused to the analyst.
        """
        from repro.schema.constraints import (
            CardinalityLimit as _Limit,
            ExistenceConstraint as _Exists,
        )

        out: list[Constraint] = []
        for constraint in schema.constraints:
            if getattr(constraint, "set_name", None) != self.old_set:
                out.append(constraint)
                continue
            if isinstance(constraint, _Exists):
                out.append(_Exists(constraint.name, self.lower_set))
                out.append(_Exists(f"{constraint.name}-GROUP",
                                   self.upper_set))
                continue
            if isinstance(constraint, _Limit):
                raise RestructureError(
                    f"constraint {constraint.name} limits members of "
                    f"{self.old_set} per owner; after interposition the "
                    "count spans groups and must be restated by the "
                    "analyst"
                )
            out.append(constraint)
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        set_type = self._validate(schema)
        changes: list[SchemaChange] = [RecordInterposed(
            self.old_set, self.new_record, tuple(self.key_fields),
            self.upper_set, self.lower_set,
            owner=set_type.owner, member=set_type.member,
            order_keys=set_type.order_keys,
        )]
        member = schema.set_type(self.old_set).member
        for key in self.key_fields:
            changes.append(VirtualizedField(member, key, True,
                                            self.lower_set))
        return changes

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        set_type = source_schema.set_type(self.old_set)
        member_name = set_type.member
        out = snapshot.share()
        pairs = out.links.pop(self.old_set, [])
        owner_by_member: dict[RowId, RowId | None] = {
            member_id: owner_id for owner_id, member_id in pairs
        }
        groups: dict[tuple, int] = {}
        new_rows: list[dict[str, Any]] = []
        upper_links: list[tuple[RowId | None, RowId]] = []
        lower_links: list[tuple[RowId | None, RowId]] = []
        for index, row in enumerate(out.rows_for_write(member_name)):
            member_id: RowId = (member_name, index)
            owner_id = owner_by_member.get(member_id)
            key_values = tuple(row.get(key) for key in self.key_fields)
            group = (owner_id, key_values)
            if group not in groups:
                groups[group] = len(new_rows)
                new_rows.append(dict(zip(self.key_fields, key_values)))
                new_id: RowId = (self.new_record, groups[group])
                if owner_id is not None:
                    upper_links.append((owner_id, new_id))
            lower_links.append(((self.new_record, groups[group]), member_id))
            for key in self.key_fields:
                row.pop(key, None)
        out.rows[self.new_record] = new_rows
        out.links[self.upper_set] = upper_links
        out.links[self.lower_set] = lower_links
        return out

    def inverse(self, schema: Schema) -> "MergeRecords":
        set_type = schema.set_type(self.old_set)
        return MergeRecords(
            self.new_record, self.upper_set, self.lower_set, self.old_set,
            tuple(self.key_fields),
            restore_order_keys=set_type.order_keys,
            restore_insertion=set_type.insertion,
            restore_retention=set_type.retention,
            restore_allow_duplicates=set_type.allow_duplicates,
        )


@dataclass(frozen=True, repr=False)
class MergeRecords(RestructuringOperator):
    """Collapse an interposed record back into its members (the inverse
    of :class:`InterposeRecord`): N between upper_set and lower_set is
    removed, its ``inherited_fields`` are stored back on the member,
    and a direct ``new_set`` connects the old owner to the member."""

    record: str
    upper_set: str
    lower_set: str
    new_set: str
    inherited_fields: tuple[str, ...]
    restore_order_keys: tuple[str, ...] | None = None
    restore_insertion: Insertion | None = None
    restore_retention: Retention | None = None
    restore_allow_duplicates: bool | None = None

    def describe(self) -> str:
        return (f"merge {self.record} into members of {self.lower_set} "
                f"(new set {self.new_set})")

    def _validate(self, schema: Schema) -> tuple[SetType, SetType]:
        upper = schema.set_type(self.upper_set)
        lower = schema.set_type(self.lower_set)
        if upper.member != self.record or lower.owner != self.record:
            raise RestructureError(
                f"{self.record} must be member of {self.upper_set} and "
                f"owner of {self.lower_set}"
            )
        middle = schema.record(self.record)
        missing = [
            f for f in self.inherited_fields if not middle.has_field(f)
        ]
        if missing:
            raise RestructureError(
                f"{self.record} lacks inherited fields {missing}"
            )
        dropped = [
            f.name for f in middle.fields
            if f.name not in self.inherited_fields and not f.is_virtual
        ]
        if dropped:
            raise InformationLoss(
                f"merging {self.record} would drop fields {dropped}; "
                "inherit them or drop them explicitly first"
            )
        return upper, lower

    def apply_schema(self, schema: Schema) -> Schema:
        upper, lower = self._validate(schema)
        middle = schema.record(self.record)
        member = schema.record(lower.member)
        def restore(f: Field) -> Field:
            if not (f.is_virtual and f.virtual_via == self.lower_set):
                return f
            if f.name in self.inherited_fields:
                return Field(f.name, middle.field(f.name).type)
            # A chained virtual (via the middle record's own virtual
            # field): re-route directly through the new set.
            middle_field = middle.field(f.virtual_using)
            if middle_field.is_virtual and \
                    middle_field.virtual_via == self.upper_set:
                return replace(f, virtual_via=self.new_set,
                               virtual_using=middle_field.virtual_using)
            return f

        member_fields = tuple(restore(f) for f in member.fields)
        order_keys = (self.restore_order_keys
                      if self.restore_order_keys is not None
                      else lower.order_keys)
        new_set = SetType(
            self.new_set, upper.owner, lower.member, tuple(order_keys),
            self.restore_insertion or lower.insertion,
            self.restore_retention or lower.retention,
            (self.restore_allow_duplicates
             if self.restore_allow_duplicates is not None
             else lower.allow_duplicates),
        )
        out = Schema(schema.name, {}, {},
                     self._remap_constraints(schema))
        for name, record in schema.records.items():
            if name == self.record:
                continue
            out.records[name] = (record.with_fields(member_fields)
                                 if name == member.name else record)
        placed = False
        for name, existing in schema.sets.items():
            if name in (self.upper_set, self.lower_set):
                if not placed:
                    out.sets[self.new_set] = new_set
                    placed = True
                continue
            out.sets[name] = existing
        return out

    def _remap_constraints(self, schema: Schema) -> list[Constraint]:
        """Inverse of the interpose remapping: existence over the
        lower set becomes existence over the direct set; existence
        over the upper set (the group's own owner) folds away with the
        group record; limits on either half are refused."""
        from repro.schema.constraints import (
            CardinalityLimit as _Limit,
            ExistenceConstraint as _Exists,
        )

        out: list[Constraint] = []
        for constraint in schema.constraints:
            set_name = getattr(constraint, "set_name", None)
            if set_name not in (self.upper_set, self.lower_set):
                out.append(constraint)
                continue
            if isinstance(constraint, _Exists):
                if set_name == self.lower_set:
                    out.append(_Exists(constraint.name, self.new_set))
                # upper-set existence concerned the removed record: gone
                continue
            if isinstance(constraint, _Limit):
                raise RestructureError(
                    f"constraint {constraint.name} limits a set being "
                    "merged away; restate it for the collapsed structure"
                )
            out.append(constraint)
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        self._validate(schema)
        return [RecordsMerged(self.record, self.upper_set, self.lower_set,
                              self.new_set, tuple(self.inherited_fields))]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        middle_rows = out.rows.pop(self.record, [])
        upper_pairs = out.links.pop(self.upper_set, [])
        lower_pairs = out.links.pop(self.lower_set, [])
        owner_of_middle: dict[RowId, RowId | None] = {
            member_id: owner_id for owner_id, member_id in upper_pairs
        }
        new_pairs: list[tuple[RowId | None, RowId]] = []
        for middle_id, member_id in lower_pairs:
            if middle_id is None:
                continue
            middle_row = middle_rows[middle_id[1]]
            member_row = out.row_for_write(member_id)
            for field_name in self.inherited_fields:
                member_row[field_name] = middle_row.get(field_name)
            owner_id = owner_of_middle.get(middle_id)
            if owner_id is not None:
                new_pairs.append((owner_id, member_id))
        out.links[self.new_set] = new_pairs
        return out

    def inverse(self, schema: Schema) -> "InterposeRecord":
        return InterposeRecord(self.new_set, self.record,
                               tuple(self.inherited_fields),
                               self.upper_set, self.lower_set)


# ---------------------------------------------------------------------------
# Vertical partitioning: extract / inline
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class ExtractFields(RestructuringOperator):
    """Split fields off into a new 1:1-linked owner record (vertical
    partition -- one of Section 5.1's "classes of meaningful changes").

    Each source instance gets one ``new_record`` instance holding the
    moved fields; ``link_set`` connects them (new record owns); the
    moved fields become VIRTUAL on the source record, so reads keep
    working unchanged.
    """

    record: str
    fields: tuple[str, ...]
    new_record: str
    link_set: str

    def describe(self) -> str:
        return (f"extract {list(self.fields)} of {self.record} into "
                f"{self.new_record}")

    def _validate(self, schema: Schema) -> RecordType:
        record_type = schema.record(self.record)
        if self.new_record in schema.records:
            raise RestructureError(
                f"record {self.new_record} already exists"
            )
        if self.link_set in schema.sets:
            raise RestructureError(f"set {self.link_set} already exists")
        if not self.fields:
            raise RestructureError("extract needs at least one field")
        for name in self.fields:
            fld = record_type.field(name)
            if fld.is_virtual:
                raise RestructureError(
                    f"cannot extract virtual field {self.record}.{name}"
                )
            if name in record_type.calc_keys:
                raise RestructureError(
                    f"cannot extract CALC key {self.record}.{name}"
                )
        for set_type in schema.sets_with_member(self.record):
            moved = set(self.fields) & set(set_type.order_keys)
            if moved:
                raise RestructureError(
                    f"cannot extract order key(s) {sorted(moved)} of set "
                    f"{set_type.name}"
                )
        return record_type

    def apply_schema(self, schema: Schema) -> Schema:
        record_type = self._validate(schema)
        extracted = RecordType(self.new_record, tuple(
            Field(name, record_type.field(name).type)
            for name in self.fields
        ))
        source_fields = tuple(
            replace(f, virtual_via=self.link_set, virtual_using=f.name)
            if f.name in self.fields else f
            for f in record_type.fields
        )
        link = SetType(self.link_set, self.new_record, self.record,
                       insertion=Insertion.AUTOMATIC,
                       retention=Retention.MANDATORY)
        out = schema.copy()
        out.records[self.record] = record_type.with_fields(source_fields)
        out.records[self.new_record] = extracted
        out.sets[self.link_set] = link
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        self._validate(schema)
        return [FieldsExtracted(self.record, tuple(self.fields),
                                self.new_record, self.link_set)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        new_rows: list[dict[str, Any]] = []
        links: list[tuple[RowId | None, RowId]] = []
        for index, row in enumerate(out.rows_for_write(self.record)):
            new_rows.append({
                name: row.pop(name, None) for name in self.fields
            })
            links.append(((self.new_record, index), (self.record, index)))
        out.rows[self.new_record] = new_rows
        out.links[self.link_set] = links
        return out

    def inverse(self, schema: Schema) -> "InlineFields":
        return InlineFields(self.record, tuple(self.fields),
                            self.new_record, self.link_set)


@dataclass(frozen=True, repr=False)
class InlineFields(RestructuringOperator):
    """Inverse of :class:`ExtractFields`: copy the extracted record's
    fields back into the member and drop the record and its link set."""

    record: str
    fields: tuple[str, ...]
    removed_record: str
    link_set: str

    def describe(self) -> str:
        return (f"inline {self.removed_record} back into {self.record}")

    def _validate(self, schema: Schema) -> None:
        link = schema.set_type(self.link_set)
        if link.owner != self.removed_record or link.member != self.record:
            raise RestructureError(
                f"set {self.link_set} does not link {self.removed_record} "
                f"over {self.record}"
            )
        removed = schema.record(self.removed_record)
        dropped = [
            f.name for f in removed.fields
            if f.name not in self.fields and not f.is_virtual
        ]
        if dropped:
            raise InformationLoss(
                f"inlining {self.removed_record} would drop fields "
                f"{dropped}"
            )

    def apply_schema(self, schema: Schema) -> Schema:
        self._validate(schema)
        removed = schema.record(self.removed_record)
        record_type = schema.record(self.record)
        restored = tuple(
            Field(f.name, removed.field(f.name).type)
            if (f.is_virtual and f.virtual_via == self.link_set
                and f.name in self.fields) else f
            for f in record_type.fields
        )
        kept_constraints = []
        for constraint in schema.constraints:
            if getattr(constraint, "set_name", None) == self.link_set:
                continue  # the 1:1 link (and its guarantees) fold away
            if getattr(constraint, "record", None) == self.removed_record:
                continue
            kept_constraints.append(constraint)
        out = Schema(schema.name, {}, {}, kept_constraints)
        for name, existing in schema.records.items():
            if name == self.removed_record:
                continue
            out.records[name] = (existing.with_fields(restored)
                                 if name == self.record else existing)
        for name, set_type in schema.sets.items():
            if name != self.link_set:
                out.sets[name] = set_type
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        self._validate(schema)
        return [FieldsInlined(self.record, tuple(self.fields),
                              self.removed_record, self.link_set)]

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        out = snapshot.share()
        removed_rows = out.rows.pop(self.removed_record, [])
        pairs = out.links.pop(self.link_set, [])
        for owner_id, member_id in pairs:
            if owner_id is None:
                continue
            source_row = removed_rows[owner_id[1]]
            member_row = out.row_for_write(member_id)
            for name in self.fields:
                member_row[name] = source_row.get(name)
        return out

    def inverse(self, schema: Schema) -> "ExtractFields":
        return ExtractFields(self.record, tuple(self.fields),
                             self.removed_record, self.link_set)


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class AddConstraint(RestructuringOperator):
    """Declare a new constraint -- the Section 5.2 semantic change
    ("the schema is changed to require each employee to have a
    department"): existing programs must be converted to honour it."""

    constraint: Constraint

    def describe(self) -> str:
        return f"add constraint {self.constraint.describe()}"

    def apply_schema(self, schema: Schema) -> Schema:
        self.constraint.validate_against(schema)
        out = schema.copy()
        out.constraints = list(schema.constraints) + [self.constraint]
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        return [ConstraintAdded(self.constraint)]

    def inverse(self, schema: Schema) -> "DropConstraint":
        return DropConstraint(self.constraint.name)


@dataclass(frozen=True, repr=False)
class DropConstraint(RestructuringOperator):
    name: str

    def describe(self) -> str:
        return f"drop constraint {self.name}"

    def apply_schema(self, schema: Schema) -> Schema:
        if not any(c.name == self.name for c in schema.constraints):
            raise RestructureError(f"no constraint named {self.name}")
        out = schema.copy()
        out.constraints = [
            c for c in schema.constraints if c.name != self.name
        ]
        return out

    def changes(self, schema: Schema) -> list[SchemaChange]:
        for constraint in schema.constraints:
            if constraint.name == self.name:
                return [ConstraintRemoved(constraint)]
        raise RestructureError(f"no constraint named {self.name}")

    def inverse(self, schema: Schema) -> "AddConstraint":
        for constraint in schema.constraints:
            if constraint.name == self.name:
                return AddConstraint(constraint)
        raise RestructureError(f"no constraint named {self.name}")


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Composite(RestructuringOperator):
    """A sequence of operators applied left to right."""

    operators: tuple[RestructuringOperator, ...]

    def describe(self) -> str:
        return " ; ".join(op.describe() for op in self.operators)

    def apply_schema(self, schema: Schema) -> Schema:
        for operator in self.operators:
            schema = operator.apply_schema(schema)
        return schema

    def changes(self, schema: Schema) -> list[SchemaChange]:
        out: list[SchemaChange] = []
        for operator in self.operators:
            out.extend(operator.changes(schema))
            schema = operator.apply_schema(schema)
        return out

    def translate(self, snapshot: DataSnapshot, source_schema: Schema,
                  target_schema: Schema) -> DataSnapshot:
        current_schema = source_schema
        for operator in self.operators:
            next_schema = operator.apply_schema(current_schema)
            with span(f"operator.{type(operator).__name__}",
                      operator=operator.describe()):
                snapshot = operator.translate(snapshot, current_schema,
                                              next_schema)
            current_schema = next_schema
        return snapshot

    def inverse(self, schema: Schema) -> "Composite":
        inverses: list[RestructuringOperator] = []
        current_schema = schema
        for operator in self.operators:
            inverses.append(operator.inverse(current_schema))
            current_schema = operator.apply_schema(current_schema)
        inverses.reverse()
        return Composite(tuple(inverses))
