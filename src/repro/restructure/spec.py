"""The restructuring specification language.

The problem statement's second input is "a definition of a
restructuring to some new (logical) form" (Section 1.1).  This module
gives that definition a concrete, file-able syntax in the spirit of the
Figure 4.3 DDL -- one statement per operator, period-terminated::

    RENAME RECORD EMP TO WORKER.
    RENAME FIELD WORKER.AGE TO YEARS.
    RENAME SET DIV-EMP TO STAFF.
    ADD FIELD EMP.GRADE PIC 9(2) DEFAULT 1.
    DROP FIELD EMP.AGE FORCE.
    REORDER SET DIV-EMP BY (AGE) DUPLICATES ALLOWED.
    MEMBERSHIP DIV-EMP AUTOMATIC MANDATORY.
    INTERPOSE DEPT (DEPT-NAME) ON DIV-EMP AS DIV-DEPT, DEPT-EMP.
    MERGE DEPT BETWEEN DIV-DEPT, DEPT-EMP AS DIV-EMP INHERIT (DEPT-NAME).
    VIRTUALIZE M.CITY VIA OM.
    MATERIALIZE M.CITY.
    EXTRACT EMP (AGE) INTO EMP-DETAIL VIA EMP-DATA.
    INLINE EMP-DETAIL INTO EMP (AGE) VIA EMP-DATA.
    SIBLINGS COURSE (C-TXT, C-OFF).
    DROP CONSTRAINT COURSE-LIMIT.

A spec with several statements parses to a
:class:`~repro.restructure.operators.Composite` applied left to right.
:func:`format_spec` renders operators back; parse/format round-trips.
"""

from __future__ import annotations

import re

from repro.errors import DDLSyntaxError
from repro.restructure.operators import (
    AddField,
    ChangeMembership,
    ChangeSetOrder,
    Composite,
    DropConstraint,
    DropField,
    ExtractFields,
    InlineFields,
    InterposeRecord,
    MaterializeField,
    MergeRecords,
    RenameField,
    RenameRecord,
    RenameSet,
    RestructuringOperator,
    SwapSiblingOrder,
    VirtualizeField,
)
from repro.schema.model import Insertion, Retention

_NAME = r"[A-Z0-9][A-Z0-9\-#]*"
_QUALIFIED = rf"({_NAME})\.({_NAME})"


def _name_list(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_default(text: str):
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    return int(text)


_PATTERNS: list[tuple[re.Pattern, object]] = []


def _statement(pattern: str):
    compiled = re.compile(f"^{pattern}$")

    def register(fn):
        _PATTERNS.append((compiled, fn))
        return fn

    return register


@_statement(rf"RENAME RECORD ({_NAME}) TO ({_NAME})")
def _rename_record(match) -> RestructuringOperator:
    return RenameRecord(match.group(1), match.group(2))


@_statement(rf"RENAME FIELD {_QUALIFIED} TO ({_NAME})")
def _rename_field(match) -> RestructuringOperator:
    return RenameField(match.group(1), match.group(2), match.group(3))


@_statement(rf"RENAME SET ({_NAME}) TO ({_NAME})")
def _rename_set(match) -> RestructuringOperator:
    return RenameSet(match.group(1), match.group(2))


@_statement(rf"ADD FIELD {_QUALIFIED} PIC (\S+)(?: DEFAULT (.+))?")
def _add_field(match) -> RestructuringOperator:
    default = _parse_default(match.group(4)) if match.group(4) else None
    return AddField(match.group(1), match.group(2), match.group(3),
                    default)


@_statement(rf"DROP FIELD {_QUALIFIED}( FORCE)?")
def _drop_field(match) -> RestructuringOperator:
    return DropField(match.group(1), match.group(2),
                     force=match.group(3) is not None)


@_statement(rf"REORDER SET ({_NAME}) BY \((.*?)\)"
            r"(?: DUPLICATES (ALLOWED|NOT ALLOWED))?")
def _reorder_set(match) -> RestructuringOperator:
    duplicates = None
    if match.group(3) == "ALLOWED":
        duplicates = True
    elif match.group(3) == "NOT ALLOWED":
        duplicates = False
    return ChangeSetOrder(match.group(1), _name_list(match.group(2)),
                          allow_duplicates=duplicates)


@_statement(rf"MEMBERSHIP ({_NAME}) (AUTOMATIC|MANUAL) "
            r"(MANDATORY|OPTIONAL)")
def _membership(match) -> RestructuringOperator:
    return ChangeMembership(match.group(1),
                            Insertion[match.group(2)],
                            Retention[match.group(3)])


@_statement(rf"INTERPOSE ({_NAME}) \((.*?)\) ON ({_NAME}) "
            rf"AS ({_NAME}), ({_NAME})")
def _interpose(match) -> RestructuringOperator:
    return InterposeRecord(match.group(3), match.group(1),
                           _name_list(match.group(2)),
                           match.group(4), match.group(5))


@_statement(rf"MERGE ({_NAME}) BETWEEN ({_NAME}), ({_NAME}) "
            rf"AS ({_NAME}) INHERIT \((.*?)\)")
def _merge(match) -> RestructuringOperator:
    return MergeRecords(match.group(1), match.group(2), match.group(3),
                        match.group(4), _name_list(match.group(5)))


@_statement(rf"VIRTUALIZE {_QUALIFIED} VIA ({_NAME})"
            rf"(?: USING ({_NAME}))?( FORCE)?")
def _virtualize(match) -> RestructuringOperator:
    return VirtualizeField(match.group(1), match.group(2), match.group(3),
                           using_field=match.group(4),
                           force=match.group(5) is not None)


@_statement(rf"MATERIALIZE {_QUALIFIED}")
def _materialize(match) -> RestructuringOperator:
    return MaterializeField(match.group(1), match.group(2))


@_statement(rf"EXTRACT ({_NAME}) \((.*?)\) INTO ({_NAME}) VIA ({_NAME})")
def _extract(match) -> RestructuringOperator:
    return ExtractFields(match.group(1), _name_list(match.group(2)),
                         match.group(3), match.group(4))


@_statement(rf"INLINE ({_NAME}) INTO ({_NAME}) \((.*?)\) VIA ({_NAME})")
def _inline(match) -> RestructuringOperator:
    return InlineFields(match.group(2), _name_list(match.group(3)),
                        match.group(1), match.group(4))


@_statement(rf"SIBLINGS ({_NAME}) \((.*?)\)")
def _siblings(match) -> RestructuringOperator:
    return SwapSiblingOrder(match.group(1), _name_list(match.group(2)))


@_statement(rf"DROP CONSTRAINT ({_NAME})")
def _drop_constraint(match) -> RestructuringOperator:
    return DropConstraint(match.group(1))


def parse_spec(text: str) -> RestructuringOperator:
    """Parse a restructuring specification.

    Returns the single operator for a one-statement spec, a
    :class:`Composite` otherwise.
    """
    operators: list[RestructuringOperator] = []
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("*>")[0].strip()
        if not line:
            continue
        if not line.endswith("."):
            raise DDLSyntaxError("missing statement period", line=line_no)
        statement = re.sub(r"\s+", " ", line[:-1].strip())
        for pattern, handler in _PATTERNS:
            match = pattern.match(statement)
            if match is not None:
                operators.append(handler(match))
                break
        else:
            raise DDLSyntaxError(
                f"unrecognized restructuring statement {statement!r}",
                line=line_no,
            )
    if not operators:
        raise DDLSyntaxError("empty restructuring specification")
    if len(operators) == 1:
        return operators[0]
    return Composite(tuple(operators))


def format_spec(operator: RestructuringOperator) -> str:
    """Render an operator (or Composite) back into specification text."""
    if isinstance(operator, Composite):
        return "\n".join(
            format_spec(inner) for inner in operator.operators
        ) + ("" if not operator.operators else "")
    return _format_one(operator) + "."


def _format_one(operator: RestructuringOperator) -> str:
    if isinstance(operator, RenameRecord):
        return f"RENAME RECORD {operator.old_name} TO {operator.new_name}"
    if isinstance(operator, RenameField):
        return (f"RENAME FIELD {operator.record}.{operator.old_name} "
                f"TO {operator.new_name}")
    if isinstance(operator, RenameSet):
        return f"RENAME SET {operator.old_name} TO {operator.new_name}"
    if isinstance(operator, AddField):
        text = (f"ADD FIELD {operator.record}.{operator.field_name} "
                f"PIC {operator.pic}")
        if operator.default is not None:
            default = (f"'{operator.default}'"
                       if isinstance(operator.default, str)
                       else operator.default)
            text += f" DEFAULT {default}"
        return text
    if isinstance(operator, DropField):
        force = " FORCE" if operator.force else ""
        return f"DROP FIELD {operator.record}.{operator.field_name}{force}"
    if isinstance(operator, ChangeSetOrder):
        text = (f"REORDER SET {operator.set_name} BY "
                f"({', '.join(operator.new_keys)})")
        if operator.allow_duplicates is True:
            text += " DUPLICATES ALLOWED"
        elif operator.allow_duplicates is False:
            text += " DUPLICATES NOT ALLOWED"
        return text
    if isinstance(operator, ChangeMembership):
        return (f"MEMBERSHIP {operator.set_name} "
                f"{operator.insertion.value} {operator.retention.value}")
    if isinstance(operator, InterposeRecord):
        return (f"INTERPOSE {operator.new_record} "
                f"({', '.join(operator.key_fields)}) ON "
                f"{operator.old_set} AS {operator.upper_set}, "
                f"{operator.lower_set}")
    if isinstance(operator, MergeRecords):
        return (f"MERGE {operator.record} BETWEEN {operator.upper_set}, "
                f"{operator.lower_set} AS {operator.new_set} INHERIT "
                f"({', '.join(operator.inherited_fields)})")
    if isinstance(operator, VirtualizeField):
        text = (f"VIRTUALIZE {operator.record}.{operator.field_name} "
                f"VIA {operator.via_set}")
        if operator.using_field:
            text += f" USING {operator.using_field}"
        if operator.force:
            text += " FORCE"
        return text
    if isinstance(operator, MaterializeField):
        return f"MATERIALIZE {operator.record}.{operator.field_name}"
    if isinstance(operator, ExtractFields):
        return (f"EXTRACT {operator.record} "
                f"({', '.join(operator.fields)}) INTO "
                f"{operator.new_record} VIA {operator.link_set}")
    if isinstance(operator, InlineFields):
        return (f"INLINE {operator.removed_record} INTO {operator.record} "
                f"({', '.join(operator.fields)}) VIA {operator.link_set}")
    if isinstance(operator, SwapSiblingOrder):
        return (f"SIBLINGS {operator.owner} "
                f"({', '.join(operator.new_order)})")
    if isinstance(operator, DropConstraint):
        return f"DROP CONSTRAINT {operator.name}"
    raise TypeError(f"cannot format operator {operator!r}")


__all__ = ["parse_spec", "format_spec"]
