"""Database restructuring.

The paper's problem statement (Section 1.1) takes as given "a new
database schema and a definition of a restructuring to some new
(logical) form".  This package is that definition made executable:

* :mod:`repro.restructure.translator` -- a model-neutral data snapshot,
  extractors for all three data models, and loaders that materialize a
  snapshot into any of them (the EXPRESS-style data translation the
  paper cites as prior work).
* :mod:`repro.restructure.operators` -- the restructuring operator
  catalog; each operator transforms the schema, declares its
  :class:`~repro.schema.diff.SchemaChange` list for the Conversion
  Analyzer, transforms snapshots, and knows its inverse (or refuses,
  per Housel's invertibility restriction, Section 2.2).
"""

from repro.restructure.translator import (
    DataSnapshot,
    extract_snapshot,
    load_hierarchical,
    load_network,
    load_relational,
    restructure_database,
)
from repro.restructure.operators import (
    AddConstraint,
    AddField,
    ExtractFields,
    InlineFields,
    ChangeMembership,
    ChangeSetOrder,
    Composite,
    DropConstraint,
    DropField,
    InterposeRecord,
    MaterializeField,
    MergeRecords,
    RenameField,
    RenameRecord,
    RenameSet,
    RestructuringOperator,
    SwapSiblingOrder,
    VirtualizeField,
)

__all__ = [
    "DataSnapshot",
    "extract_snapshot",
    "load_network",
    "load_relational",
    "load_hierarchical",
    "restructure_database",
    "RestructuringOperator",
    "RenameRecord",
    "RenameField",
    "RenameSet",
    "AddField",
    "ExtractFields",
    "InlineFields",
    "DropField",
    "ChangeSetOrder",
    "ChangeMembership",
    "InterposeRecord",
    "MergeRecords",
    "VirtualizeField",
    "MaterializeField",
    "SwapSiblingOrder",
    "AddConstraint",
    "DropConstraint",
    "Composite",
]
