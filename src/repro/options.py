"""The one options dataclass behind the :mod:`repro.api` facade.

Before the facade, each subsystem grew its own kwargs: the supervisor
took ``target_model=``, the cascade took ``inputs=``, the batch runner
took ``checkpoint=``/``resume=``/``inputs=``, and the CLI threaded yet
another ad-hoc bundle through all three.  :class:`ConversionOptions`
is the union of those knobs in one frozen, picklable value that every
public entry point accepts -- picklable matters, because the parallel
executor ships the options to its worker processes verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily to keep this module cycle-free
    from repro.catalog.model import RuleCatalog
    from repro.core.supervisor import Analyst
    from repro.faultinject import FaultPlan
    from repro.programs.interpreter import ProgramInputs

#: The supervisor's default optimizer pass order (Figure 4.1 phase 4).
DEFAULT_OPTIMIZER_PASSES = ("pushdown", "keyed", "calc-locate",
                            "hoist-locate", "dedup-locate", "owner-elim")

#: The cascade's default stage order: the paper's preferred strategy
#: first (Section 2.2), runtime strategies in reserve (Section 2.1.2).
DEFAULT_STAGE_ORDER = ("rewrite", "emulation", "bridge")

#: Minimum pending programs before a worker pool pays for itself.  The
#: floor is deliberately generous: spawning an interpreter and
#: rehydrating the cascade seed costs whole seconds, while a small
#: batch converts in milliseconds in-process.
DEFAULT_PARALLEL_THRESHOLD = 32

#: Ceiling for the auto-resolved dispatch chunk size.
MAX_AUTO_CHUNK = 64


@dataclass(frozen=True)
class ConversionOptions:
    """Every conversion knob the public API understands.

    One instance configures single-program conversion (pipeline knobs),
    cascade validation (stage knobs), and batch execution (journal and
    parallelism knobs) alike; entry points read only the fields they
    use, so one options value can drive a whole workflow end to end.
    """

    # -- pipeline (supervisor) knobs ----------------------------------
    #: Target data model for the generated program (``None``: keep the
    #: source program's model).
    target_model: str | None = None
    #: Optimizer passes, in application order.
    optimizer_passes: tuple[str, ...] = DEFAULT_OPTIMIZER_PASSES
    #: Conversion Analyst answering Section 4 questions (``None``: the
    #: permissive :class:`~repro.core.supervisor.AutoAnalyst`).
    analyst: "Analyst | None" = None
    #: Program name -> {generic-call index -> verb} pins for the
    #: verb-variability pathology.
    verb_pins: dict[str, dict[int, str]] | None = None
    #: Rule catalog driving the Program Converter (``None``: the
    #: shipped builtin catalog).  Load one with
    #: :func:`repro.api.load_rule_catalog`; the catalog is a frozen
    #: value, so it pickles with these options to parallel workers and
    #: its :meth:`~repro.catalog.model.RuleCatalog.identity` keys warm
    #: state sharing in the service.
    rule_catalog: "RuleCatalog | None" = None

    # -- cascade knobs ------------------------------------------------
    #: Strategy stage order for the fallback cascade.
    order: tuple[str, ...] = DEFAULT_STAGE_ORDER
    #: Terminal/file inputs replayed by every validation probe.
    inputs: "ProgramInputs | None" = None
    #: How the cascade decides which strategy to probe first:
    #: ``"cost"`` consults the :mod:`repro.cost` predictor (skipping
    #: the rewrite attempt only when its static analysis proves the
    #: analyzer would refuse); ``"fixed"`` always probes ``order`` as
    #: written.  Validation is never skipped in either mode.
    strategy_order: str = "cost"
    #: Cardinality source for cost prediction: ``"auto"`` counts the
    #: source database's records; ``"default"`` uses the flat
    #: default-cardinality model.
    cost_model: str = "auto"

    # -- batch knobs --------------------------------------------------
    #: Worker process count for batch conversion.  1 is the in-process
    #: fast path (no pooling, no pickling); ``None`` means "one worker
    #: per CPU" and is resolved by the parallel executor.
    jobs: int | None = 1
    #: Programs per parallel dispatch chunk (``None``: auto -- roughly
    #: eight chunks per worker, capped at :data:`MAX_AUTO_CHUNK`, so
    #: dynamic dispatch can rebalance without drowning the task queue).
    chunk_size: int | None = None
    #: Minimum pending programs before the executor spawns a worker
    #: pool; smaller batches auto-degrade to the in-process path
    #: (``None``: ``max(2 * jobs, DEFAULT_PARALLEL_THRESHOLD)``).
    parallel_threshold: int | None = None
    #: JSON journal path, updated after every program.
    checkpoint: str | Path | None = None
    #: Skip programs already journaled in ``checkpoint``.
    resume: bool = False
    #: Path for the batch-report artifact: the final
    #: :class:`~repro.core.report.BatchReport` summary written
    #: atomically (:func:`repro.jsonio.write_json_atomic`) when the
    #: batch completes.  The conversion service serves this file as a
    #: job's report artifact, and ``repro convert --report-json``
    #: writes the identical bytes -- the byte-compare contract between
    #: served and shell-run batches rests on both sides routing
    #: through this one option.
    report_json: str | Path | None = None
    #: Deterministic fault plan armed per program unit (robustness
    #: testing; see :mod:`repro.faultinject`).
    fault_plan: "FaultPlan | None" = None

    # -- supervision knobs --------------------------------------------
    #: Per-program wall-clock conversion deadline in seconds, enforced
    #: cooperatively by the interpreter's statement loop (serial and
    #: in-worker alike, so timeout reports stay byte-identical at any
    #: jobs count).  ``None`` disables the watchdog.
    program_timeout: float | None = None
    #: How many consecutive worker respawns the coordinator tolerates
    #: without any progress (a completed chunk, a quarantine decision,
    #: or a narrowed suspect chunk) before the batch fails with
    #: :class:`~repro.parallel.ParallelExecutionError`.  Guards against
    #: a crash-looping pool (e.g. seed state that cannot rehydrate).
    max_worker_respawns: int = 3
    #: How many times a single program may kill its worker process
    #: before it is quarantined with a synthesized
    #: ``STATUS_QUARANTINED`` report instead of being re-dealt.  The
    #: serial engine applies the same retry count, so quarantine
    #: reports are byte-identical at any jobs count.
    max_program_retries: int = 2
    #: Coordinator result-queue poll interval in seconds; every poll
    #: timeout re-checks worker health, so this bounds dead-worker
    #: detection latency.
    poll_interval: float = 0.2
    #: Budget in seconds for the graceful-interrupt drain: in-flight
    #: chunks get this long to finish and journal before the pool is
    #: terminated.
    drain_timeout: float = 30.0

    # -- engine knobs -------------------------------------------------
    #: Maintain and use secondary indexes in databases the API builds.
    use_indexes: bool = True

    def replace(self, **changes: Any) -> "ConversionOptions":
        """A copy with the given fields replaced (frozen-safe)."""
        return replace(self, **changes)

    def resolved_jobs(self) -> int:
        """The effective worker count (``None`` -> CPU count)."""
        if self.jobs is None:
            import os

            return os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        return self.jobs

    def resolved_chunk_size(self, pending: int, jobs: int) -> int:
        """The effective dispatch chunk size for a batch of ``pending``
        programs across ``jobs`` workers."""
        if self.chunk_size is not None:
            if self.chunk_size < 1:
                raise ValueError(
                    f"chunk_size must be >= 1, got {self.chunk_size}"
                )
            return self.chunk_size
        slots = max(1, jobs) * 8
        return max(1, min(MAX_AUTO_CHUNK, -(-pending // slots)))

    def resolved_parallel_threshold(self, jobs: int) -> int:
        """The minimum pending-corpus size that justifies a pool."""
        if self.parallel_threshold is not None:
            if self.parallel_threshold < 0:
                raise ValueError(
                    f"parallel_threshold must be >= 0, got "
                    f"{self.parallel_threshold}"
                )
            return self.parallel_threshold
        return max(2 * jobs, DEFAULT_PARALLEL_THRESHOLD)


__all__ = [
    "ConversionOptions",
    "DEFAULT_OPTIMIZER_PASSES",
    "DEFAULT_PARALLEL_THRESHOLD",
    "DEFAULT_STAGE_ORDER",
    "MAX_AUTO_CHUNK",
]
