"""The rule-catalog data model.

A :class:`RuleCatalog` is the declarative, versioned description of a
conversion ruleset: which :class:`~repro.schema.diff.SchemaChange`
kinds are handled, by which primitive combinator, with which analyst
message templates, cost hints, and applicability guards -- plus the
language templates the Program Generator may emit, the Michigan
algebra rewrites, and the optimizer passes the catalog permits.

Everything here is a frozen dataclass of strings and tuples, so a
catalog pickles with the cascade to parallel workers and hashes to a
stable :meth:`RuleCatalog.identity` -- the value that flows into the
service's ``pool_key`` so two jobs share warm state only when they
compile the same ruleset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import repro.schema.diff as schema_diff
from repro.schema.diff import SchemaChange

#: Current catalog format version (the ``CATALOG <name> VERSION <n>``
#: header).  Bump when the text format changes incompatibly.
CATALOG_VERSION = 1

#: Change kind name -> dataclass, built from the Section 4 taxonomy.
#: The loader validates every ``ON`` clause against this registry.
CHANGE_KINDS: dict[str, type[SchemaChange]] = {
    name: value
    for name, value in vars(schema_diff).items()
    if isinstance(value, type)
    and issubclass(value, SchemaChange)
    and value is not SchemaChange
}

#: Network-model language templates the Program Generator can emit;
#: a catalog's TEMPLATE entries gate which of these are available.
NETWORK_TEMPLATES = (
    "locate",
    "scan",
    "keyed-scan",
    "process-first",
    "owner-hop",
)

#: Data models a TEMPLATE entry may target.
TEMPLATE_MODELS = ("network", "relational", "hierarchical")


@dataclass(frozen=True)
class Guard:
    """One applicability guard: the entry matches a change only when
    ``getattr(change, attr)`` equals ``value`` (membership for tuple
    attributes)."""

    attr: str
    value: str

    def matches(self, change: SchemaChange) -> bool:
        actual = getattr(change, self.attr, None)
        if isinstance(actual, tuple):
            return self.value in actual
        if isinstance(actual, str):
            return actual == self.value
        return str(actual) == self.value


@dataclass(frozen=True)
class RuleEntry:
    """One catalog rule: change kind -> primitive + message templates."""

    name: str
    on: str
    using: str
    notes: tuple[str, ...] = ()
    warnings: tuple[str, ...] = ()
    refusal: str | None = None
    cost: int | None = None
    guards: tuple[Guard, ...] = ()
    #: Source line of the ``RULE`` directive (0 for programmatic
    #: entries); excluded from equality so a reloaded render compares
    #: equal to the original.
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class TemplateEntry:
    """One language template the generator may emit for the model."""

    name: str
    model: str = "network"
    doc: str | None = None
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class AlgebraEntry:
    """One Michigan-algebra rewrite binding: change kind -> rewrite."""

    name: str
    on: str
    rewrite: str
    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class DomainDecl:
    """Optional declared vocabulary for dangling-reference checks:
    guard values naming records/sets/fields outside this vocabulary
    are load-time errors."""

    records: tuple[tuple[str, tuple[str, ...]], ...] = ()
    sets: tuple[str, ...] = ()

    def record_names(self) -> frozenset[str]:
        return frozenset(name for name, _fields in self.records)

    def field_names(self, record: str | None = None) -> frozenset[str]:
        out: set[str] = set()
        for name, fields in self.records:
            if record is None or name == record:
                out.update(fields)
        return frozenset(out)


@dataclass(frozen=True)
class RuleCatalog:
    """A parsed, validated rule catalog (see :mod:`repro.catalog`)."""

    name: str
    version: int
    rules: tuple[RuleEntry, ...]
    templates: tuple[TemplateEntry, ...] = ()
    algebra: tuple[AlgebraEntry, ...] = ()
    passes: tuple[str, ...] | None = None
    domain: DomainDecl | None = None

    def rule(self, name: str) -> RuleEntry:
        for entry in self.rules:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def render(self) -> str:
        """Canonical text form; ``load_catalog_text(render())`` yields
        an equal catalog (the round-trip contract the parity tests
        pin)."""
        lines = [f"CATALOG {self.name} VERSION {self.version}", ""]
        if self.domain is not None:
            lines.append("DOMAIN")
            for record, fields in self.domain.records:
                suffix = f" FIELDS {', '.join(fields)}" if fields else ""
                lines.append(f"  RECORD {record}{suffix}")
            for set_name in self.domain.sets:
                lines.append(f"  SET {set_name}")
            lines.extend(("END", ""))
        for entry in self.rules:
            lines.append(f"RULE {entry.name}")
            lines.append(f"  ON {entry.on}")
            lines.append(f"  USING {entry.using}")
            if entry.cost is not None:
                lines.append(f"  COST {entry.cost}")
            for guard in entry.guards:
                lines.append(f"  ONLY {guard.attr} {guard.value}")
            for note in entry.notes:
                lines.append(f"  NOTE {quote(note)}")
            for warning in entry.warnings:
                lines.append(f"  WARN {quote(warning)}")
            if entry.refusal is not None:
                lines.append(f"  REFUSE {quote(entry.refusal)}")
            lines.extend(("END", ""))
        for template in self.templates:
            lines.append(f"TEMPLATE {template.name}")
            lines.append(f"  MODEL {template.model}")
            if template.doc is not None:
                lines.append(f"  DOC {quote(template.doc)}")
            lines.extend(("END", ""))
        for algebra in self.algebra:
            lines.append(f"ALGEBRA {algebra.name}")
            lines.append(f"  ON {algebra.on}")
            lines.append(f"  REWRITE {algebra.rewrite}")
            lines.extend(("END", ""))
        if self.passes is not None:
            lines.extend((f"PASSES {', '.join(self.passes)}", ""))
        return "\n".join(lines[:-1] if lines[-1] == "" else lines) + "\n"

    def identity(self) -> str:
        """A stable content hash of the canonical rendering -- the
        catalog identity carried by worker pickles, bench reports, and
        the service's ``pool_key``."""
        return hashlib.sha256(self.render().encode("utf-8")).hexdigest()


def quote(text: str) -> str:
    """Render one message template as a catalog string literal."""
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


__all__ = [
    "AlgebraEntry",
    "CATALOG_VERSION",
    "CHANGE_KINDS",
    "DomainDecl",
    "Guard",
    "NETWORK_TEMPLATES",
    "RuleCatalog",
    "RuleEntry",
    "TEMPLATE_MODELS",
    "TemplateEntry",
    "quote",
]
