"""Rules-as-data: the declarative conversion-rule catalog.

The transformation rules of Figure 4.1 -- which schema-change kinds
are convertible, with which rewrite, and what the analyst is told --
used to be hardcoded Python classes.  This package makes them data: a
versioned, self-describing catalog format (:mod:`repro.catalog.model`),
a validating loader (:mod:`repro.catalog.loader`), a primitive
vocabulary the entries instantiate (:mod:`repro.catalog.primitives`),
and a compiler into the existing rule machinery
(:mod:`repro.catalog.compile`).  The shipped ``data/builtin.rules``
re-expresses every builtin rule; custom catalogs reach the pipeline
through ``ConversionOptions.rule_catalog`` / ``repro convert --rules``
without touching any ``repro.core`` module.
"""

from repro.catalog.compile import (
    CompiledRules,
    compile_catalog,
    default_catalog,
    default_rules,
)
from repro.catalog.loader import (
    load_catalog_file,
    load_catalog_text,
    validate_catalog,
)
from repro.catalog.model import (
    CATALOG_VERSION,
    CHANGE_KINDS,
    NETWORK_TEMPLATES,
    AlgebraEntry,
    DomainDecl,
    Guard,
    RuleCatalog,
    RuleEntry,
    TemplateEntry,
)
from repro.catalog.primitives import PRIMITIVES, Primitive

__all__ = [
    "AlgebraEntry",
    "CATALOG_VERSION",
    "CHANGE_KINDS",
    "CompiledRules",
    "DomainDecl",
    "Guard",
    "NETWORK_TEMPLATES",
    "PRIMITIVES",
    "Primitive",
    "RuleCatalog",
    "RuleEntry",
    "TemplateEntry",
    "compile_catalog",
    "default_catalog",
    "default_rules",
    "load_catalog_file",
    "load_catalog_text",
    "validate_catalog",
]
