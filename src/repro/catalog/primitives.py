"""The primitive registry: catalog ``USING`` names -> rule factories.

Each :class:`Primitive` describes one combinator a catalog entry may
instantiate: which change kinds it accepts (``kinds`` pins exact
kinds; ``requires`` instead demands the kind carry certain fields),
how many NOTE/WARN/REFUSE message templates it takes, and which extra
placeholder names it feeds the templates beyond the change's own
fields.  The loader validates entries against this table at import;
:mod:`repro.catalog.compile` calls the factories.

The structural primitives wrap the hand-written rewrites that remain
in :mod:`repro.core.rules`; the message combinators are fully
parameterized by the catalog.  :class:`StoreDefaultRule` lives here --
outside ``repro.core`` -- as the proof that a user-supplied catalog
entry can change conversion behaviour without touching any core
module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.core import abstract, rules as core_rules
from repro.core.abstract import AStore
from repro.core.rules import TransformationRule, format_message
from repro.programs import ast
from repro.schema.diff import SchemaChange

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.model import RuleEntry


class StoreDefaultRule(TransformationRule):
    """Extension combinator: rewrite every STORE of the changed record
    to carry the new field's default explicitly (instead of merely
    noting that the engine will default it).  The demonstration that
    behaviour-changing rules load from catalog data alone."""

    def __init__(self, change_type: type[SchemaChange], note: str):
        self.change_type = change_type
        self.note = note

    def apply(self, program, change, ctx):
        rewrote = []

        def fix(stmt):
            if isinstance(stmt, AStore) and stmt.entity == change.record:
                stored = {name for name, _value in stmt.values}
                if change.field_name not in stored:
                    rewrote.append(stmt)
                    values = stmt.values + (
                        (change.field_name, ast.Const(change.default)),
                    )
                    return replace(stmt, values=values)
            return stmt

        statements = abstract.transform(program.statements, fix)
        if rewrote:
            ctx.note(format_message(self.note, change))
            return program.with_statements(statements)
        return program


@dataclass(frozen=True)
class Primitive:
    """One combinator the catalog may instantiate."""

    name: str
    factory: Callable[["RuleEntry", type[SchemaChange]],
                      TransformationRule]
    #: Exact change kinds accepted (None: any kind satisfying
    #: ``requires``).
    kinds: tuple[str, ...] | None = None
    #: Change fields the combinator reads (checked against the ON
    #: kind's dataclass fields when ``kinds`` is None).
    requires: tuple[str, ...] = ()
    #: Required message template counts.
    notes: int = 0
    warnings: int = 0
    refusals: int = 0
    #: Extra placeholder names the combinator provides to templates
    #: beyond the change's own fields.
    extras: tuple[str, ...] = ()


def _structural(name: str, kind: str,
                rule_class: type[TransformationRule]) -> Primitive:
    return Primitive(name, lambda entry, cls: rule_class(),
                     kinds=(kind,))


#: ``USING`` name -> primitive, the whole combinator vocabulary.
PRIMITIVES: dict[str, Primitive] = {
    primitive.name: primitive
    for primitive in (
        # Structural rewrites (hand-written in repro.core.rules).
        _structural("rename-record", "RecordRenamed",
                    core_rules.RenameRecordRule),
        _structural("rename-field", "FieldRenamed",
                    core_rules.RenameFieldRule),
        _structural("rename-set", "SetRenamed",
                    core_rules.RenameSetRule),
        _structural("virtualize-field", "VirtualizedField",
                    core_rules.VirtualizedFieldRule),
        _structural("interpose-record", "RecordInterposed",
                    core_rules.InterposeRule),
        _structural("merge-records", "RecordsMerged",
                    core_rules.MergeRule),
        _structural("extract-fields", "FieldsExtracted",
                    core_rules.ExtractFieldsRule),
        _structural("inline-fields", "FieldsInlined",
                    core_rules.InlineFieldsRule),
        # Message combinators (fully catalog-parameterized).
        Primitive("noop",
                  lambda entry, cls: core_rules.NoopRule(cls)),
        Primitive("note-on-store",
                  lambda entry, cls: core_rules.NoteOnStoreRule(
                      cls, entry.notes[0]),
                  requires=("record",), notes=1),
        Primitive("refuse-on-field-use",
                  lambda entry, cls: core_rules.RefuseOnFieldUseRule(
                      cls, entry.refusal),
                  requires=("record", "field_name"), refusals=1),
        Primitive("refuse-on-record-use",
                  lambda entry, cls: core_rules.RefuseOnRecordUseRule(
                      cls, entry.refusal),
                  requires=("record",), refusals=1),
        Primitive("refuse-on-set-use",
                  lambda entry, cls: core_rules.RefuseOnSetUseRule(
                      cls, entry.refusal),
                  requires=("set_name",), refusals=1),
        Primitive("warn-on-reorder",
                  lambda entry, cls: core_rules.WarnOnReorderRule(
                      cls, entry.warnings[0], entry.warnings[1]),
                  requires=("set_name",), warnings=2),
        Primitive("note-on-membership",
                  lambda entry, cls: core_rules.NoteOnMembershipRule(
                      cls, entry.notes[0]),
                  requires=("set_name",), notes=1, extras=("member",)),
        Primitive("note",
                  lambda entry, cls: core_rules.NoteRule(
                      cls, entry.notes[0]),
                  notes=1),
        # Extension combinator (defined in this module, not core).
        Primitive("store-default",
                  lambda entry, cls: StoreDefaultRule(
                      cls, entry.notes[0]),
                  requires=("record", "field_name", "default"),
                  notes=1),
    )
}


__all__ = ["PRIMITIVES", "Primitive", "StoreDefaultRule"]
