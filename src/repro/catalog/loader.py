"""Load and validate rule-catalog documents.

The catalog text format is line-oriented, in the same house style as
the network DDL and restructuring spec parsers: one directive per
line, ``END``-terminated blocks, full-line comments with ``#`` or
``*>``.  A document looks like::

    CATALOG my-rules VERSION 1

    DOMAIN
      RECORD EMP FIELDS EMP-NO, SALARY
      SET DEPT-EMP
    END

    RULE field-added
      ON FieldAdded
      USING note-on-store
      COST 1
      NOTE "new field {record}.{field_name} ..."
    END

    TEMPLATE keyed-scan
      MODEL network
    END

    ALGEBRA rename-relation
      ON RecordRenamed
      REWRITE rename-relation
    END

    PASSES pushdown, keyed

Every entry is validated at load time -- unknown directives or keys,
unknown change kinds or primitives, template-count and placeholder
mismatches, dangling record/set/field references against the DOMAIN
vocabulary -- and every violation is a :class:`~repro.errors.CatalogError`
carrying the file and line position.  :func:`validate_catalog` runs
the same semantic checks on programmatically built catalogs.
"""

from __future__ import annotations

import re
import string
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.catalog.model import (
    CATALOG_VERSION,
    CHANGE_KINDS,
    NETWORK_TEMPLATES,
    TEMPLATE_MODELS,
    AlgebraEntry,
    DomainDecl,
    Guard,
    RuleCatalog,
    RuleEntry,
    TemplateEntry,
)
from repro.catalog.primitives import PRIMITIVES
from repro.core.code_templates import ALGEBRA_REWRITES
from repro.errors import CatalogError
from repro.options import DEFAULT_OPTIMIZER_PASSES

_HEADER = re.compile(r"CATALOG (\S+) VERSION (\d+)$")

#: Change attributes that name record types / set types / fields, for
#: DOMAIN dangling-reference checks on guard values.
_RECORD_ATTRS = frozenset(
    {"record", "new_record", "removed_record", "owner", "member"})
_SET_ATTRS = frozenset(
    {"set_name", "old_set", "new_set", "upper_set", "lower_set",
     "link_set", "via_set"})
_FIELD_ATTRS = frozenset({"field_name"})
#: ``old_name``/``new_name`` are polymorphic across the rename kinds.
_RENAME_CATEGORY = {
    "RecordRenamed": "record",
    "SetRenamed": "set",
    "FieldRenamed": "field",
}


def load_catalog_file(path: str | Path) -> RuleCatalog:
    """Parse and validate one catalog file."""
    path = Path(path)
    return load_catalog_text(path.read_text(), path=str(path))


def load_catalog_text(text: str, path: str | None = None) -> RuleCatalog:
    """Parse and validate catalog text (``path`` labels errors)."""
    catalog = _Parser(text, path).parse()
    validate_catalog(catalog, path=path)
    return catalog


class _Parser:
    """The line-oriented catalog parser (syntax only; semantic checks
    live in :func:`validate_catalog`)."""

    def __init__(self, text: str, path: str | None):
        self.path = path
        self.lines = text.splitlines()
        self.pos = 0

    def error(self, message: str, line: int | None) -> None:
        raise CatalogError(message, path=self.path, line=line)

    def _next(self) -> tuple[int | None, str | None]:
        """The next significant (non-blank, non-comment) line."""
        while self.pos < len(self.lines):
            self.pos += 1
            line = self.lines[self.pos - 1].strip()
            if not line or line.startswith("#") or line.startswith("*>"):
                continue
            return self.pos, line
        return None, None

    def parse(self) -> RuleCatalog:
        number, line = self._next()
        match = _HEADER.match(line) if line is not None else None
        if match is None:
            self.error("catalog must begin with "
                       "'CATALOG <name> VERSION <n>'", number or 1)
        version = int(match.group(2))
        if version != CATALOG_VERSION:
            self.error(f"unsupported catalog version {version} "
                       f"(supported: {CATALOG_VERSION})", number)

        rules: list[RuleEntry] = []
        templates: list[TemplateEntry] = []
        algebra: list[AlgebraEntry] = []
        passes: tuple[str, ...] | None = None
        passes_line = 0
        domain: DomainDecl | None = None
        while True:
            number, line = self._next()
            if line is None:
                break
            word, _, rest = line.partition(" ")
            rest = rest.strip()
            if word == "DOMAIN":
                if domain is not None:
                    self.error("duplicate DOMAIN section", number)
                domain = self._parse_domain(number)
            elif word == "RULE":
                rules.append(self._parse_rule(rest, number))
            elif word == "TEMPLATE":
                templates.append(self._parse_template(rest, number))
            elif word == "ALGEBRA":
                algebra.append(self._parse_algebra(rest, number))
            elif word == "PASSES":
                if passes is not None:
                    self.error("duplicate PASSES directive", number)
                passes = tuple(
                    p.strip() for p in rest.split(",") if p.strip())
                passes_line = number
            else:
                self.error(f"unknown catalog directive {word!r}", number)
        catalog = RuleCatalog(match.group(1), version, tuple(rules),
                              tuple(templates), tuple(algebra), passes,
                              domain)
        if passes is not None:
            for name in passes:
                if name not in DEFAULT_OPTIMIZER_PASSES:
                    self.error(f"unknown optimizer pass {name!r}",
                               passes_line)
        return catalog

    def _block_line(self, block: str, name: str,
                    start: int) -> tuple[int, str, str]:
        number, line = self._next()
        if line is None:
            self.error(f"{block} {name!r} is missing END", start)
        word, _, rest = line.partition(" ")
        return number, word, rest.strip()

    def _parse_quoted(self, rest: str, line: int) -> str:
        rest = rest.strip()
        if not rest.startswith('"'):
            self.error("expected a quoted string", line)
        out: list[str] = []
        i = 1
        while i < len(rest):
            ch = rest[i]
            if ch == "\\":
                if i + 1 >= len(rest):
                    break
                out.append(rest[i + 1])
                i += 2
                continue
            if ch == '"':
                if rest[i + 1:].strip():
                    break
                return "".join(out)
            out.append(ch)
            i += 1
        self.error("expected a quoted string", line)

    def _parse_rule(self, name: str, start: int) -> RuleEntry:
        if not name:
            self.error("RULE needs a name", start)
        on = using = refusal = None
        cost: int | None = None
        notes: list[str] = []
        warnings: list[str] = []
        guards: list[Guard] = []
        while True:
            number, word, rest = self._block_line("RULE", name, start)
            if word == "END":
                break
            if word == "ON":
                on = rest
            elif word == "USING":
                using = rest
            elif word == "COST":
                try:
                    cost = int(rest)
                except ValueError:
                    self.error(f"COST must be an integer, got {rest!r}",
                               number)
            elif word in ("ONLY", "NOTE", "WARN", "REFUSE"):
                if on is None or using is None:
                    self.error(f"ON and USING must precede {word}",
                               number)
                if word == "ONLY":
                    parts = rest.split(None, 1)
                    if len(parts) != 2:
                        self.error("ONLY takes an attribute and a value",
                                   number)
                    guards.append(Guard(parts[0], parts[1]))
                elif word == "NOTE":
                    notes.append(self._parse_quoted(rest, number))
                elif word == "WARN":
                    warnings.append(self._parse_quoted(rest, number))
                else:
                    if refusal is not None:
                        self.error("only one REFUSE template is allowed",
                                   number)
                    refusal = self._parse_quoted(rest, number)
            else:
                self.error(f"unknown RULE key {word!r}", number)
        if on is None or using is None:
            self.error(f"RULE {name!r} needs ON and USING", start)
        return RuleEntry(name, on, using, tuple(notes), tuple(warnings),
                         refusal, cost, tuple(guards), line=start)

    def _parse_template(self, name: str, start: int) -> TemplateEntry:
        if not name:
            self.error("TEMPLATE needs a name", start)
        model = "network"
        doc: str | None = None
        while True:
            number, word, rest = self._block_line("TEMPLATE", name, start)
            if word == "END":
                break
            if word == "MODEL":
                model = rest
            elif word == "DOC":
                doc = self._parse_quoted(rest, number)
            else:
                self.error(f"unknown TEMPLATE key {word!r}", number)
        return TemplateEntry(name, model, doc, line=start)

    def _parse_algebra(self, name: str, start: int) -> AlgebraEntry:
        if not name:
            self.error("ALGEBRA needs a name", start)
        on = rewrite = None
        while True:
            number, word, rest = self._block_line("ALGEBRA", name, start)
            if word == "END":
                break
            if word == "ON":
                on = rest
            elif word == "REWRITE":
                rewrite = rest
            else:
                self.error(f"unknown ALGEBRA key {word!r}", number)
        if on is None or rewrite is None:
            self.error(f"ALGEBRA {name!r} needs ON and REWRITE", start)
        return AlgebraEntry(name, on, rewrite, line=start)

    def _parse_domain(self, start: int) -> DomainDecl:
        records: list[tuple[str, tuple[str, ...]]] = []
        sets: list[str] = []
        while True:
            number, word, rest = self._block_line("DOMAIN", "DOMAIN",
                                                  start)
            if word == "END":
                break
            if word == "RECORD":
                parts = rest.split(None, 1)
                if not parts:
                    self.error("RECORD needs a name", number)
                field_names: tuple[str, ...] = ()
                if len(parts) == 2:
                    keyword, _, spec = parts[1].partition(" ")
                    if keyword != "FIELDS" or not spec.strip():
                        self.error("RECORD takes 'FIELDS a, b' after "
                                   "the name", number)
                    field_names = tuple(
                        f.strip() for f in spec.split(",") if f.strip())
                records.append((parts[0], field_names))
            elif word == "SET":
                if not rest:
                    self.error("SET needs a name", number)
                sets.append(rest)
            else:
                self.error(f"unknown DOMAIN key {word!r}", number)
        return DomainDecl(tuple(records), tuple(sets))


# ---------------------------------------------------------------------------
# Semantic validation
# ---------------------------------------------------------------------------


def validate_catalog(catalog: RuleCatalog,
                     path: str | None = None) -> None:
    """Semantic validation: every entry must bind to a known change
    kind and primitive, carry exactly the message templates its
    primitive needs with resolvable placeholders, and guard only on
    declared vocabulary.  Raises :class:`CatalogError` on the first
    violation."""

    def error(message: str, line: int) -> None:
        raise CatalogError(message, path=path, line=line or None)

    seen: set[str] = set()
    for entry in catalog.rules:
        if entry.name in seen:
            error(f"duplicate RULE name {entry.name!r}", entry.line)
        seen.add(entry.name)
        kind_cls = CHANGE_KINDS.get(entry.on)
        if kind_cls is None:
            error(f"unknown change kind {entry.on!r}", entry.line)
        primitive = PRIMITIVES.get(entry.using)
        if primitive is None:
            error(f"unknown primitive {entry.using!r}", entry.line)
        kind_fields = {spec.name for spec in dataclass_fields(kind_cls)}
        if primitive.kinds is not None:
            if entry.on not in primitive.kinds:
                error(f"primitive {entry.using!r} does not apply to "
                      f"{entry.on}", entry.line)
        else:
            for attr in primitive.requires:
                if attr not in kind_fields:
                    error(f"primitive {entry.using!r} needs change "
                          f"field {attr!r}, which {entry.on} does not "
                          f"have", entry.line)
        for label, want, got in (
            ("NOTE", primitive.notes, len(entry.notes)),
            ("WARN", primitive.warnings, len(entry.warnings)),
            ("REFUSE", primitive.refusals,
             0 if entry.refusal is None else 1),
        ):
            if want != got:
                error(f"primitive {entry.using!r} takes exactly {want} "
                      f"{label} template(s), got {got}", entry.line)
        allowed = kind_fields | set(primitive.extras)
        refusals = () if entry.refusal is None else (entry.refusal,)
        for template in entry.notes + entry.warnings + refusals:
            _check_placeholders(template, entry.on, allowed, error,
                                entry.line)
        for guard in entry.guards:
            if guard.attr not in kind_fields:
                error(f"guard attribute {guard.attr!r} is not a field "
                      f"of {entry.on}", entry.line)
            if catalog.domain is not None:
                _check_domain(catalog.domain, entry.on, guard, error,
                              entry.line)

    for template in catalog.templates:
        if template.model not in TEMPLATE_MODELS:
            error(f"unknown template model {template.model!r}",
                  template.line)
        if template.model == "network" \
                and template.name not in NETWORK_TEMPLATES:
            error(f"unknown network template {template.name!r}",
                  template.line)

    for entry in catalog.algebra:
        if entry.on not in CHANGE_KINDS:
            error(f"unknown change kind {entry.on!r}", entry.line)
        bound = ALGEBRA_REWRITES.get(entry.rewrite)
        if bound is None:
            error(f"unknown algebra rewrite {entry.rewrite!r}",
                  entry.line)
        if bound[0] != entry.on:
            error(f"algebra rewrite {entry.rewrite!r} applies to "
                  f"{bound[0]}, not {entry.on}", entry.line)

    if catalog.passes is not None:
        for name in catalog.passes:
            if name not in DEFAULT_OPTIMIZER_PASSES:
                error(f"unknown optimizer pass {name!r}", 0)


def _check_placeholders(template: str, kind: str,
                        allowed: frozenset[str] | set[str],
                        error, line: int) -> None:
    try:
        parsed = list(string.Formatter().parse(template))
    except ValueError as exc:
        error(f"malformed message template: {exc}", line)
    for _literal, field_name, _spec, _conversion in parsed:
        if field_name is None:
            continue
        root = field_name.split(".")[0].split("[")[0]
        if root not in allowed:
            error(f"placeholder {{{root}}} does not name a field of "
                  f"{kind}", line)


def _check_domain(domain: DomainDecl, kind: str, guard: Guard, error,
                  line: int) -> None:
    attr = guard.attr
    if attr in _RECORD_ATTRS:
        category = "record"
    elif attr in _SET_ATTRS:
        category = "set"
    elif attr in _FIELD_ATTRS:
        category = "field"
    elif attr in ("old_name", "new_name"):
        category = _RENAME_CATEGORY.get(kind)
    else:
        category = None
    if category is None:
        return
    names = {
        "record": domain.record_names(),
        "set": frozenset(domain.sets),
        "field": domain.field_names(),
    }[category]
    if guard.value not in names:
        error(f"guard value {guard.value!r} is not a declared "
              f"{category} (DOMAIN)", line)


__all__ = [
    "load_catalog_file",
    "load_catalog_text",
    "validate_catalog",
]
