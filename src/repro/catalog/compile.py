"""Compile a validated catalog into the conversion machinery.

:func:`compile_catalog` instantiates each catalog entry through its
primitive's factory, yielding a :class:`CompiledRules`: the object the
Program Converter dispatches through (:meth:`CompiledRules.rule_for`),
the Optimizer gates passes against, the Program Generator gates
language templates against, and the Michigan template converter takes
its algebra bindings from.

:func:`default_catalog` / :func:`default_rules` load the shipped
``data/builtin.rules`` -- the declarative re-expression of every rule
that used to be hardcoded in :mod:`repro.core.rules` -- once per
process.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path

from repro.catalog.loader import load_catalog_file, validate_catalog
from repro.catalog.model import (
    CHANGE_KINDS,
    NETWORK_TEMPLATES,
    RuleCatalog,
    RuleEntry,
)
from repro.catalog.primitives import PRIMITIVES
from repro.core.code_templates import DEFAULT_ALGEBRA_MAP
from repro.core.rules import TransformationRule
from repro.errors import UnconvertiblePattern
from repro.schema.diff import SchemaChange


@dataclass(frozen=True)
class CompiledRules:
    """A catalog instantiated into :class:`TransformationRule` objects.

    ``entries[i]`` describes ``rules[i]``; dispatch walks them in
    catalog order, so a guarded entry listed before a general one acts
    as a kind-specific override.  The whole object pickles with the
    cascade to parallel workers.
    """

    catalog: RuleCatalog
    rules: tuple[TransformationRule, ...]
    entries: tuple[RuleEntry, ...]
    #: Network language templates the generator may emit.
    templates: frozenset[str]
    #: (change kind, rewrite name) bindings for the Michigan algebra.
    algebra: tuple[tuple[str, str], ...]
    #: Optimizer passes the catalog permits (None: no gating).
    passes: tuple[str, ...] | None
    #: The catalog's content hash (:meth:`RuleCatalog.identity`).
    identity: str

    def rule_for(self, change: SchemaChange) -> TransformationRule:
        """The first entry whose kind and guards match ``change``."""
        kind = change.kind
        for entry, rule in zip(self.entries, self.rules):
            if entry.on != kind:
                continue
            if all(guard.matches(change) for guard in entry.guards):
                return rule
        raise UnconvertiblePattern(
            f"no transformation rule for change kind {kind}"
        )

    def gate_passes(self, passes: tuple[str, ...]) -> tuple[str, ...]:
        """Intersect the caller's pass list with the catalog's PASSES
        grant, preserving the caller's order."""
        if self.passes is None:
            return tuple(passes)
        allowed = set(self.passes)
        return tuple(name for name in passes if name in allowed)

    def algebra_map(self) -> dict[str, str]:
        """Change kind -> rewrite name, for ``convert_algebra``."""
        return dict(self.algebra)

    def cost_hints(self) -> dict[str, int]:
        """Rule name -> declared COST hint, for bench metadata."""
        return {entry.name: entry.cost for entry in self.entries
                if entry.cost is not None}


def compile_catalog(catalog: RuleCatalog) -> CompiledRules:
    """Validate and instantiate ``catalog``."""
    validate_catalog(catalog)
    rules = tuple(
        PRIMITIVES[entry.using].factory(entry, CHANGE_KINDS[entry.on])
        for entry in catalog.rules
    )
    if catalog.templates:
        templates = frozenset(
            entry.name for entry in catalog.templates
            if entry.model == "network"
        )
    else:
        templates = frozenset(NETWORK_TEMPLATES)
    if catalog.algebra:
        algebra = tuple(
            (entry.on, entry.rewrite) for entry in catalog.algebra)
    else:
        algebra = tuple(DEFAULT_ALGEBRA_MAP.items())
    return CompiledRules(catalog, rules, catalog.rules, templates,
                         algebra, catalog.passes, catalog.identity())


@functools.cache
def default_catalog() -> RuleCatalog:
    """The shipped builtin catalog, loaded once per process."""
    return load_catalog_file(Path(__file__).with_name("data")
                             / "builtin.rules")


@functools.cache
def default_rules() -> CompiledRules:
    """The builtin catalog, compiled once per process."""
    return compile_catalog(default_catalog())


__all__ = [
    "CompiledRules",
    "compile_catalog",
    "default_catalog",
    "default_rules",
]
