"""The Section 4.1 Florida database and worked query.

Entity types::

    EMP(E#, ENAME, AGE)
    DEPT(D#, DNAME, MGR)

and their association::

    EMP-DEPT(E#, D#, YEAR-OF-SERVICE)

The worked query -- "Find the names of employees who work for Manager
Smith for more than ten years" -- is provided as an abstract program
whose access-pattern sequence must come out exactly as the paper
prints it (E4), and whose generated SEQUEL/CODASYL forms follow the
paper's templates (A) and (B).
"""

from __future__ import annotations

from repro.core.abstract import (
    ACond,
    ALocate,
    AScan,
    AToOwner,
    AbstractProgram,
)
from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.programs import builder as b
from repro.programs.ast import Const
from repro.relational.database import RelationalDatabase
from repro.restructure.translator import extract_snapshot, load_relational
from repro.schema.model import Field, Insertion, Retention, Schema
from repro.schema.types import parse_pic
from repro.workloads.datagen import DataGen

#: Set names realizing the EMP-DEPT association in the network model.
EMP_ED = "E-ED"    # EMP owns its association records
DEPT_ED = "D-ED"   # DEPT owns its association records


def florida_schema() -> Schema:
    """EMP, DEPT, and the EMP-DEPT association record type."""
    schema = Schema("FLORIDA")
    schema.define_record("EMP", {
        "E#": "X(6)", "ENAME": "X(25)", "AGE": "9(2)",
    }, calc_keys=["E#"])
    schema.define_record("DEPT", {
        "D#": "X(6)", "DNAME": "X(20)", "MGR": "X(25)",
    }, calc_keys=["D#"])
    schema.define_record("EMP-DEPT", {
        "YEAR-OF-SERVICE": "9(2)",
    })
    schema.define_set("ALL-EMP", "SYSTEM", "EMP", order_keys=["E#"],
                      allow_duplicates=False)
    schema.define_set("ALL-DEPT", "SYSTEM", "DEPT", order_keys=["D#"],
                      allow_duplicates=False)
    schema.define_set(EMP_ED, "EMP", "EMP-DEPT",
                      insertion=Insertion.AUTOMATIC,
                      retention=Retention.MANDATORY)
    schema.define_set(DEPT_ED, "DEPT", "EMP-DEPT",
                      insertion=Insertion.AUTOMATIC,
                      retention=Retention.MANDATORY)
    association = schema.records["EMP-DEPT"]
    schema.records["EMP-DEPT"] = association.with_fields(
        association.fields + (
            Field("E#", parse_pic("X(6)"),
                  virtual_via=EMP_ED, virtual_using="E#"),
            Field("D#", parse_pic("X(6)"),
                  virtual_via=DEPT_ED, virtual_using="D#"),
        )
    )
    schema.validate()
    return schema


def populate(db: NetworkDatabase, seed: int = 1979, employees: int = 30,
             departments: int = 4) -> NetworkDatabase:
    """Load a Florida instance; D2 is always managed by SMITH and has
    long-serving employees, so the paper's query has answers."""
    gen = DataGen(seed)
    session = DMLSession(db)
    for d_index in range(departments):
        number = f"D{d_index + 1}"
        session.store("DEPT", {
            "D#": number,
            "DNAME": gen.dept_name(),
            "MGR": "SMITH" if number == "D2" else gen.surname(d_index),
        })
    for e_index in range(employees):
        number = f"E{e_index + 1:03d}"
        session.store("EMP", {
            "E#": number,
            "ENAME": gen.surname(100 + e_index),
            "AGE": gen.age(),
        })
        dept = f"D{(e_index % departments) + 1}"
        years = gen.years()
        if dept == "D2" and (e_index // departments) % 2 == 0:
            # Guarantee long-serving employees under manager SMITH so
            # the paper's query is non-empty.
            years = 11 + (e_index % 15)
        elif dept == "D2" and (e_index // departments) == 1:
            # ... and one with exactly three years for the SEQUEL
            # template (A) example.
            years = 3
        session.store("EMP-DEPT", {
            "YEAR-OF-SERVICE": years,
            "E#": number,
            "D#": dept,
        })
    db.verify_consistent()
    return db


def florida_network_db(seed: int = 1979, **kwargs) -> NetworkDatabase:
    """A populated Florida database in CODASYL form."""
    return populate(NetworkDatabase(florida_schema()), seed, **kwargs)


def florida_relational_db(seed: int = 1979, **kwargs) -> RelationalDatabase:
    """The same instance in relational form."""
    network = florida_network_db(seed, **kwargs)
    return load_relational(network.schema, extract_snapshot(network))


def smith_query_abstract() -> AbstractProgram:
    """The worked query as an abstract program.

    "Find the names of employees who work for Manager Smith for more
    than ten years" -- the paper's expected pattern sequence is::

        ACCESS DEPT via DEPT
        ACCESS EMP-DEPT via DEPT
        ACCESS EMP via EMP-DEPT
        RETRIEVE
    """
    return AbstractProgram(
        "SMITH-QUERY", "network", "FLORIDA",
        (
            ALocate("DEPT", (ACond("MGR", "=", Const("SMITH")),),
                    bind=False),
            AScan("EMP-DEPT", DEPT_ED,
                  (ACond("YEAR-OF-SERVICE", ">", Const(10)),),
                  (
                      # upward to the employee, then retrieve the name
                      AToOwner("EMP", EMP_ED, bind=True),
                      b.display(b.field("EMP", "ENAME")),
                  ),
                  bind=True),
        ),
    )


def smith_query_network_program():
    """The query as a concrete CODASYL program (what the paper's
    template (B) machinery produces)."""
    return b.program("SMITH-QUERY", "network", "FLORIDA", [
        b.find_any("DEPT", **{"MGR": "SMITH"}),
        *b.scan_set("EMP-DEPT", DEPT_ED, [
            b.if_(b.gt(b.field("EMP-DEPT", "YEAR-OF-SERVICE"), 10), [
                b.find_owner(EMP_ED),
                b.get("EMP"),
                b.display(b.field("EMP", "ENAME")),
            ]),
        ]),
    ])


def d2_three_years_sequel() -> str:
    """The paper's SEQUEL example (A): employees of department D2 with
    exactly three years of service."""
    return ("SELECT ENAME FROM EMP WHERE E# IN "
            "SELECT E# FROM EMP-DEPT "
            "WHERE D# = 'D2' AND YEAR-OF-SERVICE = 3")
