"""Large-inventory synthetic workload: the paper's conversion problem
at its real size.

The paper frames program conversion as an *inventory* problem -- a
site holds hundreds to thousands of application programs, all of which
must move through the restructure/translate pipeline (Section 1.1).
The Figure 4.2 corpus is faithful but tiny; this module generates a
seeded, deterministic workload at that inventory scale:

* a **generated schema** that embeds the Figure 4.3 DIV/EMP core
  (so the Figure 4.4 DEPT interposition applies verbatim) and widens
  it with ``satellite_records`` ASSET record types, each CALC-keyed
  and owned by DIV through its own set -- the schema breadth real
  sites have, where most record types are untouched by any one
  restructuring;
* a **populated database** over that schema, sized by
  ``divisions`` x ``employees_per_division`` (+ satellite rows);
* a **program corpus** of 1k-100k+ programs with a controllable
  strategy mix: most shapes land in the rewrite stage, ``store_rate``
  steers programs into the store/emulation-sensitive shapes, and
  ``pathology_rate`` injects the Section 3.2 pathologies (reusing the
  corpus generator's pathological shapes, so ground-truth labels and
  terminal-input needs carry over).

Everything is a pure function of :class:`InventorySpec`: the same spec
yields a byte-identical DDL text, database content, and rendered
corpus on every run and in every process -- the determinism the
parallel byte-identity tests lean on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.programs import ast
from repro.programs import builder as b
from repro.schema.ddl import parse_ddl
from repro.schema.model import Schema
from repro.workloads.company import figure_44_operator
from repro.workloads.corpus import (
    PATHOLOGY_KINDS,
    CorpusProgram,
    pathological_program,
)
from repro.workloads.datagen import DataGen

#: Clean inventory shapes and their weights in the non-store draw.
CLEAN_KINDS = ("report", "lookup", "raise", "fire", "audit", "satellite")

#: Store-heavy shapes drawn at ``store_rate``.
STORE_KINDS = ("hire", "guarded-store")

#: Pathological shapes drawn at ``pathology_rate``: the four Section
#: 3.2 corpus pathologies plus the inventory-only ``bulk-sweep`` --
#: a verb-variability program dragging a large dead maintenance block,
#: the shape whose access profile predicts emulation-cheaper (the
#: rewrite attempt pays the full AST walk only to refuse).
INVENTORY_PATHOLOGY_KINDS = PATHOLOGY_KINDS + ("bulk-sweep",)


@dataclass(frozen=True)
class InventorySpec:
    """Knobs for one inventory-scale workload.

    The defaults keep the *database* small (conversion probes replay
    against it once per program, so instance size multiplies into
    every per-program cost) while the *corpus* scales through
    ``programs`` alone.
    """

    seed: int = 1979
    #: Corpus size; 1k-100k is the intended range.
    programs: int = 1_000
    divisions: int = 6
    employees_per_division: int = 12
    departments_per_division: int = 4
    #: Satellite ASSET record types widening the schema.
    satellite_records: int = 4
    #: Rows per satellite record type per division.
    satellite_rows: int = 3
    #: Fraction of clean programs drawn from the store-heavy shapes.
    store_rate: float = 0.2
    #: Fraction of programs carrying a Section 3.2 pathology.
    pathology_rate: float = 0.25
    #: Statements in the bulk-sweep shape's dead maintenance block
    #: (the AST bulk the rewrite attempt would walk before refusing).
    sweep_statements: int = 4_000


def division_name(index: int) -> str:
    """The ``index``-th division's deterministic name."""
    return f"DIV-{index:03d}"


def employee_name(division: int, employee: int) -> str:
    """The deterministic name of one employee of one division."""
    return f"EMP-{division:03d}-{employee:05d}"


def department_name(index: int) -> str:
    """The ``index``-th department's deterministic name."""
    return f"DEPT-{index:02d}"


def asset_record(index: int) -> str:
    """The ``index``-th satellite record type's name."""
    return f"ASSET-{index:02d}"


def asset_set(index: int) -> str:
    """The set linking DIV to the ``index``-th satellite record."""
    return f"DIV-ASSET-{index:02d}"


def asset_tag(record: int, division: int, row: int) -> str:
    """The deterministic CALC key of one satellite row."""
    return f"AST-{record:02d}-{division:03d}-{row:03d}"


def inventory_ddl(spec: InventorySpec | None = None) -> str:
    """The generated schema DDL: Figure 4.3 core + ASSET satellites."""
    spec = spec or InventorySpec()
    records = [
        """\
  RECORD NAME IS DIV.
    LOCATION MODE IS CALC USING (DIV-NAME).
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.""",
        """\
  RECORD NAME IS EMP.
    LOCATION MODE IS CALC USING (EMP-NAME).
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME PIC X(10).
      AGE PIC 9(2).
      DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.""",
    ]
    sets = [
        """\
  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.""",
        """\
  SET NAME IS DIV-EMP.
    OWNER IS DIV.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
  END SET.""",
    ]
    for index in range(spec.satellite_records):
        record = asset_record(index)
        records.append(f"""\
  RECORD NAME IS {record}.
    LOCATION MODE IS CALC USING ({record}-TAG).
    FIELDS ARE.
      {record}-TAG PIC X(16).
      {record}-COST PIC 9(6).
      DIV-NAME VIRTUAL VIA {asset_set(index)} USING DIV-NAME.
  END RECORD.""")
        sets.append(f"""\
  SET NAME IS {asset_set(index)}.
    OWNER IS DIV.
    MEMBER IS {record}.
    SET KEYS ARE ({record}-TAG).
  END SET.""")
    return (
        "SCHEMA NAME IS INVENTORY.\n"
        "RECORD SECTION.\n" + "\n".join(records) + "\n"
        "END RECORD SECTION.\n"
        "SET SECTION.\n" + "\n".join(sets) + "\n"
        "END SET SECTION.\n"
        "END SCHEMA.\n"
    )


def inventory_schema(spec: InventorySpec | None = None) -> Schema:
    """The generated inventory schema, parsed."""
    return parse_ddl(inventory_ddl(spec))


def inventory_database(spec: InventorySpec | None = None
                       ) -> NetworkDatabase:
    """A populated inventory database (pure function of the spec)."""
    spec = spec or InventorySpec()
    gen = DataGen(spec.seed)
    db = NetworkDatabase(inventory_schema(spec))
    session = DMLSession(db)
    for d_index in range(spec.divisions):
        division = division_name(d_index)
        session.store("DIV", {"DIV-NAME": division,
                              "DIV-LOC": gen.city()})
        for e_index in range(spec.employees_per_division):
            dept = department_name(
                e_index % spec.departments_per_division)
            session.store("EMP", {
                "EMP-NAME": employee_name(d_index, e_index),
                "DEPT-NAME": dept,
                "AGE": gen.age(),
                "DIV-NAME": division,
            })
        for r_index in range(spec.satellite_records):
            record = asset_record(r_index)
            for row in range(spec.satellite_rows):
                session.store(record, {
                    f"{record}-TAG": asset_tag(r_index, d_index, row),
                    f"{record}-COST": gen.int_between(100, 999_999),
                    "DIV-NAME": division,
                })
    db.verify_consistent()
    return db


def generate_inventory(spec: InventorySpec | None = None
                       ) -> list[CorpusProgram]:
    """Deterministically generate the labelled inventory corpus."""
    spec = spec or InventorySpec()
    gen = DataGen(spec.seed)
    divisions = tuple(division_name(i) for i in range(spec.divisions))
    # One dead block, shared by every bulk-sweep program: at the 10k
    # tier thousands of programs embed it, so sharing the tuple keeps
    # the corpus memory-bound by one block, not one per program.
    sweep_block = _sweep_block(spec.sweep_statements)
    out: list[CorpusProgram] = []
    for index in range(spec.programs):
        if gen.chance(spec.pathology_rate):
            kind = gen.choice(INVENTORY_PATHOLOGY_KINDS)
            if kind == "bulk-sweep":
                out.append(_bulk_sweep_shape(index, gen, divisions,
                                             sweep_block))
                continue
            out.append(pathological_program(kind, index, gen, divisions))
        elif gen.chance(spec.store_rate):
            out.append(_store_shape(gen.choice(STORE_KINDS), index, gen,
                                    spec))
        else:
            out.append(_clean_shape(gen.choice(CLEAN_KINDS), index, gen,
                                    spec))
    return out


def _pick_division(gen: DataGen, spec: InventorySpec) -> tuple[int, str]:
    d_index = gen.int_between(0, spec.divisions - 1)
    return d_index, division_name(d_index)


def _clean_shape(kind: str, index: int, gen: DataGen,
                 spec: InventorySpec) -> CorpusProgram:
    name = f"INV-{kind.upper()}-{index:05d}"
    d_index, division = _pick_division(gen, spec)
    if kind == "report":
        threshold = gen.int_between(25, 55)
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.gt(b.field("EMP", "AGE"), threshold), [
                    b.display(b.field("EMP", "EMP-NAME"),
                              b.field("EMP", "AGE")),
                ]),
            ]),
            b.display("END-REPORT"),
        ])
        return CorpusProgram(program, kind,
                             frozenset({"order-dependence"}))
    if kind == "lookup":
        employee = employee_name(
            d_index, gen.int_between(0, spec.employees_per_division - 1))
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("EMP", **{"EMP-NAME": employee}),
            b.if_(ast.status_ok(), [
                b.get("EMP"),
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "AGE")),
            ], [
                b.display("NOT FOUND"),
            ]),
        ])
        return CorpusProgram(program, kind)
    if kind == "raise":
        dept = department_name(gen.int_between(
            0, spec.departments_per_division - 1))
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.eq(b.field("EMP", "DEPT-NAME"), dept), [
                    b.modify("EMP", **{
                        "AGE": b.add(b.field("EMP", "AGE"), 0),
                    }),
                ]),
            ]),
            b.display("RAISED"),
        ])
        return CorpusProgram(program, kind)
    if kind == "fire":
        employee = employee_name(
            d_index, gen.int_between(0, spec.employees_per_division - 1))
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("EMP", **{"EMP-NAME": employee}),
            b.if_(ast.status_ok(), [
                b.erase("EMP"),
                b.display("FIRED", employee),
            ], [
                b.display("NO SUCH EMPLOYEE"),
            ]),
        ])
        return CorpusProgram(program, kind)
    if kind == "audit":
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.write_file("AUDIT", b.field("EMP", "EMP-NAME"),
                             b.field("EMP", "DEPT-NAME")),
            ]),
            b.display("AUDITED"),
        ])
        return CorpusProgram(program, kind,
                             frozenset({"order-dependence"}))
    if kind == "satellite":
        # A satellite scan never touches DIV-EMP: the restructuring
        # leaves it alone, like most of a real site's inventory.
        r_index = gen.int_between(0, max(0, spec.satellite_records - 1))
        record = asset_record(r_index)
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set(record, asset_set(r_index), [
                b.display(b.field(record, f"{record}-TAG"),
                          b.field(record, f"{record}-COST")),
            ]),
            b.display("END-ASSETS"),
        ])
        return CorpusProgram(program, kind,
                             frozenset({"order-dependence"}))
    raise ValueError(f"unknown clean inventory kind {kind!r}")


def _sweep_block(statements: int) -> tuple[ast.Stmt, ...]:
    """The bulk-sweep shape's dead maintenance block: ``statements``
    working-storage assignments guarded by a flag that is never set."""
    return tuple(b.assign(f"W{j:03d}", j) for j in range(statements))


def _bulk_sweep_shape(index: int, gen: DataGen,
                      divisions: tuple[str, ...],
                      sweep_block: tuple[ast.Stmt, ...]) -> CorpusProgram:
    """A verb-variability program dragging a large dead block.

    The generic call makes static analysis refuse it (Section 3.2), so
    the rewrite attempt would walk the whole block only to fail; its
    access profile predicts that refusal up front, which is exactly the
    cost-separable shape the cost-ordered cascade wins on.
    """
    name = f"INV-BULK-SWEEP-{index:05d}"
    division = gen.choice(divisions)
    program = b.program(name, "network", "INVENTORY", [
        b.accept("REQUEST", prompt="VERB?"),
        b.assign("SWEEP-FLAG", 0),
        b.find_any("DIV", **{"DIV-NAME": division}),
        b.generic_call(b.v("REQUEST"), "EMP", **{
            "EMP-NAME": f"SWP-{index:05d}",
            "DEPT-NAME": "SALES",
            "AGE": 30,
            "DIV-NAME": division,
        }),
        b.if_(b.eq(b.v("SWEEP-FLAG"), 1), sweep_block),
        b.display("DONE"),
    ])
    return CorpusProgram(program, "bulk-sweep",
                         frozenset({"verb-variability"}),
                         terminal_inputs=("STORE",))


def _store_shape(kind: str, index: int, gen: DataGen,
                 spec: InventorySpec) -> CorpusProgram:
    name = f"INV-{kind.upper()}-{index:05d}"
    _d_index, division = _pick_division(gen, spec)
    dept = department_name(gen.int_between(
        0, spec.departments_per_division - 1))
    if kind == "hire":
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.store("EMP", **{
                "EMP-NAME": f"NEW-{index:05d}",
                "DEPT-NAME": dept,
                "AGE": gen.age(),
                "DIV-NAME": division,
            }),
            b.display("HIRED", f"NEW-{index:05d}"),
        ])
        return CorpusProgram(program, kind)
    if kind == "guarded-store":
        program = b.program(name, "network", "INVENTORY", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.if_(ast.status_ok(), [
                b.store("EMP", **{
                    "EMP-NAME": f"GRD-{index:05d}",
                    "DEPT-NAME": dept,
                    "AGE": gen.age(),
                    "DIV-NAME": division,
                }),
                b.display("STORED"),
            ], [
                b.display("NO SUCH DIVISION"),
            ]),
        ])
        return CorpusProgram(program, kind)
    raise ValueError(f"unknown store inventory kind {kind!r}")


def inventory_cascade(spec: InventorySpec | None = None,
                      **cascade_kwargs):
    """A ready-to-run cascade: inventory database through the Figure
    4.4 DEPT interposition (imports deferred to stay cycle-free).
    Extra keyword arguments (``strategy_order=``, ``cost_model=``)
    forward to the :class:`FallbackCascade` constructor."""
    from repro.restructure import restructure_database
    from repro.strategies.cascade import FallbackCascade

    spec = spec or InventorySpec()
    operator = figure_44_operator()
    source_db = inventory_database(spec)
    _schema, target_db = restructure_database(source_db, operator)
    return FallbackCascade(source_db, target_db, operator,
                           **cascade_kwargs)


def render_corpus(corpus: list[CorpusProgram]) -> str:
    """One canonical text for a whole corpus (byte-identity checks)."""
    return "\n".join(ast.render_program(item.program) for item in corpus)


__all__ = [
    "CLEAN_KINDS",
    "INVENTORY_PATHOLOGY_KINDS",
    "STORE_KINDS",
    "InventorySpec",
    "asset_record",
    "asset_set",
    "asset_tag",
    "department_name",
    "division_name",
    "employee_name",
    "generate_inventory",
    "inventory_cascade",
    "inventory_database",
    "inventory_ddl",
    "inventory_schema",
    "render_corpus",
]
