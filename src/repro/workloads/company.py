"""The Figures 4.2-4.4 company database.

``FIGURE_4_3_DDL`` is the paper's schema declaration, verbatim in our
DDL syntax; :func:`figure_44_operator` is the restructuring the paper
performs on it (a DEPT record type interposed on DIV-EMP); the paper's
two FIND statements are exported as constants for the E3 experiment.
"""

from __future__ import annotations

from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.restructure.operators import InterposeRecord
from repro.schema.ddl import parse_ddl
from repro.schema.model import Schema
from repro.workloads.datagen import DataGen

#: Figure 4.3, in this library's DDL (the figure's syntax plus the
#: CALC clauses the examples rely on).
FIGURE_4_3_DDL = """
SCHEMA NAME IS COMPANY-NAME.
RECORD SECTION.
  RECORD NAME IS DIV.
    LOCATION MODE IS CALC USING (DIV-NAME).
    FIELDS ARE.
      DIV-NAME PIC X(20).
      DIV-LOC PIC X(10).
  END RECORD.
  RECORD NAME IS EMP.
    LOCATION MODE IS CALC USING (EMP-NAME).
    FIELDS ARE.
      EMP-NAME PIC X(25).
      DEPT-NAME PIC X(10).
      AGE PIC 9(2).
      DIV-NAME VIRTUAL VIA DIV-EMP USING DIV-NAME.
  END RECORD.
END RECORD SECTION.
SET SECTION.
  SET NAME IS ALL-DIV.
    OWNER IS SYSTEM.
    MEMBER IS DIV.
    SET KEYS ARE (DIV-NAME).
  END SET.
  SET NAME IS DIV-EMP.
    OWNER IS DIV.
    MEMBER IS EMP.
    SET KEYS ARE (EMP-NAME).
  END SET.
END SET SECTION.
END SCHEMA.
"""

#: The paper's example FIND statements (Section 4.2).
FIND_OVER_30 = "FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))"
FIND_MACHINERY_SALES = (
    "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), "
    "DIV-EMP, EMP(DEPT-NAME = 'SALES'))"
)

#: The paper's converted forms (Figure 4.4 text).
CONVERTED_OVER_30 = (
    "SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-DEPT, DEPT, DEPT-EMP, "
    "EMP(AGE > 30))) ON (EMP-NAME)"
)
CONVERTED_MACHINERY_SALES = (
    "FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'), DIV-DEPT, "
    "DEPT(DEPT-NAME = 'SALES'), DEPT-EMP, EMP)"
)


def figure_42_schema() -> Schema:
    """The Figure 4.2/4.3 schema, parsed from the DDL text."""
    return parse_ddl(FIGURE_4_3_DDL)


def figure_44_operator() -> InterposeRecord:
    """The Figure 4.2 -> Figure 4.4 restructuring."""
    return InterposeRecord("DIV-EMP", "DEPT", ("DEPT-NAME",),
                           "DIV-DEPT", "DEPT-EMP")


def populate(db: NetworkDatabase, seed: int = 1979, divisions: int = 2,
             employees_per_division: int = 20,
             departments_per_division: int = 4) -> NetworkDatabase:
    """Load a company instance (always includes the MACHINERY division
    and a SALES department so the paper's queries return rows)."""
    gen = DataGen(seed)
    session = DMLSession(db)
    division_names = ["MACHINERY", "CHEMICAL", "TEXTILE", "MINING",
                      "SHIPPING", "FOUNDRY"]
    departments = ["SALES", "ENG", "ADMIN", "PLANT", "AUDIT", "STAFF"]
    for d_index in range(divisions):
        division = division_names[d_index % len(division_names)]
        session.store("DIV", {"DIV-NAME": division, "DIV-LOC": gen.city()})
        for e_index in range(employees_per_division):
            dept = departments[e_index % departments_per_division]
            session.store("EMP", {
                "EMP-NAME": gen.surname(d_index * 1000 + e_index),
                "DEPT-NAME": dept,
                "AGE": gen.age(),
                "DIV-NAME": division,
            })
    db.verify_consistent()
    return db


def company_db(seed: int = 1979, **kwargs) -> NetworkDatabase:
    """A populated Figure 4.2 database."""
    return populate(NetworkDatabase(figure_42_schema()), seed, **kwargs)
