"""Deterministic seeded data generation.

Every workload takes a seed and produces identical data for identical
seeds, so experiments are reproducible and equivalence checks compare
like with like.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

_SURNAMES = (
    "SMITH", "JONES", "TAYLOR", "BROWN", "WILSON", "EVANS", "WALKER",
    "WRIGHT", "ROBERTS", "GREEN", "HALL", "WOOD", "HARRIS", "MARTIN",
    "COOPER", "KING", "CLARK", "BAKER", "TURNER", "HILL", "MOORE",
    "PARKER", "COOK", "BELL", "KELLY", "WARD", "FOSTER", "BROOKS",
)

_DEPT_NAMES = ("SALES", "ENG", "ADMIN", "PLANT", "STAFF", "AUDIT",
               "STORE", "MAINT")

_CITIES = ("DETROIT", "HOUSTON", "CHICAGO", "ATLANTA", "BOSTON",
           "DENVER", "DALLAS", "MIAMI")


class DataGen:
    """A seeded generator with 1979-flavoured vocabularies."""

    def __init__(self, seed: int = 1979):
        self._random = random.Random(seed)

    def surname(self, index: int | None = None) -> str:
        """A surname, made unique with a numeric suffix when indexed."""
        name = self._random.choice(_SURNAMES)
        if index is None:
            return name
        return f"{name}-{index:04d}"

    def dept_name(self) -> str:
        return self._random.choice(_DEPT_NAMES)

    def city(self) -> str:
        return self._random.choice(_CITIES)

    def age(self, low: int = 18, high: int = 65) -> int:
        return self._random.randint(low, high)

    def years(self, high: int = 30) -> int:
        return self._random.randint(0, high)

    def choice(self, options: Sequence[Any]) -> Any:
        return self._random.choice(options)

    def int_between(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def chance(self, probability: float) -> bool:
        return self._random.random() < probability

    def sample(self, options: Sequence[Any], count: int) -> list[Any]:
        return self._random.sample(list(options), count)

    def shuffle(self, items: list[Any]) -> list[Any]:
        out = list(items)
        self._random.shuffle(out)
        return out
