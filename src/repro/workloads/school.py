"""The Figure 3.1 school database.

Figure 3.1a (relational)::

    COURSE-OFFERING(CNO, S, ...)
    COURSE(CNO, CNAME, ...)
    SEMESTER(S, YEAR, ...)

Figure 3.1b (CODASYL): COURSE and SEMESTER own OFFERING through the
"course's offering" and "semester's offering" sets.  We add the
INSTRUCTOR record type the Section 3.1 discussion needs ("if a course
offering may or may not have an instructor when it is inserted ...")
as an OPTIONAL/MANUAL set, plus the two constraints the paper says no
1979 model could declare:

* existence: an offering cannot exist without its course and semester
  (AUTOMATIC + MANDATORY membership, also declared explicitly);
* cardinality: "a course may not be offered more than twice in a
  school year" -- ``LIMIT COURSE-OFF TO 2 PER (YEAR)`` with YEAR
  reaching the offering VIRTUALly through the semester set.
"""

from __future__ import annotations

from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.relational.database import RelationalDatabase
from repro.restructure.translator import extract_snapshot, load_relational
from repro.schema.constraints import (
    CardinalityLimit,
    ExistenceConstraint,
    NotNull,
    UniqueKey,
)
from repro.schema.model import Insertion, Retention, Schema
from repro.workloads.datagen import DataGen

#: Set names from Figure 3.1b.
COURSE_OFF = "COURSE-OFF"        # course's offering
SEMESTER_OFF = "SEMESTER-OFF"    # semester's offering
INSTRUCTOR_OFF = "INSTRUCTOR-OFF"


def school_schema(with_constraints: bool = True) -> Schema:
    """The common schema both data models interpret."""
    schema = Schema("SCHOOL")
    schema.define_record("COURSE", {
        "CNO": "X(6)", "CNAME": "X(20)", "CREDITS": "9(1)",
    }, calc_keys=["CNO"])
    schema.define_record("SEMESTER", {
        "S": "X(4)", "YEAR": "9(4)",
    }, calc_keys=["S"])
    schema.define_record("INSTRUCTOR", {
        "INAME": "X(20)", "IDEPT": "X(10)",
    }, calc_keys=["INAME"])
    schema.define_record("OFFERING", {
        "SECTION": "9(2)", "ENROLLMENT": "9(3)",
    })
    schema.define_set("ALL-COURSE", "SYSTEM", "COURSE",
                      order_keys=["CNO"], allow_duplicates=False)
    schema.define_set("ALL-SEMESTER", "SYSTEM", "SEMESTER",
                      order_keys=["S"], allow_duplicates=False)
    schema.define_set("ALL-INSTRUCTOR", "SYSTEM", "INSTRUCTOR",
                      order_keys=["INAME"], allow_duplicates=False)
    schema.define_set(COURSE_OFF, "COURSE", "OFFERING",
                      order_keys=["SECTION"],
                      insertion=Insertion.AUTOMATIC,
                      retention=Retention.MANDATORY)
    schema.define_set(SEMESTER_OFF, "SEMESTER", "OFFERING",
                      insertion=Insertion.AUTOMATIC,
                      retention=Retention.MANDATORY)
    # "a course offering may or may not have an instructor when it is
    # inserted": MANUAL + OPTIONAL.
    schema.define_set(INSTRUCTOR_OFF, "INSTRUCTOR", "OFFERING",
                      insertion=Insertion.MANUAL,
                      retention=Retention.OPTIONAL)
    # Virtual fields: the offering can see its course/semester keys.
    from repro.schema.model import Field
    from repro.schema.types import parse_pic

    offering = schema.records["OFFERING"]
    schema.records["OFFERING"] = offering.with_fields(
        offering.fields + (
            Field("CNO", parse_pic("X(6)"),
                  virtual_via=COURSE_OFF, virtual_using="CNO"),
            Field("S", parse_pic("X(4)"),
                  virtual_via=SEMESTER_OFF, virtual_using="S"),
            Field("YEAR", parse_pic("9(4)"),
                  virtual_via=SEMESTER_OFF, virtual_using="YEAR"),
        )
    )
    if with_constraints:
        schema.add_constraint(UniqueKey("COURSE-KEY", "COURSE", ("CNO",)))
        schema.add_constraint(UniqueKey("SEMESTER-KEY", "SEMESTER", ("S",)))
        schema.add_constraint(NotNull("OFFERING-CNO", "OFFERING", "CNO"))
        schema.add_constraint(NotNull("OFFERING-S", "OFFERING", "S"))
        schema.add_constraint(
            ExistenceConstraint("OFFERING-HAS-COURSE", COURSE_OFF))
        schema.add_constraint(
            ExistenceConstraint("OFFERING-HAS-SEMESTER", SEMESTER_OFF))
        # "a course may not be offered more than twice in a school year"
        schema.add_constraint(
            CardinalityLimit("TWICE-PER-YEAR", COURSE_OFF, 2, ("YEAR",)))
    schema.validate()
    return schema


def populate(db: NetworkDatabase, seed: int = 1979, courses: int = 12,
             semesters: int = 4, offerings_per_course: int = 2,
             instructors: int = 6) -> NetworkDatabase:
    """Load a consistent school database instance."""
    gen = DataGen(seed)
    session = DMLSession(db)
    semester_keys = []
    for index in range(semesters):
        term = "FS"[index % 2]
        year = 1975 + index // 2
        key = f"{term}{str(year)[-2:]}"
        semester_keys.append(key)
        session.store("SEMESTER", {"S": key, "YEAR": year})
    for index in range(instructors):
        session.store("INSTRUCTOR", {
            "INAME": gen.surname(index), "IDEPT": gen.dept_name(),
        })
    for index in range(courses):
        cno = f"C{index:03d}"
        session.store("COURSE", {
            "CNO": cno,
            "CNAME": f"{gen.dept_name()}-{index:03d}",
            "CREDITS": gen.int_between(1, 5),
        })
        # Each course offered in distinct semesters (at most twice per
        # year is guaranteed because semester keys are distinct terms).
        chosen = gen.sample(semester_keys,
                            min(offerings_per_course, len(semester_keys)))
        for section, semester_key in enumerate(chosen, start=1):
            session.store("OFFERING", {
                "SECTION": section,
                "ENROLLMENT": gen.int_between(5, 120),
                "CNO": cno,
                "S": semester_key,
            })
    db.verify_consistent()
    return db


def school_network_db(seed: int = 1979, **kwargs) -> NetworkDatabase:
    """A populated CODASYL school database (Figure 3.1b)."""
    return populate(NetworkDatabase(school_schema()), seed, **kwargs)


def school_relational_db(seed: int = 1979, **kwargs) -> RelationalDatabase:
    """The same instance in relational form (Figure 3.1a): OFFERING
    carries CNO and S foreign-key columns."""
    network = school_network_db(seed, **kwargs)
    snapshot = extract_snapshot(network)
    return load_relational(network.schema, snapshot)
