"""Generated program corpus.

E2 and E6 need "large classes of programs" (Section 5.3) to measure
conversion automation rates and pathology-detector accuracy.  The
corpus generator produces application programs over the Figure 4.2
company schema: clean programs drawn from seven realistic shapes, plus
controlled injection of the four Section 3.2 pathologies.

Every program is labelled with ground truth
(:class:`CorpusProgram.pathologies`), so detector precision/recall is
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.programs import ast
from repro.programs import builder as b
from repro.programs.ast import Program
from repro.workloads.datagen import DataGen

#: The seven clean shapes.
CLEAN_KINDS = (
    "report",        # scan + filter + display
    "lookup",        # find one employee, display
    "hire",          # store a new employee
    "raise",         # modify ages in a department
    "fire",          # erase an employee
    "audit-file",    # scan + write to a non-database file
    "guarded-store", # existence check before store (procedural constraint)
)

#: The four Section 3.2 pathologies.
PATHOLOGY_KINDS = (
    "verb-variability",
    "order-dependence",
    "process-first",
    "status-code",
)


@dataclass(frozen=True)
class CorpusProgram:
    """A generated program plus its ground-truth labels."""

    program: Program
    kind: str
    pathologies: frozenset[str] = frozenset()
    #: Terminal inputs the program expects, if any.
    terminal_inputs: tuple[str, ...] = ()


@dataclass
class CorpusSpec:
    """Knobs for one corpus."""

    seed: int = 1979
    size: int = 50
    pathology_rate: float = 0.25
    divisions: tuple[str, ...] = ("MACHINERY", "CHEMICAL")
    departments: tuple[str, ...] = ("SALES", "ENG", "ADMIN", "PLANT")


def generate_corpus(spec: CorpusSpec | None = None) -> list[CorpusProgram]:
    """Deterministically generate a labelled corpus."""
    spec = spec or CorpusSpec()
    gen = DataGen(spec.seed)
    out: list[CorpusProgram] = []
    for index in range(spec.size):
        if gen.chance(spec.pathology_rate):
            kind = gen.choice(PATHOLOGY_KINDS)
            out.append(_pathological(kind, index, gen, spec))
        else:
            kind = gen.choice(CLEAN_KINDS)
            out.append(_clean(kind, index, gen, spec))
    return out


# ---------------------------------------------------------------------------
# Clean shapes
# ---------------------------------------------------------------------------


def _clean(kind: str, index: int, gen: DataGen,
           spec: CorpusSpec) -> CorpusProgram:
    name = f"{kind.upper()}-{index:03d}"
    division = gen.choice(spec.divisions)
    dept = gen.choice(spec.departments)
    if kind == "report":
        threshold = gen.int_between(25, 55)
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.gt(b.field("EMP", "AGE"), threshold), [
                    b.display(b.field("EMP", "EMP-NAME"),
                              b.field("EMP", "AGE")),
                ]),
            ]),
            b.display("END-REPORT"),
        ])
        # The report displays per member: order dependent by nature.
        return CorpusProgram(program, kind,
                             frozenset({"order-dependence"}))
    if kind == "lookup":
        employee = gen.surname(index)
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": employee}),
            b.if_(ast.status_ok(), [
                b.get("EMP"),
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "AGE")),
            ], [
                b.display("NOT FOUND"),
            ]),
        ])
        return CorpusProgram(program, kind)
    if kind == "hire":
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.store("EMP", **{
                "EMP-NAME": f"NEW-{index:04d}",
                "DEPT-NAME": dept,
                "AGE": gen.age(),
                "DIV-NAME": division,
            }),
            b.display("HIRED", f"NEW-{index:04d}"),
        ])
        return CorpusProgram(program, kind)
    if kind == "raise":
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.if_(b.eq(b.field("EMP", "DEPT-NAME"), dept), [
                    b.modify("EMP", **{
                        "AGE": b.add(b.field("EMP", "AGE"), 0),
                    }),
                ]),
            ]),
            b.display("RAISED"),
        ])
        return CorpusProgram(program, kind)
    if kind == "fire":
        employee = gen.surname(index)
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("EMP", **{"EMP-NAME": employee}),
            b.if_(ast.status_ok(), [
                b.erase("EMP"),
                b.display("FIRED", employee),
            ], [
                b.display("NO SUCH EMPLOYEE"),
            ]),
        ])
        return CorpusProgram(program, kind)
    if kind == "audit-file":
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.write_file("AUDIT", b.field("EMP", "EMP-NAME"),
                             b.field("EMP", "DEPT-NAME")),
            ]),
            b.display("AUDITED"),
        ])
        return CorpusProgram(program, kind,
                             frozenset({"order-dependence"}))
    if kind == "guarded-store":
        # Procedurally-enforced existence constraint (E11 target):
        # only hire into a division that exists.
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.if_(ast.status_ok(), [
                b.store("EMP", **{
                    "EMP-NAME": f"GRD-{index:04d}",
                    "DEPT-NAME": dept,
                    "AGE": gen.age(),
                    "DIV-NAME": division,
                }),
                b.display("STORED"),
            ], [
                b.display("NO SUCH DIVISION"),
            ]),
        ])
        return CorpusProgram(program, kind)
    raise ValueError(f"unknown clean kind {kind!r}")


# ---------------------------------------------------------------------------
# Pathological shapes (Section 3.2)
# ---------------------------------------------------------------------------


def _pathological(kind: str, index: int, gen: DataGen,
                  spec: CorpusSpec) -> CorpusProgram:
    name = f"PATH-{kind.upper()}-{index:03d}"
    division = gen.choice(spec.divisions)
    if kind == "verb-variability":
        # The DML verb arrives from the terminal: "what appeared to be
        # a read at compile time might become an update".
        program = b.program(name, "network", "COMPANY-NAME", [
            b.accept("REQUEST", prompt="VERB?"),
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.generic_call(b.v("REQUEST"), "EMP", **{
                "EMP-NAME": f"VAR-{index:04d}",
                "AGE": 30,
                "DEPT-NAME": "SALES",
                "DIV-NAME": division,
            }),
            b.display("DONE"),
        ])
        return CorpusProgram(program, kind, frozenset({kind}),
                             terminal_inputs=("STORE",))
    if kind == "order-dependence":
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.scan_set("EMP", "DIV-EMP", [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ])
        return CorpusProgram(program, kind, frozenset({kind}))
    if kind == "process-first":
        # "may have intended to 'process all' ... but may have written
        # a program which will 'process the first'".
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            *b.process_first("EMP", "DIV-EMP", [
                b.display("SENIOR:", b.field("EMP", "EMP-NAME")),
            ]),
        ])
        return CorpusProgram(program, kind, frozenset({kind}))
    if kind == "status-code":
        # Branches on the specific end-of-set code.
        program = b.program(name, "network", "COMPANY-NAME", [
            b.find_any("DIV", **{"DIV-NAME": division}),
            b.find_first("EMP", "DIV-EMP"),
            b.while_(ast.status_ok(), [
                b.get("EMP"),
                b.find_next("EMP", "DIV-EMP"),
            ]),
            b.if_(ast.status_is("0307"), [
                b.display("END OF SET REACHED"),
            ], [
                b.display("UNEXPECTED STATUS"),
            ]),
        ])
        return CorpusProgram(program, kind, frozenset({kind}))
    raise ValueError(f"unknown pathology kind {kind!r}")


def pathological_program(kind: str, index: int, gen: DataGen,
                         divisions: tuple[str, ...]) -> CorpusProgram:
    """One Section 3.2 pathological program over any DIV/EMP schema.

    Public entry point for other corpus generators (the inventory
    workload injects pathologies through it): the shapes only touch
    the Figure 4.3 DIV/EMP core, so any schema embedding that core --
    and any division vocabulary -- works.
    """
    return _pathological(kind, index, gen,
                         CorpusSpec(divisions=tuple(divisions)))


def corpus_counts(corpus: list[CorpusProgram]) -> dict[str, int]:
    """Programs per kind, for reporting."""
    counts: dict[str, int] = {}
    for item in corpus:
        counts[item.kind] = counts.get(item.kind, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Relational corpus
# ---------------------------------------------------------------------------

#: Relational program shapes over the same application.
RELATIONAL_KINDS = ("rel-report", "rel-lookup", "rel-hire", "rel-raise")


def generate_relational_corpus(spec: CorpusSpec | None = None
                               ) -> list[CorpusProgram]:
    """The same application system written set-at-a-time.

    Used by the E2 comparison of conversion sensitivity: under the
    Figure 4.4 restructuring the relational EMP relation keeps its
    DEPT-NAME column (as a foreign key), so these programs are far less
    sensitive to the change than their navigational twins -- the data
    independence contrast Section 1.2 gestures at.
    """
    spec = spec or CorpusSpec()
    gen = DataGen(spec.seed + 1)
    out: list[CorpusProgram] = []
    for index in range(spec.size):
        kind = gen.choice(RELATIONAL_KINDS)
        out.append(_relational(kind, index, gen, spec))
    return out


#: Hierarchical program shapes (for the Mehl & Wang experiment).
HIERARCHICAL_KINDS = ("hier-typed-scan", "hier-untyped-count",
                      "hier-type-specific-untyped", "hier-full-walk")


def generate_hierarchical_corpus(spec: CorpusSpec | None = None,
                                 courses: tuple[str, ...] = ("C000",
                                                             "C001",
                                                             "C002"),
                                 ) -> list[CorpusProgram]:
    """DL/I programs over a course hierarchy, in the four shapes the
    command-substitution rules distinguish: typed loops (untouched),
    untyped type-agnostic loops (substituted), untyped loops with
    type-specific bodies (refused to the analyst), and full GN walks
    (flagged)."""
    spec = spec or CorpusSpec()
    gen = DataGen(spec.seed + 2)
    out: list[CorpusProgram] = []
    hier_ok = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))
    for index in range(spec.size):
        kind = gen.choice(HIERARCHICAL_KINDS)
        name = f"{kind.upper()}-{index:03d}"
        cno = gen.choice(courses)
        if kind == "hier-typed-scan":
            program = b.program(name, "hierarchical", "IMS", [
                b.gu(b.ssa("COURSE", "CNO", "=", cno)),
                b.gnp(b.ssa("OFFERING")),
                b.while_(hier_ok, [
                    b.display(b.field("OFFERING", "S")),
                    b.gnp(b.ssa("OFFERING")),
                ]),
            ])
        elif kind == "hier-untyped-count":
            program = b.program(name, "hierarchical", "IMS", [
                b.gu(b.ssa("COURSE", "CNO", "=", cno)),
                b.assign("N", 0),
                b.gnp(),
                b.while_(hier_ok, [
                    b.assign("N", b.add(b.v("N"), 1)),
                    b.gnp(),
                ]),
                b.display(cno, b.v("N")),
            ])
        elif kind == "hier-type-specific-untyped":
            program = b.program(name, "hierarchical", "IMS", [
                b.gu(b.ssa("COURSE", "CNO", "=", cno)),
                b.gnp(),
                b.while_(hier_ok, [
                    b.display(b.field("OFFERING", "S")),  # type-bound!
                    b.gnp(),
                ]),
            ])
        else:  # hier-full-walk
            program = b.program(name, "hierarchical", "IMS", [
                b.assign("N", 0),
                b.gn(),
                b.while_(hier_ok, [
                    b.assign("N", b.add(b.v("N"), 1)),
                    b.gn(),
                ]),
                b.display("SEGMENTS", b.v("N")),
            ])
        out.append(CorpusProgram(program, kind))
    return out


def _relational(kind: str, index: int, gen: DataGen,
                spec: CorpusSpec) -> CorpusProgram:
    name = f"{kind.upper()}-{index:03d}"
    division = gen.choice(spec.divisions)
    dept = gen.choice(spec.departments)
    if kind == "rel-report":
        threshold = gen.int_between(25, 55)
        program = b.program(name, "relational", "COMPANY-NAME", [
            b.query(
                f"SELECT EMP-NAME, AGE FROM EMP WHERE AGE > {threshold} "
                "ORDER BY EMP-NAME",
                "$ROWS",
            ),
            b.for_each_row("ROW", "$ROWS", [
                b.display(b.v("ROW.EMP-NAME"), b.v("ROW.AGE")),
            ]),
            b.display("END-REPORT"),
        ])
        return CorpusProgram(program, kind)
    if kind == "rel-lookup":
        employee = gen.surname(index)
        program = b.program(name, "relational", "COMPANY-NAME", [
            b.query(
                f"SELECT AGE FROM EMP WHERE EMP-NAME = '{employee}'",
                "$ROWS",
            ),
            ast.BindFirstRow("EMP", "$ROWS"),
            b.if_(ast.status_ok(), [
                b.display(employee, b.v("EMP.AGE")),
            ], [b.display("NOT FOUND")]),
        ])
        return CorpusProgram(program, kind)
    if kind == "rel-hire":
        program = b.program(name, "relational", "COMPANY-NAME", [
            b.rel_insert("EMP", **{
                "EMP-NAME": f"RNEW-{index:04d}",
                "DEPT-NAME": dept,
                "AGE": gen.age(),
                "DIV-NAME": division,
            }),
            b.display("HIRED", f"RNEW-{index:04d}"),
        ])
        return CorpusProgram(program, kind)
    if kind == "rel-raise":
        employee = gen.surname(index)
        program = b.program(name, "relational", "COMPANY-NAME", [
            b.rel_update("EMP", {"EMP-NAME": employee},
                         {"AGE": gen.age()}),
            b.display(b.v("DB-STATUS")),
        ])
        return CorpusProgram(program, kind)
    raise ValueError(f"unknown relational kind {kind!r}")
