"""Workloads: the paper's example databases and a program corpus.

* :mod:`repro.workloads.school` -- the Figure 3.1 school database
  (courses, semesters, offerings, instructors) in relational and
  CODASYL form, with the Section 3.1 constraints;
* :mod:`repro.workloads.company` -- the Figure 4.2/4.3 company
  database and the Figure 4.4 restructuring;
* :mod:`repro.workloads.florida` -- the Section 4.1 EMP/DEPT/EMP-DEPT
  database and the "Manager Smith" query;
* :mod:`repro.workloads.datagen` -- deterministic seeded data;
* :mod:`repro.workloads.corpus` -- a generated application system
  (programs with controlled pathology injection) for the E2/E6
  experiments;
* :mod:`repro.workloads.inventory` -- the synthetic large-inventory
  workload (generated wide schema + 1k-100k program corpus) behind
  the multi-scale parallel benchmarks.
"""

from repro.workloads.datagen import DataGen
from repro.workloads import school, company, florida, corpus, inventory

__all__ = ["DataGen", "school", "company", "florida", "corpus",
           "inventory"]
