"""Deterministic fault injection.

The robustness layer promises that a fault at *any* phase of *any*
single program leaves the rest of the batch converted and every
database byte-identical to its pre-call savepoint.  Proving that needs
faults on demand: this module wraps engine/DML entry points on
*specific instances* and raises at the Nth matching call -- no
randomness at fire time, so every failing test replays exactly.

Seeding enters only when choosing *where* to fault:
:func:`choose_point` derives the target (and call ordinal) from a seed
so sweep-style tests cover many injection sites deterministically.

Usage::

    injector = FaultInjector()
    injector.add(db, "insert_record", nth=3)
    with injector:
        run()                       # 3rd insert_record raises
    assert injector.points[0].fired

or the one-shot form::

    with inject(db, "insert_record", nth=3):
        run()
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ReproError


class InjectedFault(ReproError):
    """The error raised by an armed fault point.

    Deliberately OUTSIDE the ConversionError branch of the hierarchy:
    nothing in the pipeline catches it specifically, so it exercises
    the same isolation paths a genuine engine bug would.
    """


class WorkerKilled(BaseException):
    """A ``kill_worker`` fault fired outside a worker process.

    Deliberately a ``BaseException``: this models the *process dying*,
    which no ``except Exception`` isolation layer in the pipeline could
    ever observe, let alone absorb.  Inside a pool worker the fault is
    the real thing (``os._exit``); in the serial engine it must take
    the same supervision path, so it sails past the cascade's
    per-stage error handling straight to the batch supervisor's
    retry/quarantine loop in :func:`repro.batch.convert_one`.
    """


# -- fault kinds ------------------------------------------------------------

#: Raise ``make_error`` at the Nth call (the original behaviour).
KIND_RAISE = "raise"
#: Die the way a segfault would: ``os._exit`` inside a pool worker,
#: :class:`WorkerKilled` (a BaseException) in-process, so serial and
#: parallel runs exercise the same quarantine bookkeeping.
KIND_KILL_WORKER = "kill_worker"
#: Busy-wait past the armed cooperative deadline, then let the call
#: proceed -- the interpreter's next statement check raises
#: :class:`~repro.programs.interpreter.ProgramTimeout`.
KIND_HANG = "hang"

FAULT_KINDS = (KIND_RAISE, KIND_KILL_WORKER, KIND_HANG)

#: Exit status a worker process dies with when ``kill_worker`` fires
#: (distinctive on purpose: a supervisor log line showing 173 means an
#: injected kill, not a genuine crash).
WORKER_KILL_EXIT = 173

#: True in pool worker processes (set by the worker main loop), where
#: ``kill_worker`` faults really exit instead of raising.
_WORKER_MODE = False
#: Ran just before ``os._exit`` so the worker can drain its result
#: queue's feeder thread -- an abrupt exit mid-write could tear the
#: previous chunk's already-queued result.
_WORKER_EXIT_HOOK: Callable[[], None] | None = None


def mark_worker_process(
        exit_hook: Callable[[], None] | None = None) -> None:
    """Declare this process a pool worker (kill faults become real).

    ``exit_hook`` runs immediately before ``os._exit`` -- the pool
    worker passes a result-queue drain so an injected kill cannot tear
    a result already handed to the queue's feeder thread.
    """
    global _WORKER_MODE, _WORKER_EXIT_HOOK
    _WORKER_MODE = True
    _WORKER_EXIT_HOOK = exit_hook


def _kill_current_worker(where: str) -> None:
    if _WORKER_MODE:
        hook = _WORKER_EXIT_HOOK
        if hook is not None:
            try:
                hook()
            except Exception:  # pragma: no cover - best-effort drain
                pass
        os._exit(WORKER_KILL_EXIT)
    raise WorkerKilled(f"injected worker kill at {where}")


def _hang_until_deadline(where: str) -> None:
    from repro.programs.interpreter import active_deadline

    state = active_deadline()
    if state is None:
        # Without a watchdog a hang would stall the run forever; fail
        # loudly (and identically in serial and worker processes).
        raise InjectedFault(
            f"hang fault at {where} fired with no program deadline "
            "armed; hangs are only recoverable through the cooperative "
            "watchdog (set ConversionOptions.program_timeout)"
        )
    deadline, _limit = state
    while time.monotonic() < deadline:
        time.sleep(0.0005)


@dataclass
class FaultPoint:
    """One armed injection site: the ``nth`` call (1-based) to
    ``method`` on ``obj`` fires a fault of ``kind`` -- raising
    ``make_error()`` (the default kind), killing the worker process, or
    hanging past the cooperative deadline.  ``label`` overrides the
    site description in kill/hang messages (fault plans pass their
    symbolic, process-portable description so serial and worker runs
    name the site identically)."""

    obj: Any
    method: str
    nth: int = 1
    make_error: Callable[[str], Exception] = InjectedFault
    kind: str = KIND_RAISE
    label: str | None = None
    calls: int = 0
    fired: bool = False
    _original: Callable | None = field(default=None, repr=False)

    def describe(self) -> str:
        return f"{type(self.obj).__name__}.{self.method}#{self.nth}"

    def trigger(self) -> None:
        """Fire this point's fault (called at the Nth matching call)."""
        if self.kind == KIND_RAISE:
            raise self.make_error(
                f"injected fault at {self.describe()}"
            )
        where = self.label if self.label is not None else self.describe()
        if self.kind == KIND_KILL_WORKER:
            _kill_current_worker(where)
        elif self.kind == KIND_HANG:
            _hang_until_deadline(where)
        else:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def arm(self) -> None:
        if self._original is not None:
            return
        original = getattr(self.obj, self.method)
        self._original = original
        point = self

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            point.calls += 1
            if point.calls == point.nth:
                point.fired = True
                # A raise/kill trigger never returns; a hang returns
                # control so the call proceeds and the interpreter's
                # next deadline check observes the stall.
                point.trigger()
            return original(*args, **kwargs)

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(self.obj, self.method, wrapper)

    def disarm(self) -> None:
        if self._original is None:
            return
        # The wrapper lives in the instance __dict__, shadowing the
        # class attribute; deleting it restores normal dispatch, while
        # a bound-method original must be reassigned explicitly.  A
        # module target has no class attribute to fall back to (the
        # merge-window sites inject module-level functions), so there
        # the original is always reassigned.
        try:
            instance_dict = vars(self.obj)
        except TypeError:
            instance_dict = {}
        if instance_dict.get(self.method) is not None and \
                getattr(instance_dict.get(self.method), "__wrapped__",
                        None) is self._original and \
                getattr(type(self.obj), self.method, None) is not None:
            del instance_dict[self.method]
        else:
            setattr(self.obj, self.method, self._original)
        self._original = None


class FaultInjector:
    """A set of fault points armed together (context manager)."""

    def __init__(self) -> None:
        self.points: list[FaultPoint] = []

    def add(self, obj: Any, method: str, nth: int = 1,
            make_error: Callable[[str], Exception] = InjectedFault,
            kind: str = KIND_RAISE, label: str | None = None
            ) -> FaultPoint:
        if not callable(getattr(obj, method, None)):
            raise ValueError(
                f"{type(obj).__name__}.{method} is not a callable "
                "injection target"
            )
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (have {FAULT_KINDS})"
            )
        point = FaultPoint(obj, method, nth, make_error, kind=kind,
                           label=label)
        self.points.append(point)
        return point

    @property
    def fired(self) -> list[FaultPoint]:
        return [point for point in self.points if point.fired]

    def __enter__(self) -> "FaultInjector":
        for point in self.points:
            point.arm()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for point in self.points:
            point.disarm()


@contextmanager
def inject(obj: Any, method: str, nth: int = 1,
           make_error: Callable[[str], Exception] = InjectedFault
           ) -> Iterator[FaultPoint]:
    """One-shot :class:`FaultInjector` around a single point."""
    injector = FaultInjector()
    point = injector.add(obj, method, nth, make_error)
    with injector:
        yield point


def choose_point(seed: int, candidates: Sequence[tuple[Any, str]],
                 max_nth: int = 3) -> tuple[Any, str, int]:
    """Deterministically pick an injection site and call ordinal.

    ``candidates`` are (object, method) pairs; the same seed always
    returns the same (object, method, nth) -- sweeping seeds walks the
    site space reproducibly.
    """
    if not candidates:
        raise ValueError("no injection candidates")
    rng = random.Random(seed)
    obj, method = candidates[rng.randrange(len(candidates))]
    return obj, method, rng.randint(1, max_nth)


# ---------------------------------------------------------------------------
# Declarative fault plans (process-portable, per-program deterministic)
# ---------------------------------------------------------------------------

#: Engine methods the seeded planner draws from: both sides of the
#: cascade's probes exercise them on every conversion.
DEFAULT_PLAN_METHODS = ("calc_index", "insert_record")


@dataclass(frozen=True)
class PlannedFault:
    """One declarative fault: the ``nth`` call (1-based) to ``method``
    on the engine named ``target`` raises, while ``program`` is being
    converted (``None``: during every program).

    Unlike :class:`FaultPoint`, a planned fault names its target
    symbolically (``"source_db"`` / ``"target_db"``), so a plan is
    picklable and can be shipped to parallel worker processes, which
    arm it on their own rehydrated engines.
    """

    target: str
    method: str
    nth: int = 1
    program: str | None = None
    #: One of :data:`FAULT_KINDS`; ``kill_worker`` and ``hang`` drive
    #: the batch supervisor's chaos surface (worker death, watchdog
    #: timeout) instead of raising.
    kind: str = KIND_RAISE

    def describe(self) -> str:
        scope = self.program if self.program is not None else "*"
        return f"{self.target}.{self.method}#{self.nth}@{scope}"


@dataclass(frozen=True)
class FaultPlan:
    """A set of planned faults, armed per program *unit*.

    Call counting restarts at every program: the same plan therefore
    fires at the same statement of the same program no matter how the
    batch is ordered or sharded across workers -- the determinism the
    parallel-vs-serial byte-identity guarantee rests on.  Dynamic
    chunk dispatch changes nothing here: whichever worker pulls
    whichever chunk, each program still arms its faults against a
    fresh per-unit counter, so the plan fires identically under
    static round-robin, work-stealing, or serial execution.
    """

    faults: tuple[PlannedFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_program(self, program_name: str) -> tuple[PlannedFault, ...]:
        return tuple(
            fault for fault in self.faults
            if fault.program is None or fault.program == program_name
        )

    @contextmanager
    def armed(self, program_name: str,
              targets: dict[str, Any]) -> Iterator[FaultInjector]:
        """Arm this plan's faults for one program unit.

        ``targets`` maps symbolic names to live objects (typically
        ``{"source_db": ..., "target_db": ...}``).  Fresh
        :class:`FaultPoint` instances are created each time, so call
        counting is scoped to the unit.
        """
        injector = FaultInjector()
        for fault in self.for_program(program_name):
            if fault.target not in targets:
                raise ValueError(
                    f"fault plan targets unknown object "
                    f"{fault.target!r} (have {sorted(targets)})"
                )
            injector.add(targets[fault.target], fault.method,
                         nth=fault.nth, kind=fault.kind,
                         label=fault.describe())
        with injector:
            yield injector


def plan_faults(seed: int, program_names: Sequence[str],
                rate: float = 0.5,
                targets: Sequence[str] = ("source_db", "target_db"),
                methods: Sequence[str] = DEFAULT_PLAN_METHODS,
                max_nth: int = 3,
                kinds: Sequence[str] = (KIND_RAISE,)) -> FaultPlan:
    """Derive a deterministic per-program fault plan from a seed.

    Each program draws from its own RNG seeded by ``f"{seed}:{name}"``
    (string seeding is stable across processes and runs, unlike object
    hashes), so whether a program gets a fault -- and where -- depends
    only on the seed and the program's name, never on batch order or
    the worker it lands on.

    ``kinds`` chooses the fault kind per faulted program.  The kind is
    drawn *last*, and only when more than one kind is offered, so every
    pre-existing single-kind plan keeps its exact fault sites under the
    same seed.
    """
    kind_pool = list(kinds)
    if not kind_pool:
        raise ValueError("plan_faults needs at least one fault kind")
    for kind in kind_pool:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (have {FAULT_KINDS})"
            )
    faults: list[PlannedFault] = []
    for name in program_names:
        rng = random.Random(f"{seed}:{name}")
        if rng.random() >= rate:
            continue
        target = rng.choice(list(targets))
        method = rng.choice(list(methods))
        nth = rng.randint(1, max_nth)
        kind = rng.choice(kind_pool) if len(kind_pool) > 1 else kind_pool[0]
        faults.append(PlannedFault(
            target=target,
            method=method,
            nth=nth,
            program=name,
            kind=kind,
        ))
    return FaultPlan(tuple(faults))
