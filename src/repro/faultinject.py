"""Deterministic fault injection.

The robustness layer promises that a fault at *any* phase of *any*
single program leaves the rest of the batch converted and every
database byte-identical to its pre-call savepoint.  Proving that needs
faults on demand: this module wraps engine/DML entry points on
*specific instances* and raises at the Nth matching call -- no
randomness at fire time, so every failing test replays exactly.

Seeding enters only when choosing *where* to fault:
:func:`choose_point` derives the target (and call ordinal) from a seed
so sweep-style tests cover many injection sites deterministically.

Usage::

    injector = FaultInjector()
    injector.add(db, "insert_record", nth=3)
    with injector:
        run()                       # 3rd insert_record raises
    assert injector.points[0].fired

or the one-shot form::

    with inject(db, "insert_record", nth=3):
        run()
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ReproError


class InjectedFault(ReproError):
    """The error raised by an armed fault point.

    Deliberately OUTSIDE the ConversionError branch of the hierarchy:
    nothing in the pipeline catches it specifically, so it exercises
    the same isolation paths a genuine engine bug would.
    """


@dataclass
class FaultPoint:
    """One armed injection site: the ``nth`` call (1-based) to
    ``method`` on ``obj`` raises ``make_error()``."""

    obj: Any
    method: str
    nth: int = 1
    make_error: Callable[[str], Exception] = InjectedFault
    calls: int = 0
    fired: bool = False
    _original: Callable | None = field(default=None, repr=False)

    def describe(self) -> str:
        return f"{type(self.obj).__name__}.{self.method}#{self.nth}"

    def arm(self) -> None:
        if self._original is not None:
            return
        original = getattr(self.obj, self.method)
        self._original = original
        point = self

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            point.calls += 1
            if point.calls == point.nth:
                point.fired = True
                raise point.make_error(
                    f"injected fault at {point.describe()}"
                )
            return original(*args, **kwargs)

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(self.obj, self.method, wrapper)

    def disarm(self) -> None:
        if self._original is None:
            return
        # The wrapper lives in the instance __dict__, shadowing the
        # class attribute; deleting it restores normal dispatch, while
        # a bound-method original must be reassigned explicitly.
        try:
            instance_dict = vars(self.obj)
        except TypeError:
            instance_dict = {}
        if instance_dict.get(self.method) is not None and \
                getattr(instance_dict.get(self.method), "__wrapped__",
                        None) is self._original:
            del instance_dict[self.method]
        else:
            setattr(self.obj, self.method, self._original)
        self._original = None


class FaultInjector:
    """A set of fault points armed together (context manager)."""

    def __init__(self) -> None:
        self.points: list[FaultPoint] = []

    def add(self, obj: Any, method: str, nth: int = 1,
            make_error: Callable[[str], Exception] = InjectedFault
            ) -> FaultPoint:
        if not callable(getattr(obj, method, None)):
            raise ValueError(
                f"{type(obj).__name__}.{method} is not a callable "
                "injection target"
            )
        point = FaultPoint(obj, method, nth, make_error)
        self.points.append(point)
        return point

    @property
    def fired(self) -> list[FaultPoint]:
        return [point for point in self.points if point.fired]

    def __enter__(self) -> "FaultInjector":
        for point in self.points:
            point.arm()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for point in self.points:
            point.disarm()


@contextmanager
def inject(obj: Any, method: str, nth: int = 1,
           make_error: Callable[[str], Exception] = InjectedFault
           ) -> Iterator[FaultPoint]:
    """One-shot :class:`FaultInjector` around a single point."""
    injector = FaultInjector()
    point = injector.add(obj, method, nth, make_error)
    with injector:
        yield point


def choose_point(seed: int, candidates: Sequence[tuple[Any, str]],
                 max_nth: int = 3) -> tuple[Any, str, int]:
    """Deterministically pick an injection site and call ordinal.

    ``candidates`` are (object, method) pairs; the same seed always
    returns the same (object, method, nth) -- sweeping seeds walks the
    site space reproducibly.
    """
    if not candidates:
        raise ValueError("no injection candidates")
    rng = random.Random(seed)
    obj, method = candidates[rng.randrange(len(candidates))]
    return obj, method, rng.randint(1, max_nth)
