"""Deterministic fault injection.

The robustness layer promises that a fault at *any* phase of *any*
single program leaves the rest of the batch converted and every
database byte-identical to its pre-call savepoint.  Proving that needs
faults on demand: this module wraps engine/DML entry points on
*specific instances* and raises at the Nth matching call -- no
randomness at fire time, so every failing test replays exactly.

Seeding enters only when choosing *where* to fault:
:func:`choose_point` derives the target (and call ordinal) from a seed
so sweep-style tests cover many injection sites deterministically.

Usage::

    injector = FaultInjector()
    injector.add(db, "insert_record", nth=3)
    with injector:
        run()                       # 3rd insert_record raises
    assert injector.points[0].fired

or the one-shot form::

    with inject(db, "insert_record", nth=3):
        run()
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.errors import ReproError


class InjectedFault(ReproError):
    """The error raised by an armed fault point.

    Deliberately OUTSIDE the ConversionError branch of the hierarchy:
    nothing in the pipeline catches it specifically, so it exercises
    the same isolation paths a genuine engine bug would.
    """


@dataclass
class FaultPoint:
    """One armed injection site: the ``nth`` call (1-based) to
    ``method`` on ``obj`` raises ``make_error()``."""

    obj: Any
    method: str
    nth: int = 1
    make_error: Callable[[str], Exception] = InjectedFault
    calls: int = 0
    fired: bool = False
    _original: Callable | None = field(default=None, repr=False)

    def describe(self) -> str:
        return f"{type(self.obj).__name__}.{self.method}#{self.nth}"

    def arm(self) -> None:
        if self._original is not None:
            return
        original = getattr(self.obj, self.method)
        self._original = original
        point = self

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            point.calls += 1
            if point.calls == point.nth:
                point.fired = True
                raise point.make_error(
                    f"injected fault at {point.describe()}"
                )
            return original(*args, **kwargs)

        wrapper.__wrapped__ = original  # type: ignore[attr-defined]
        setattr(self.obj, self.method, wrapper)

    def disarm(self) -> None:
        if self._original is None:
            return
        # The wrapper lives in the instance __dict__, shadowing the
        # class attribute; deleting it restores normal dispatch, while
        # a bound-method original must be reassigned explicitly.  A
        # module target has no class attribute to fall back to (the
        # merge-window sites inject module-level functions), so there
        # the original is always reassigned.
        try:
            instance_dict = vars(self.obj)
        except TypeError:
            instance_dict = {}
        if instance_dict.get(self.method) is not None and \
                getattr(instance_dict.get(self.method), "__wrapped__",
                        None) is self._original and \
                getattr(type(self.obj), self.method, None) is not None:
            del instance_dict[self.method]
        else:
            setattr(self.obj, self.method, self._original)
        self._original = None


class FaultInjector:
    """A set of fault points armed together (context manager)."""

    def __init__(self) -> None:
        self.points: list[FaultPoint] = []

    def add(self, obj: Any, method: str, nth: int = 1,
            make_error: Callable[[str], Exception] = InjectedFault
            ) -> FaultPoint:
        if not callable(getattr(obj, method, None)):
            raise ValueError(
                f"{type(obj).__name__}.{method} is not a callable "
                "injection target"
            )
        point = FaultPoint(obj, method, nth, make_error)
        self.points.append(point)
        return point

    @property
    def fired(self) -> list[FaultPoint]:
        return [point for point in self.points if point.fired]

    def __enter__(self) -> "FaultInjector":
        for point in self.points:
            point.arm()
        return self

    def __exit__(self, *exc_info: object) -> None:
        for point in self.points:
            point.disarm()


@contextmanager
def inject(obj: Any, method: str, nth: int = 1,
           make_error: Callable[[str], Exception] = InjectedFault
           ) -> Iterator[FaultPoint]:
    """One-shot :class:`FaultInjector` around a single point."""
    injector = FaultInjector()
    point = injector.add(obj, method, nth, make_error)
    with injector:
        yield point


def choose_point(seed: int, candidates: Sequence[tuple[Any, str]],
                 max_nth: int = 3) -> tuple[Any, str, int]:
    """Deterministically pick an injection site and call ordinal.

    ``candidates`` are (object, method) pairs; the same seed always
    returns the same (object, method, nth) -- sweeping seeds walks the
    site space reproducibly.
    """
    if not candidates:
        raise ValueError("no injection candidates")
    rng = random.Random(seed)
    obj, method = candidates[rng.randrange(len(candidates))]
    return obj, method, rng.randint(1, max_nth)


# ---------------------------------------------------------------------------
# Declarative fault plans (process-portable, per-program deterministic)
# ---------------------------------------------------------------------------

#: Engine methods the seeded planner draws from: both sides of the
#: cascade's probes exercise them on every conversion.
DEFAULT_PLAN_METHODS = ("calc_index", "insert_record")


@dataclass(frozen=True)
class PlannedFault:
    """One declarative fault: the ``nth`` call (1-based) to ``method``
    on the engine named ``target`` raises, while ``program`` is being
    converted (``None``: during every program).

    Unlike :class:`FaultPoint`, a planned fault names its target
    symbolically (``"source_db"`` / ``"target_db"``), so a plan is
    picklable and can be shipped to parallel worker processes, which
    arm it on their own rehydrated engines.
    """

    target: str
    method: str
    nth: int = 1
    program: str | None = None

    def describe(self) -> str:
        scope = self.program if self.program is not None else "*"
        return f"{self.target}.{self.method}#{self.nth}@{scope}"


@dataclass(frozen=True)
class FaultPlan:
    """A set of planned faults, armed per program *unit*.

    Call counting restarts at every program: the same plan therefore
    fires at the same statement of the same program no matter how the
    batch is ordered or sharded across workers -- the determinism the
    parallel-vs-serial byte-identity guarantee rests on.  Dynamic
    chunk dispatch changes nothing here: whichever worker pulls
    whichever chunk, each program still arms its faults against a
    fresh per-unit counter, so the plan fires identically under
    static round-robin, work-stealing, or serial execution.
    """

    faults: tuple[PlannedFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_program(self, program_name: str) -> tuple[PlannedFault, ...]:
        return tuple(
            fault for fault in self.faults
            if fault.program is None or fault.program == program_name
        )

    @contextmanager
    def armed(self, program_name: str,
              targets: dict[str, Any]) -> Iterator[FaultInjector]:
        """Arm this plan's faults for one program unit.

        ``targets`` maps symbolic names to live objects (typically
        ``{"source_db": ..., "target_db": ...}``).  Fresh
        :class:`FaultPoint` instances are created each time, so call
        counting is scoped to the unit.
        """
        injector = FaultInjector()
        for fault in self.for_program(program_name):
            if fault.target not in targets:
                raise ValueError(
                    f"fault plan targets unknown object "
                    f"{fault.target!r} (have {sorted(targets)})"
                )
            injector.add(targets[fault.target], fault.method,
                         nth=fault.nth)
        with injector:
            yield injector


def plan_faults(seed: int, program_names: Sequence[str],
                rate: float = 0.5,
                targets: Sequence[str] = ("source_db", "target_db"),
                methods: Sequence[str] = DEFAULT_PLAN_METHODS,
                max_nth: int = 3) -> FaultPlan:
    """Derive a deterministic per-program fault plan from a seed.

    Each program draws from its own RNG seeded by ``f"{seed}:{name}"``
    (string seeding is stable across processes and runs, unlike object
    hashes), so whether a program gets a fault -- and where -- depends
    only on the seed and the program's name, never on batch order or
    the worker it lands on.
    """
    faults: list[PlannedFault] = []
    for name in program_names:
        rng = random.Random(f"{seed}:{name}")
        if rng.random() >= rate:
            continue
        faults.append(PlannedFault(
            target=rng.choice(list(targets)),
            method=rng.choice(list(methods)),
            nth=rng.randint(1, max_nth),
            program=name,
        ))
    return FaultPlan(tuple(faults))
