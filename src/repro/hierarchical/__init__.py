"""Hierarchical (IMS-like) data model.

Models what the Mehl & Wang study (Section 2.2) converts: a forest of
segment types with a declared hierarchical order, navigated by DL/I-style
calls -- GET UNIQUE, GET NEXT, GET NEXT WITHIN PARENT, ISRT, DLET, REPL
-- with segment search arguments (SSAs) and the two-letter status codes
('GE' not found, 'GB' end of database) whose behaviour under
restructuring Section 3.2 worries about.

The same common schema drives the model: non-SYSTEM sets define the
parent/child structure (the schema must be a forest), the order of set
declarations gives the sibling segment-type order, and set order keys
give twin (occurrence) order.
"""

from repro.hierarchical.database import HierarchicalDatabase
from repro.hierarchical.dml import (
    DLISession,
    SSA,
    STATUS_END,
    STATUS_NOT_FOUND,
    STATUS_OK,
)

__all__ = [
    "HierarchicalDatabase",
    "DLISession",
    "SSA",
    "STATUS_OK",
    "STATUS_NOT_FOUND",
    "STATUS_END",
]
