"""Hierarchical database: segment trees in hierarchical sequence."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.engine.metrics import Metrics
from repro.engine.savepoint import Savepoint, check_owner, fingerprint
from repro.engine.storage import Record, RecordStore
from repro.errors import (
    IntegrityError,
    RecordNotFound,
    SchemaError,
)
from repro.engine.ordering import orderable
from repro.schema.constraints import Violation, check_all
from repro.schema.model import Schema, SetType


class HierarchicalDatabase:
    """Segments stored as a forest following the schema's set structure.

    The *hierarchical sequence* -- the total preorder over all segments
    that DL/I GET NEXT walks -- is: root occurrences in root-set order;
    under each segment, its child segment types in schema declaration
    order, each type's occurrences (twins) in twin order.
    """

    def __init__(self, schema: Schema, metrics: Metrics | None = None):
        schema.validate()
        if not schema.is_hierarchical():
            raise SchemaError(
                f"schema {schema.name} is not hierarchical "
                "(a record type has multiple parents or a cycle exists)"
            )
        self.schema = schema
        self.metrics = metrics if metrics is not None else Metrics()
        self._stores: dict[str, RecordStore] = {
            name: RecordStore(name, self.metrics)
            for name in schema.records
        }
        # member -> its (single) parent set type, if any
        self._parent_set: dict[str, SetType] = {}
        for set_type in schema.sets.values():
            if not set_type.system_owned:
                self._parent_set[set_type.member] = set_type
        self._parent_of: dict[tuple[str, int], tuple[str, int] | None] = {}
        # (parent name, parent rid, child type) -> ordered child rids
        self._children: dict[tuple[str, int, str], list[int]] = {}
        self._version = 0
        self._preorder_cache: list[tuple[str, int]] | None = None

    # -- structure queries ---------------------------------------------------

    def store(self, segment_name: str) -> RecordStore:
        self.schema.record(segment_name)
        return self._stores[segment_name]

    def root_types(self) -> list[str]:
        """Segment types with no parent, in schema declaration order."""
        return [
            name for name in self.schema.records
            if name not in self._parent_set
        ]

    def child_types(self, segment_name: str) -> list[str]:
        """Child segment types in declaration order (sibling order)."""
        return [
            set_type.member for set_type in self.schema.sets.values()
            if set_type.owner == segment_name
        ]

    def parent_type(self, segment_name: str) -> str | None:
        set_type = self._parent_set.get(segment_name)
        return set_type.owner if set_type is not None else None

    def level(self, segment_name: str) -> int:
        """1-based depth of a segment type in its tree."""
        depth = 1
        parent = self.parent_type(segment_name)
        while parent is not None:
            depth += 1
            parent = self.parent_type(parent)
        return depth

    # -- twin ordering ---------------------------------------------------------

    def _twin_key(self, segment_name: str, rid: int) -> tuple:
        set_type = self._parent_set.get(segment_name)
        keys: tuple[str, ...] = ()
        if set_type is not None:
            keys = set_type.order_keys
        else:
            for root_set in self.schema.system_sets():
                if root_set.member == segment_name:
                    keys = root_set.order_keys
                    break
        record = self._stores[segment_name].peek(rid)
        values = tuple(
            record.get(key) if record is not None else None for key in keys
        )
        return orderable(values)

    def _insert_ordered(self, siblings: list[int], segment_name: str,
                        rid: int) -> None:
        key = self._twin_key(segment_name, rid)
        position = 0
        while (position < len(siblings)
               and self._twin_key(segment_name, siblings[position]) <= key):
            position += 1
        siblings.insert(position, rid)

    # -- mutation ----------------------------------------------------------------

    def insert_segment(self, segment_name: str, values: dict[str, Any],
                       parent: tuple[str, int] | None = None) -> Record:
        """ISRT: add a segment under a parent (None for roots)."""
        record_type = self.schema.record(segment_name)
        checked = record_type.validate_values(values)
        for field_name in record_type.stored_field_names():
            checked.setdefault(field_name, None)
        expected_parent = self.parent_type(segment_name)
        if expected_parent is None:
            if parent is not None:
                raise SchemaError(
                    f"segment {segment_name} is a root; no parent allowed"
                )
        else:
            if parent is None or parent[0] != expected_parent:
                raise SchemaError(
                    f"segment {segment_name} requires a parent of type "
                    f"{expected_parent}"
                )
            if self._stores[parent[0]].peek(parent[1]) is None:
                raise RecordNotFound(
                    f"parent {parent[0]} rid {parent[1]} does not exist"
                )
        record = self._stores[segment_name].insert(checked)
        self._parent_of[(segment_name, record.rid)] = parent
        bucket_parent = parent if parent is not None else ("", 0)
        bucket = self._children.setdefault(
            (bucket_parent[0], bucket_parent[1], segment_name), []
        )
        self._insert_ordered(bucket, segment_name, record.rid)
        self._version += 1
        return record

    def insert_segments(
        self, segment_name: str,
        entries: list[tuple[dict[str, Any], tuple[str, int] | None]],
    ) -> list[Record]:
        """Bulk ISRT: ``entries`` are (values, parent) pairs.

        Equivalent to inserting each entry in order, but every entry is
        validated before any is stored, and each sibling bucket is
        sorted once per batch instead of insertion-sorted per segment
        (O(k log k) instead of O(k^2) for k twins).
        """
        record_type = self.schema.record(segment_name)
        stored_fields = record_type.stored_field_names()
        expected_parent = self.parent_type(segment_name)
        checked_entries = []
        for values, parent in entries:
            checked = record_type.validate_values(values)
            for field_name in stored_fields:
                checked.setdefault(field_name, None)
            if expected_parent is None:
                if parent is not None:
                    raise SchemaError(
                        f"segment {segment_name} is a root; "
                        "no parent allowed"
                    )
            else:
                if parent is None or parent[0] != expected_parent:
                    raise SchemaError(
                        f"segment {segment_name} requires a parent of "
                        f"type {expected_parent}"
                    )
                if self._stores[parent[0]].peek(parent[1]) is None:
                    raise RecordNotFound(
                        f"parent {parent[0]} rid {parent[1]} does not exist"
                    )
            checked_entries.append((checked, parent))
        records = self._stores[segment_name].insert_many(
            [checked for checked, _parent in checked_entries]
        )
        touched: set[tuple[str, int, str]] = set()
        for record, (_checked, parent) in zip(records, checked_entries):
            self._parent_of[(segment_name, record.rid)] = parent
            bucket_parent = parent if parent is not None else ("", 0)
            key = (bucket_parent[0], bucket_parent[1], segment_name)
            self._children.setdefault(key, []).append(record.rid)
            touched.add(key)
        for key in touched:
            # Existing twins are already in twin order and new rids are
            # appended in arrival order, so one stable sort reproduces
            # the per-insert "after equal keys" placement.
            self._children[key].sort(
                key=lambda rid: self._twin_key(segment_name, rid)
            )
        if entries:
            self._version += 1
        return records

    def replace_segment(self, segment_name: str, rid: int,
                        updates: dict[str, Any]) -> Record:
        """REPL: update a segment's fields in place."""
        record_type = self.schema.record(segment_name)
        checked = record_type.validate_values(updates)
        record = self._stores[segment_name].update(rid, checked)
        # Twin order may depend on updated fields; re-sort siblings.
        parent = self._parent_of.get((segment_name, rid))
        bucket_parent = parent if parent is not None else ("", 0)
        bucket_key = (bucket_parent[0], bucket_parent[1], segment_name)
        bucket = self._children.get(bucket_key, [])
        if rid in bucket:
            bucket.remove(rid)
            self._insert_ordered(bucket, segment_name, rid)
        self._version += 1
        return record

    def delete_segment(self, segment_name: str, rid: int) -> int:
        """DLET: remove a segment and its whole subtree; returns the
        number of segments deleted.  (DL/I deletes dependents with the
        parent -- the very behaviour whose CODASYL analogue Section 3.1
        flags as an integrity hazard.)"""
        deleted = 0
        for child_type in self.child_types(segment_name):
            for child_rid in list(self.children(segment_name, rid, child_type)):
                deleted += self.delete_segment(child_type, child_rid)
        parent = self._parent_of.pop((segment_name, rid), None)
        bucket_parent = parent if parent is not None else ("", 0)
        bucket = self._children.get(
            (bucket_parent[0], bucket_parent[1], segment_name), []
        )
        if rid in bucket:
            bucket.remove(rid)
        self._stores[segment_name].delete(rid)
        self._version += 1
        return deleted + 1

    # -- navigation --------------------------------------------------------------

    def roots(self, root_type: str) -> list[int]:
        return list(self._children.get(("", 0, root_type), []))

    def children(self, parent_type: str, parent_rid: int,
                 child_type: str) -> list[int]:
        return list(self._children.get((parent_type, parent_rid, child_type), []))

    def parent_of(self, segment_name: str, rid: int) -> tuple[str, int] | None:
        return self._parent_of.get((segment_name, rid))

    def preorder(self) -> list[tuple[str, int]]:
        """The hierarchical sequence (cached until the next mutation)."""
        if self._preorder_cache is not None and \
                self._preorder_version == self._version:
            return self._preorder_cache
        sequence: list[tuple[str, int]] = []

        def visit(segment_name: str, rid: int) -> None:
            sequence.append((segment_name, rid))
            for child_type in self.child_types(segment_name):
                for child_rid in self.children(segment_name, rid, child_type):
                    visit(child_type, child_rid)

        for root_type in self.root_types():
            for root_rid in self.roots(root_type):
                visit(root_type, root_rid)
        self._preorder_cache = sequence
        self._preorder_version = self._version
        return sequence

    def fetch(self, segment_name: str, rid: int) -> Record:
        return self._stores[segment_name].fetch(rid)

    # -- DatabaseView protocol ------------------------------------------------------

    def instances(self, record_name: str) -> Iterator[Record]:
        yield from self.store(record_name).scan()

    def owner_record(self, set_name: str, member_rid: int) -> Record | None:
        set_type = self.schema.set_type(set_name)
        if set_type.system_owned:
            return None
        parent = self._parent_of.get((set_type.member, member_rid))
        if parent is None:
            return None
        self.metrics.set_traversals += 1
        return self._stores[parent[0]].fetch(parent[1])

    def member_records(self, set_name: str, owner_rid: int) -> Iterator[Record]:
        set_type = self.schema.set_type(set_name)
        if set_type.system_owned:
            yield from self.instances(set_type.member)
            return
        for rid in self.children(set_type.owner, owner_rid, set_type.member):
            self.metrics.set_traversals += 1
            yield self._stores[set_type.member].fetch(rid)

    def read_field(self, record: Record, field_name: str) -> Any:
        record_type = self.schema.record(record.type_name)
        fld = record_type.field(field_name)
        if not fld.is_virtual:
            return record.get(field_name)
        owner = self.owner_record(fld.virtual_via, record.rid)
        if owner is None:
            return None
        return self.read_field(owner, fld.virtual_using)

    # -- integrity --------------------------------------------------------------------

    def check_constraints(self) -> list[Violation]:
        return check_all(self)

    def verify_consistent(self) -> None:
        violations = self.check_constraints()
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise IntegrityError(
                f"database inconsistent ({len(violations)} violations): "
                f"{summary}",
                constraint=violations[0].constraint,
            )

    @contextmanager
    def run_unit(self) -> Iterator["HierarchicalDatabase"]:
        yield self
        self.verify_consistent()

    def count(self, segment_name: str) -> int:
        return len(self.store(segment_name))

    # -- savepoints --------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture stores, parent links, and sibling buckets (the
        preorder cache is derived state and simply invalidates)."""
        parts = {
            f"store:{name}": store.savepoint()
            for name, store in self._stores.items()
        }
        return Savepoint("hierarchical-db", id(self), payload=(
            dict(self._parent_of),
            {key: list(rids) for key, rids in self._children.items()},
        ), parts=parts)

    def rollback(self, savepoint: Savepoint) -> None:
        check_owner(savepoint, "hierarchical-db", self)
        for name, store in self._stores.items():
            store.rollback(savepoint.part(f"store:{name}"))
        parent_of, children = savepoint.payload
        self._parent_of = dict(parent_of)
        self._children = {
            key: list(rids) for key, rids in children.items()
        }
        self._version += 1
        self._preorder_cache = None

    def state_fingerprint(self) -> str:
        return fingerprint((
            "hierarchical", self.schema.name,
            tuple(store.state_fingerprint_data()
                  for store in self._stores.values()),
            tuple(sorted(self._parent_of.items())),
            tuple(sorted(
                (key, tuple(rids))
                for key, rids in self._children.items() if rids
            )),
        ))

    _preorder_version = -1
