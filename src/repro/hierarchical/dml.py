"""DL/I-style calls over the hierarchical database.

A :class:`DLISession` is the program communication block: it holds the
current position in the hierarchical sequence and the parentage set by
the last successful GET, and exposes the calls Mehl & Wang's study
intercepts (Section 2.2): GU, GN, GNP, ISRT, DLET, REPL.

Qualification uses :class:`SSA` segment search arguments: a segment
name plus an optional ``field op value`` condition, e.g.
``SSA('COURSE', 'CNO', '=', 'C55')``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.storage import Record
from repro.errors import CurrencyError
from repro.hierarchical.database import HierarchicalDatabase

#: DL/I status codes (two-character, blank means success).
STATUS_OK = "  "
STATUS_NOT_FOUND = "GE"
STATUS_END = "GB"

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
}


@dataclass(frozen=True)
class SSA:
    """Segment search argument: segment name + optional qualification."""

    segment: str
    field: str | None = None
    op: str = "="
    value: Any = None

    @property
    def qualified(self) -> bool:
        return self.field is not None

    def matches(self, record: Record) -> bool:
        if not self.qualified:
            return True
        return _OPS[self.op](record.get(self.field), self.value)

    def render(self) -> str:
        if not self.qualified:
            return self.segment
        return f"{self.segment}({self.field}{self.op}{self.value!r})"


class DLISession:
    """One program's position over a hierarchical database."""

    def __init__(self, db: HierarchicalDatabase):
        self.db = db
        self.status = STATUS_OK
        #: Position in the hierarchical sequence: index of the segment
        #: returned by the last successful GET (-1 = before first).
        self._position = -1
        #: (segment type, rid) of the last GET, used as GNP parentage.
        self.parentage: tuple[str, int] | None = None

    # -- helpers -----------------------------------------------------------

    def _sequence(self) -> list[tuple[str, int]]:
        return self.db.preorder()

    def _return(self, segment_name: str, rid: int,
                index: int) -> Record:
        self._position = index
        self.parentage = (segment_name, rid)
        self.status = STATUS_OK
        return self.db.fetch(segment_name, rid)

    def _match_path(self, ssas: tuple[SSA, ...],
                    start: int) -> tuple[int, str, int] | None:
        """Find the first sequence index >= start whose segment matches
        the last SSA and whose ancestor path matches the earlier SSAs."""
        sequence = self._sequence()
        target = ssas[-1]
        for index in range(start, len(sequence)):
            segment_name, rid = sequence[index]
            self.db.metrics.set_traversals += 1
            if segment_name != target.segment:
                continue
            record = self.db.store(segment_name).peek(rid)
            if record is None or not target.matches(record):
                continue
            if self._ancestors_match(segment_name, rid, ssas[:-1]):
                return index, segment_name, rid
        return None

    def _ancestors_match(self, segment_name: str, rid: int,
                         ancestor_ssas: tuple[SSA, ...]) -> bool:
        # Collect the ancestor chain root-first.
        chain: list[tuple[str, int]] = []
        node: tuple[str, int] | None = (segment_name, rid)
        while node is not None:
            node = self.db.parent_of(node[0], node[1])
            if node is not None:
                chain.append(node)
        chain.reverse()
        ancestors_by_type = {name: rid_ for name, rid_ in chain}
        for ssa in ancestor_ssas:
            ancestor_rid = ancestors_by_type.get(ssa.segment)
            if ancestor_rid is None:
                return False
            record = self.db.store(ssa.segment).peek(ancestor_rid)
            if record is None or not ssa.matches(record):
                return False
        return True

    # -- GET calls ------------------------------------------------------------

    def get_unique(self, *ssas: SSA) -> Record | None:
        """GU: position at the first segment matching the SSA path,
        searching from the start of the database."""
        self.db.metrics.dml_calls += 1
        if not ssas:
            raise CurrencyError("GU requires at least one SSA")
        match = self._match_path(tuple(ssas), 0)
        if match is None:
            self.status = STATUS_NOT_FOUND
            return None
        index, segment_name, rid = match
        return self._return(segment_name, rid, index)

    def get_next(self, *ssas: SSA) -> Record | None:
        """GN: next segment in hierarchical sequence (optionally
        matching an SSA path)."""
        self.db.metrics.dml_calls += 1
        start = self._position + 1
        sequence = self._sequence()
        if not ssas:
            if start >= len(sequence):
                self.status = STATUS_END
                return None
            segment_name, rid = sequence[start]
            self.db.metrics.set_traversals += 1
            return self._return(segment_name, rid, start)
        match = self._match_path(tuple(ssas), start)
        if match is None:
            self.status = STATUS_END
            return None
        index, segment_name, rid = match
        return self._return(segment_name, rid, index)

    def get_next_within_parent(self, *ssas: SSA) -> Record | None:
        """GNP: like GN but confined to the current parentage's subtree.

        The parentage is the segment of the last GU/GN (IMS semantics);
        hitting the end of the subtree returns status 'GE'.
        """
        self.db.metrics.dml_calls += 1
        if self.parentage is None:
            self.status = STATUS_NOT_FOUND
            return None
        parent_name, parent_rid = self.parentage
        sequence = self._sequence()
        subtree = self._subtree_indexes(parent_name, parent_rid)
        start = self._position + 1
        for index in range(start, len(sequence)):
            if index not in subtree:
                break  # left the subtree: GNP exhausted
            segment_name, rid = sequence[index]
            self.db.metrics.set_traversals += 1
            if ssas:
                target = ssas[-1]
                if segment_name != target.segment:
                    continue
                record = self.db.store(segment_name).peek(rid)
                if record is None or not target.matches(record):
                    continue
                if not self._ancestors_match(segment_name, rid,
                                             tuple(ssas[:-1])):
                    continue
            # GNP does not move the parentage; only the position.
            self._position = index
            self.status = STATUS_OK
            return self.db.fetch(segment_name, rid)
        self.status = STATUS_NOT_FOUND
        return None

    def _subtree_indexes(self, parent_name: str,
                         parent_rid: int) -> set[int]:
        sequence = self._sequence()
        try:
            root_index = sequence.index((parent_name, parent_rid))
        except ValueError:
            return set()
        indexes = {root_index}
        descendants = {(parent_name, parent_rid)}
        for index in range(root_index + 1, len(sequence)):
            segment_name, rid = sequence[index]
            parent = self.db.parent_of(segment_name, rid)
            if parent in descendants:
                descendants.add((segment_name, rid))
                indexes.add(index)
            elif index > root_index and parent not in descendants:
                # Preorder: once we see a segment outside the subtree,
                # everything after is outside too.
                break
        return indexes

    # -- update calls ------------------------------------------------------------

    def insert(self, segment_name: str, values: dict[str, Any],
               *parent_ssas: SSA) -> Record | None:
        """ISRT: insert a segment; parent located by the SSA path (or
        the current parentage when no SSAs are given)."""
        self.db.metrics.dml_calls += 1
        parent: tuple[str, int] | None = None
        expected_parent = self.db.parent_type(segment_name)
        if expected_parent is not None:
            if parent_ssas:
                match = self._match_path(tuple(parent_ssas), 0)
                if match is None:
                    self.status = STATUS_NOT_FOUND
                    return None
                _index, parent_name, parent_rid = match
                parent = (parent_name, parent_rid)
            elif self.parentage is not None:
                parent = self._locate_ancestor(expected_parent)
            if parent is None or parent[0] != expected_parent:
                self.status = STATUS_NOT_FOUND
                return None
        record = self.db.insert_segment(segment_name, values, parent)
        self.status = STATUS_OK
        return record

    def _locate_ancestor(self, wanted_type: str) -> tuple[str, int] | None:
        node = self.parentage
        while node is not None and node[0] != wanted_type:
            node = self.db.parent_of(node[0], node[1])
        return node

    def delete(self) -> int:
        """DLET: delete the current segment and its subtree."""
        self.db.metrics.dml_calls += 1
        if self.parentage is None:
            self.status = STATUS_NOT_FOUND
            return 0
        segment_name, rid = self.parentage
        count = self.db.delete_segment(segment_name, rid)
        self.parentage = None
        self._position -= 1
        self.status = STATUS_OK
        return count

    def replace(self, updates: dict[str, Any]) -> Record | None:
        """REPL: update the current segment's fields."""
        self.db.metrics.dml_calls += 1
        if self.parentage is None:
            self.status = STATUS_NOT_FOUND
            return None
        segment_name, rid = self.parentage
        record = self.db.replace_segment(segment_name, rid, updates)
        self.status = STATUS_OK
        return record

    def position_to_parentage(self) -> None:
        """Re-establish the position at the current parentage segment
        (the Mehl & Wang substitution sequences need this between the
        typed loops they generate: each loop scans the parent's subtree
        from the top)."""
        self.db.metrics.dml_calls += 1
        if self.parentage is None:
            self.status = STATUS_NOT_FOUND
            return
        sequence = self._sequence()
        try:
            self._position = sequence.index(self.parentage)
        except ValueError:
            self.status = STATUS_NOT_FOUND
            return
        self.status = STATUS_OK

    def reset(self) -> None:
        """Return to the start of the database (before the first
        segment), clearing parentage."""
        self._position = -1
        self.parentage = None
        self.status = STATUS_OK
