"""Schema-change taxonomy and schema differencing.

Figure 4.1's Conversion Analyzer "analyzes the source and target
databases in order to classify the types of changes that have been made
and to encode the descriptions in suitable internal representations".
The internal representation is this module's :class:`SchemaChange`
hierarchy.

Changes arrive in two ways, matching the paper's two inputs (a new
schema, and "a definition of a restructuring"):

* :func:`diff_schemas` infers simple changes by name-matching two
  schemas (additions, removals, ordering and membership changes);
* the restructuring operators of :mod:`repro.restructure.operators`
  *declare* the structural changes (renames, interpositions, merges)
  that no name-diff can infer reliably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.constraints import Constraint
from repro.schema.model import Field, Insertion, Retention, Schema, SetType


@dataclass(frozen=True)
class SchemaChange:
    """Base class for one classified change between source and target."""

    def describe(self) -> str:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Stable identifier used to select transformation rules."""
        return type(self).__name__


# -- naming changes ---------------------------------------------------------


@dataclass(frozen=True)
class RecordRenamed(SchemaChange):
    old_name: str
    new_name: str

    def describe(self) -> str:
        return f"record {self.old_name} renamed to {self.new_name}"


@dataclass(frozen=True)
class FieldRenamed(SchemaChange):
    record: str
    old_name: str
    new_name: str

    def describe(self) -> str:
        return (f"field {self.record}.{self.old_name} renamed to "
                f"{self.new_name}")


@dataclass(frozen=True)
class SetRenamed(SchemaChange):
    old_name: str
    new_name: str

    def describe(self) -> str:
        return f"set {self.old_name} renamed to {self.new_name}"


# -- additive / subtractive changes -----------------------------------------


@dataclass(frozen=True)
class RecordAdded(SchemaChange):
    record: str

    def describe(self) -> str:
        return f"record type {self.record} added"


@dataclass(frozen=True)
class RecordRemoved(SchemaChange):
    record: str

    def describe(self) -> str:
        return f"record type {self.record} removed"


@dataclass(frozen=True)
class FieldAdded(SchemaChange):
    record: str
    field_name: str
    default: object = None

    def describe(self) -> str:
        return f"field {self.record}.{self.field_name} added"


@dataclass(frozen=True)
class FieldRemoved(SchemaChange):
    record: str
    field_name: str

    def describe(self) -> str:
        return f"field {self.record}.{self.field_name} removed"


@dataclass(frozen=True)
class SetAdded(SchemaChange):
    set_name: str

    def describe(self) -> str:
        return f"set type {self.set_name} added"


@dataclass(frozen=True)
class SetRemoved(SchemaChange):
    set_name: str

    def describe(self) -> str:
        return f"set type {self.set_name} removed"


# -- behavioural changes -----------------------------------------------------


@dataclass(frozen=True)
class SetOrderChanged(SchemaChange):
    """The member ordering of a set changed (Section 3.2's order
    dependence makes this change dangerous for unconverted programs)."""

    set_name: str
    old_keys: tuple[str, ...]
    new_keys: tuple[str, ...]

    def describe(self) -> str:
        return (f"set {self.set_name} order changed from "
                f"{list(self.old_keys)} to {list(self.new_keys)}")


@dataclass(frozen=True)
class MembershipChanged(SchemaChange):
    """Insertion/retention class changed (AUTOMATIC/MANUAL,
    MANDATORY/OPTIONAL -- the Section 3.1 existence machinery)."""

    set_name: str
    old_insertion: Insertion
    new_insertion: Insertion
    old_retention: Retention
    new_retention: Retention

    def describe(self) -> str:
        return (f"set {self.set_name} membership changed "
                f"{self.old_insertion.value}/{self.old_retention.value} -> "
                f"{self.new_insertion.value}/{self.new_retention.value}")


@dataclass(frozen=True)
class VirtualizedField(SchemaChange):
    """A stored member field became VIRTUAL through a set (or back)."""

    record: str
    field_name: str
    now_virtual: bool
    via_set: str | None = None

    def describe(self) -> str:
        direction = "virtualized" if self.now_virtual else "materialized"
        return f"field {self.record}.{self.field_name} {direction}"


# -- structural changes (declared by restructuring operators) ---------------


@dataclass(frozen=True)
class RecordInterposed(SchemaChange):
    """A new record type was interposed on a set path.

    This is exactly the Figure 4.2 -> Figure 4.4 transformation: the
    set DIV-EMP is replaced by DIV -> (DIV-DEPT) -> DEPT -> (DEPT-EMP)
    -> EMP, with DEPT formed from the member's DEPT-NAME field.
    """

    old_set: str
    new_record: str
    key_fields: tuple[str, ...]
    upper_set: str
    lower_set: str
    #: Snapshot of the source set at the time of the change, so rules
    #: do not depend on the (possibly already-evolved) source schema.
    owner: str = ""
    member: str = ""
    order_keys: tuple[str, ...] = ()

    def describe(self) -> str:
        return (f"record {self.new_record} interposed on set "
                f"{self.old_set} (now {self.upper_set} + {self.lower_set})")


@dataclass(frozen=True)
class FieldsExtracted(SchemaChange):
    """Fields of a record were split off into a new owner record
    (vertical partition): one new-record instance per source instance,
    linked 1:1 through ``link_set``, the moved fields VIRTUAL on the
    source record."""

    record: str
    fields: tuple[str, ...]
    new_record: str
    link_set: str

    def describe(self) -> str:
        return (f"fields {list(self.fields)} of {self.record} extracted "
                f"into {self.new_record} (1:1 via {self.link_set})")


@dataclass(frozen=True)
class FieldsInlined(SchemaChange):
    """Inverse of :class:`FieldsExtracted`: the extracted record's
    fields were copied back and the record removed."""

    record: str
    fields: tuple[str, ...]
    removed_record: str
    link_set: str

    def describe(self) -> str:
        return (f"record {self.removed_record} inlined back into "
                f"{self.record} (fields {list(self.fields)})")


@dataclass(frozen=True)
class RecordsMerged(SchemaChange):
    """An interposed record was collapsed back into its members
    (inverse of :class:`RecordInterposed`)."""

    removed_record: str
    upper_set: str
    lower_set: str
    new_set: str
    inherited_fields: tuple[str, ...]

    def describe(self) -> str:
        return (f"record {self.removed_record} merged away; "
                f"{self.upper_set}+{self.lower_set} collapsed to "
                f"{self.new_set}")


@dataclass(frozen=True)
class SiblingOrderChanged(SchemaChange):
    """The child set types of an owner were reordered, changing the
    hierarchical (GN preorder) sequence -- the Mehl & Wang order
    transformation (Section 2.2)."""

    owner: str
    old_order: tuple[str, ...]
    new_order: tuple[str, ...]

    def describe(self) -> str:
        return (f"sibling order of {self.owner} changed "
                f"{list(self.old_order)} -> {list(self.new_order)}")


@dataclass(frozen=True)
class HierarchyReordered(SchemaChange):
    """Parent and child were exchanged in a hierarchical structure
    (the Mehl & Wang order transformation, Section 2.2)."""

    old_parent: str
    old_child: str
    set_name: str
    new_set_name: str

    def describe(self) -> str:
        return (f"hierarchy inverted: {self.old_parent} over "
                f"{self.old_child} becomes {self.old_child} over "
                f"{self.old_parent}")


# -- constraint changes ------------------------------------------------------


@dataclass(frozen=True)
class ConstraintAdded(SchemaChange):
    """A constraint was added -- the Section 5.2 example: "the schema is
    changed to require each employee to have a department"; conversion
    preserves the *new* requirements, with a warning."""

    constraint: Constraint = field(compare=False)

    def describe(self) -> str:
        return f"constraint added: {self.constraint.describe()}"


@dataclass(frozen=True)
class ConstraintRemoved(SchemaChange):
    constraint: Constraint = field(compare=False)

    def describe(self) -> str:
        return f"constraint removed: {self.constraint.describe()}"


# ---------------------------------------------------------------------------
# Differencing
# ---------------------------------------------------------------------------


def diff_schemas(source: Schema, target: Schema) -> list[SchemaChange]:
    """Classify changes between two schemas by name matching.

    Renames and structural transformations are not inferred (two
    unrelated record types may share no names); restructuring operators
    declare those explicitly.  The result is deterministic: records,
    then fields, then sets, then constraints, each in source order.
    """
    changes: list[SchemaChange] = []

    for name in source.records:
        if name not in target.records:
            changes.append(RecordRemoved(name))
    for name in target.records:
        if name not in source.records:
            changes.append(RecordAdded(name))

    for name, source_record in source.records.items():
        target_record = target.records.get(name)
        if target_record is None:
            continue
        changes.extend(_diff_fields(name, source_record.fields,
                                    target_record.fields))

    for name, source_set in source.sets.items():
        target_set = target.sets.get(name)
        if target_set is None:
            changes.append(SetRemoved(name))
            continue
        changes.extend(_diff_set(source_set, target_set))
    for name in target.sets:
        if name not in source.sets:
            changes.append(SetAdded(name))

    source_constraints = {c.describe(): c for c in source.constraints}
    target_constraints = {c.describe(): c for c in target.constraints}
    for text, constraint in source_constraints.items():
        if text not in target_constraints:
            changes.append(ConstraintRemoved(constraint))
    for text, constraint in target_constraints.items():
        if text not in source_constraints:
            changes.append(ConstraintAdded(constraint))

    return changes


def _diff_fields(record_name: str, source_fields: tuple[Field, ...],
                 target_fields: tuple[Field, ...]) -> list[SchemaChange]:
    changes: list[SchemaChange] = []
    source_by_name = {f.name: f for f in source_fields}
    target_by_name = {f.name: f for f in target_fields}
    for name, source_field in source_by_name.items():
        target_field = target_by_name.get(name)
        if target_field is None:
            changes.append(FieldRemoved(record_name, name))
        elif source_field.is_virtual != target_field.is_virtual:
            changes.append(VirtualizedField(
                record_name, name, target_field.is_virtual,
                target_field.virtual_via,
            ))
    for name in target_by_name:
        if name not in source_by_name:
            changes.append(FieldAdded(record_name, name))
    return changes


def _diff_set(source_set: SetType, target_set: SetType) -> list[SchemaChange]:
    changes: list[SchemaChange] = []
    if (source_set.owner != target_set.owner
            or source_set.member != target_set.member):
        # Same name, different endpoints: treat as remove + add; the
        # converter will flag programs touching it for the analyst.
        changes.append(SetRemoved(source_set.name))
        changes.append(SetAdded(target_set.name))
        return changes
    if source_set.order_keys != target_set.order_keys:
        changes.append(SetOrderChanged(
            source_set.name, source_set.order_keys, target_set.order_keys,
        ))
    if (source_set.insertion != target_set.insertion
            or source_set.retention != target_set.retention):
        changes.append(MembershipChanged(
            source_set.name,
            source_set.insertion, target_set.insertion,
            source_set.retention, target_set.retention,
        ))
    return changes
