"""Declarative integrity constraints.

Section 3.1 names the inability to declare integrity constraints as
"the single most significant deficiency in the existing models": the
relational model of 1979 declares only tuple uniqueness, the
owner-coupled-set model only AUTOMATIC/MANUAL + OPTIONAL/MANDATORY
existence, and numeric participation limits ("a course may not be
offered more than twice in a school year") can live only in program
logic.  The paper argues conversion becomes tractable when constraints
are "centralized, explicitly, as part of the data model" -- so this
module provides exactly that: a small constraint algebra that any of the
three data models can enforce, and that the conversion analyzer reads.

Constraints check themselves against a :class:`DatabaseView`, a minimal
protocol implemented by the network, relational, and hierarchical
engines, so one constraint definition is enforceable everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.engine.storage import Record
from repro.schema.model import Schema


@runtime_checkable
class DatabaseView(Protocol):
    """What a database must expose for constraint checking."""

    schema: Schema

    def instances(self, record_name: str) -> Iterable[Record]:
        """All current instances of a record type."""
        ...

    def owner_record(self, set_name: str, member_rid: int) -> Record | None:
        """The owner of a member in a set occurrence, if connected."""
        ...

    def member_records(self, set_name: str, owner_rid: int) -> Iterable[Record]:
        """The members of one set occurrence, in set order."""
        ...

    def read_field(self, record: Record, field_name: str) -> Any:
        """A field value, resolving VIRTUAL fields through their set."""
        ...


@dataclass(frozen=True)
class Violation:
    """One detected constraint violation."""

    constraint: "Constraint"
    record_name: str
    rid: int | None
    message: str

    def __str__(self) -> str:
        return f"{self.constraint.name}: {self.message}"


class Constraint:
    """Base class: named, schema-validatable, database-checkable."""

    name: str

    def validate_against(self, schema: Schema) -> None:
        """Raise SchemaError if this constraint references unknown names."""
        raise NotImplementedError

    def check(self, view: DatabaseView) -> list[Violation]:
        """Return all current violations in the database."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable statement of the rule."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True, repr=False)
class UniqueKey(Constraint):
    """No two instances of ``record`` share values for ``fields``.

    The one constraint the 1979 relational model could declare
    ("tuple uniqueness by means of key declarations", Section 3.1).
    Rows with a None in any key field are exempt, matching the usual
    key-on-non-null reading.
    """

    name: str
    record: str
    fields: tuple[str, ...]

    def validate_against(self, schema: Schema) -> None:
        record = schema.record(self.record)
        for field_name in self.fields:
            record.field(field_name)

    def check(self, view: DatabaseView) -> list[Violation]:
        seen: dict[tuple, int] = {}
        violations: list[Violation] = []
        for record in view.instances(self.record):
            key = tuple(view.read_field(record, f) for f in self.fields)
            if any(part is None for part in key):
                continue
            if key in seen:
                violations.append(Violation(
                    self, self.record, record.rid,
                    f"duplicate key {key!r} in {self.record} "
                    f"(rids {seen[key]} and {record.rid})",
                ))
            else:
                seen[key] = record.rid
        return violations

    def describe(self) -> str:
        return f"UNIQUE ({', '.join(self.fields)}) IN {self.record}"


@dataclass(frozen=True, repr=False)
class NotNull(Constraint):
    """``field`` of ``record`` may not be null.

    Section 3.1: "CNO and S can not have null values".
    """

    name: str
    record: str
    field: str

    def validate_against(self, schema: Schema) -> None:
        schema.record(self.record).field(self.field)

    def check(self, view: DatabaseView) -> list[Violation]:
        violations = []
        for record in view.instances(self.record):
            if view.read_field(record, self.field) is None:
                violations.append(Violation(
                    self, self.record, record.rid,
                    f"{self.record}.{self.field} is null (rid {record.rid})",
                ))
        return violations

    def describe(self) -> str:
        return f"NOT NULL {self.field} IN {self.record}"


@dataclass(frozen=True, repr=False)
class ExistenceConstraint(Constraint):
    """Every instance of the member record type must be connected to an
    owner through ``set_name``.

    This is the declarative form of Section 3.1's existence rule: "a
    course-offering instance cannot exist unless the course and semester
    instances it references do".  In CODASYL terms it is what
    AUTOMATIC + MANDATORY membership approximates.
    """

    name: str
    set_name: str

    def validate_against(self, schema: Schema) -> None:
        set_type = schema.set_type(self.set_name)
        if set_type.system_owned:
            from repro.errors import SchemaError

            raise SchemaError(
                f"constraint {self.name}: EXISTENCE over a SYSTEM set "
                "is vacuous"
            )

    def check(self, view: DatabaseView) -> list[Violation]:
        set_type = view.schema.set_type(self.set_name)
        violations = []
        for record in view.instances(set_type.member):
            if view.owner_record(self.set_name, record.rid) is None:
                violations.append(Violation(
                    self, set_type.member, record.rid,
                    f"{set_type.member} rid {record.rid} has no owner "
                    f"in set {self.set_name}",
                ))
        return violations

    def describe(self) -> str:
        return f"EXISTENCE OF MEMBER IN {self.set_name}"


@dataclass(frozen=True, repr=False)
class CardinalityLimit(Constraint):
    """At most ``limit`` members per owner occurrence of ``set_name``,
    optionally counted within groups of equal ``per_fields`` values.

    The paper's example: "a course may not be offered more than twice
    in a school year" -- with YEAR available on the member (possibly as
    a VIRTUAL field through the semester set), this is
    ``LIMIT <offering-set> TO 2 PER (YEAR)``.  Section 3.1 notes that
    "in all existing models, a constraint like this could only be
    maintained by user programs".
    """

    name: str
    set_name: str
    limit: int
    per_fields: tuple[str, ...] = ()

    def validate_against(self, schema: Schema) -> None:
        set_type = schema.set_type(self.set_name)
        member = schema.record(set_type.member)
        for field_name in self.per_fields:
            member.field(field_name)

    def check(self, view: DatabaseView) -> list[Violation]:
        set_type = view.schema.set_type(self.set_name)
        violations: list[Violation] = []
        if set_type.system_owned:
            owner_rids: list[int | None] = [None]
        else:
            owner_rids = [r.rid for r in view.instances(set_type.owner)]
        for owner_rid in owner_rids:
            groups: dict[tuple, int] = {}
            members = view.member_records(self.set_name, owner_rid or 0) \
                if owner_rid is not None \
                else view.instances(set_type.member)
            for member in members:
                group = tuple(
                    view.read_field(member, f) for f in self.per_fields
                )
                groups[group] = groups.get(group, 0) + 1
            for group, count in groups.items():
                if count > self.limit:
                    suffix = f" per {group!r}" if self.per_fields else ""
                    violations.append(Violation(
                        self, set_type.member, None,
                        f"set {self.set_name} owner {owner_rid} has "
                        f"{count} members{suffix}, limit {self.limit}",
                    ))
        return violations

    def describe(self) -> str:
        per = f" PER ({', '.join(self.per_fields)})" if self.per_fields else ""
        return f"LIMIT {self.set_name} TO {self.limit}{per}"


@dataclass(frozen=True, repr=False)
class DomainConstraint(Constraint):
    """``field`` of ``record`` must lie in [low, high] and/or in an
    explicit value list.  Null passes (combine with NotNull to forbid).
    """

    name: str
    record: str
    field: str
    low: Any = None
    high: Any = None
    allowed: tuple[Any, ...] | None = None

    def validate_against(self, schema: Schema) -> None:
        schema.record(self.record).field(self.field)

    def check(self, view: DatabaseView) -> list[Violation]:
        violations = []
        for record in view.instances(self.record):
            value = view.read_field(record, self.field)
            if value is None:
                continue
            bad = False
            if self.allowed is not None and value not in self.allowed:
                bad = True
            if self.low is not None and value < self.low:
                bad = True
            if self.high is not None and value > self.high:
                bad = True
            if bad:
                violations.append(Violation(
                    self, self.record, record.rid,
                    f"{self.record}.{self.field} = {value!r} out of domain "
                    f"(rid {record.rid})",
                ))
        return violations

    def describe(self) -> str:
        parts = [f"DOMAIN {self.field} IN {self.record}"]
        if self.low is not None or self.high is not None:
            parts.append(f"FROM {self.low!r} TO {self.high!r}")
        if self.allowed is not None:
            parts.append(f"IN {list(self.allowed)!r}")
        return " ".join(parts)


def check_all(view: DatabaseView) -> list[Violation]:
    """Check every constraint declared in the view's schema."""
    violations: list[Violation] = []
    for constraint in view.schema.constraints:
        violations.extend(constraint.check(view))
    return violations
