"""COBOL-style PIC field types.

The Figure 4.3 DDL declares fields as ``DIV-NAME PIC X(20)`` or
``AGE PIC X(2)``.  We support the two 1979 staples:

* ``X(n)`` -- alphanumeric, at most n characters;
* ``9(n)`` -- unsigned numeric, at most n digits.

A :class:`FieldType` validates and coerces host values, which is how the
engines catch programs writing data the schema does not allow.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import SchemaError


_PIC_RE = re.compile(r"^(X|9)\((\d+)\)$")


@dataclass(frozen=True)
class FieldType:
    """A parsed PIC clause: kind ``'X'`` or ``'9'`` plus a width."""

    kind: str
    width: int

    @property
    def pic(self) -> str:
        """The PIC string this type was declared with."""
        return f"{self.kind}({self.width})"

    @property
    def is_numeric(self) -> bool:
        return self.kind == "9"

    def validate(self, value: Any) -> Any:
        """Coerce ``value`` to this type, raising SchemaError if invalid.

        ``None`` always passes (nullability is a constraint, not a
        type property -- Section 3.1's "null instructor").
        """
        if value is None:
            return None
        if self.kind == "9":
            if isinstance(value, bool) or not isinstance(value, (int, str)):
                raise SchemaError(
                    f"PIC {self.pic} field cannot hold {value!r}"
                )
            try:
                number = int(value)
            except ValueError:
                raise SchemaError(
                    f"PIC {self.pic} field cannot hold {value!r}"
                ) from None
            if number < 0:
                raise SchemaError(f"PIC {self.pic} field cannot be negative")
            if len(str(number)) > self.width:
                raise SchemaError(
                    f"PIC {self.pic} field overflows with {number}"
                )
            return number
        # Alphanumeric: accept anything with a string form, bound length.
        text = value if isinstance(value, str) else str(value)
        if len(text) > self.width:
            raise SchemaError(
                f"PIC {self.pic} field overflows with {text!r} "
                f"({len(text)} chars)"
            )
        return text


def parse_pic(pic: str) -> FieldType:
    """Parse a PIC clause like ``X(20)`` or ``9(4)``."""
    match = _PIC_RE.match(pic.strip().upper())
    if match is None:
        raise SchemaError(f"unsupported PIC clause: {pic!r}")
    kind, width_text = match.groups()
    width = int(width_text)
    if width == 0:
        raise SchemaError(f"PIC width must be positive: {pic!r}")
    return FieldType(kind, width)
