"""Records, fields, owner-coupled sets, and the Schema container.

This is the paper's "representation free" structure description
(Section 3.1): record types with typed fields, and owner-coupled set
types relating them.  Each data model interprets the same description:

* network   -- records and sets literally (CODASYL);
* relational -- one relation per record type, one foreign-key field per
  set membership (the set name doubles as the implicit FK column);
* hierarchical -- the forest induced by non-SYSTEM sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, TYPE_CHECKING

from repro.errors import (
    SchemaError,
    UnknownField,
    UnknownRecordType,
    UnknownSetType,
)
from repro.schema.types import FieldType, parse_pic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schema.constraints import Constraint

#: Pseudo owner name for SYSTEM-owned (singular) sets, the entry points
#: of a CODASYL database (Figure 4.3: ``OWNER IS SYSTEM``).
SYSTEM = "SYSTEM"


class Insertion(enum.Enum):
    """CODASYL set insertion class (Section 3.1)."""

    AUTOMATIC = "AUTOMATIC"
    MANUAL = "MANUAL"


class Retention(enum.Enum):
    """CODASYL set retention class (Section 3.1)."""

    MANDATORY = "MANDATORY"
    OPTIONAL = "OPTIONAL"


@dataclass(frozen=True)
class Field:
    """One field of a record type.

    A *virtual* field (Figure 4.3: ``DIV-NAME VIRTUAL VIA DIV-EMP USING
    DIV-NAME``) is not stored in the member record; reads follow the
    named set to the owner and return the named owner field.
    """

    name: str
    type: FieldType
    virtual_via: str | None = None
    virtual_using: str | None = None

    @property
    def is_virtual(self) -> bool:
        return self.virtual_via is not None

    def __post_init__(self) -> None:
        if (self.virtual_via is None) != (self.virtual_using is None):
            raise SchemaError(
                f"field {self.name}: VIRTUAL requires both VIA and USING"
            )


@dataclass(frozen=True)
class RecordType:
    """A record type: ordered fields plus an optional CALC key.

    ``calc_keys`` names the fields used for direct (hashed) location --
    CODASYL ``LOCATION MODE IS CALC`` -- which the optimizer exploits
    when selecting access paths (Section 5.4).
    """

    name: str
    fields: tuple[Field, ...]
    calc_keys: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for fld in self.fields:
            if fld.name in seen:
                raise SchemaError(
                    f"record {self.name}: duplicate field {fld.name}"
                )
            seen.add(fld.name)
        for key in self.calc_keys:
            if key not in seen:
                raise SchemaError(
                    f"record {self.name}: CALC key {key} is not a field"
                )

    def field_names(self) -> list[str]:
        return [fld.name for fld in self.fields]

    def stored_field_names(self) -> list[str]:
        """Field names excluding virtual fields."""
        return [fld.name for fld in self.fields if not fld.is_virtual]

    def field(self, name: str) -> Field:
        for fld in self.fields:
            if fld.name == name:
                return fld
        raise UnknownField(f"record {self.name} has no field {name}")

    def has_field(self, name: str) -> bool:
        return any(fld.name == name for fld in self.fields)

    def with_fields(self, fields: Iterable[Field]) -> "RecordType":
        return replace(self, fields=tuple(fields))

    def validate_values(self, values: dict[str, Any]) -> dict[str, Any]:
        """Type-check stored values; unknown names raise, virtuals raise."""
        out: dict[str, Any] = {}
        for name, value in values.items():
            fld = self.field(name)
            if fld.is_virtual:
                raise SchemaError(
                    f"record {self.name}: field {name} is VIRTUAL and "
                    "cannot be stored"
                )
            out[name] = fld.type.validate(value)
        return out


@dataclass(frozen=True)
class SetType:
    """An owner-coupled set type (Section 4.2's DDL semantics).

    One owner record type (or SYSTEM), one member record type, member
    ordering by ``order_keys`` (insertion order when empty), and the
    CODASYL insertion/retention classes.  ``allow_duplicates`` is False
    per the Maryland DDL ("Duplicates are not allowed within a set
    occurrence"): duplicate means equal order-key values.
    """

    name: str
    owner: str
    member: str
    order_keys: tuple[str, ...] = ()
    insertion: Insertion = Insertion.AUTOMATIC
    retention: Retention = Retention.OPTIONAL
    allow_duplicates: bool = True

    @property
    def system_owned(self) -> bool:
        return self.owner == SYSTEM

    def __post_init__(self) -> None:
        if self.owner == self.member:
            raise SchemaError(
                f"set {self.name}: owner and member must differ "
                "(recursive sets are out of scope)"
            )


@dataclass
class Schema:
    """A named collection of record types, set types, and constraints."""

    name: str
    records: dict[str, RecordType] = field(default_factory=dict)
    sets: dict[str, SetType] = field(default_factory=dict)
    constraints: list["Constraint"] = field(default_factory=list)

    # -- construction -------------------------------------------------

    def add_record(self, record: RecordType) -> RecordType:
        if record.name in self.records:
            raise SchemaError(f"duplicate record type {record.name}")
        self.records[record.name] = record
        return record

    def add_set(self, set_type: SetType) -> SetType:
        if set_type.name in self.sets:
            raise SchemaError(f"duplicate set type {set_type.name}")
        self.sets[set_type.name] = set_type
        return set_type

    def add_constraint(self, constraint: "Constraint") -> "Constraint":
        self.constraints.append(constraint)
        return constraint

    def define_record(self, name: str, fields: dict[str, str],
                      calc_keys: Iterable[str] = ()) -> RecordType:
        """Shorthand: field name -> PIC string."""
        record = RecordType(
            name,
            tuple(Field(fname, parse_pic(pic)) for fname, pic in fields.items()),
            tuple(calc_keys),
        )
        return self.add_record(record)

    def define_set(self, name: str, owner: str, member: str,
                   order_keys: Iterable[str] = (),
                   insertion: Insertion = Insertion.AUTOMATIC,
                   retention: Retention = Retention.OPTIONAL,
                   allow_duplicates: bool = True) -> SetType:
        """Shorthand for building a set type with validation."""
        set_type = SetType(
            name, owner, member, tuple(order_keys),
            insertion, retention, allow_duplicates,
        )
        self.validate_set(set_type)
        return self.add_set(set_type)

    # -- lookup -------------------------------------------------------

    def record(self, name: str) -> RecordType:
        try:
            return self.records[name]
        except KeyError:
            raise UnknownRecordType(
                f"schema {self.name} has no record type {name}"
            ) from None

    def set_type(self, name: str) -> SetType:
        try:
            return self.sets[name]
        except KeyError:
            raise UnknownSetType(
                f"schema {self.name} has no set type {name}"
            ) from None

    def sets_owned_by(self, record_name: str) -> list[SetType]:
        return [s for s in self.sets.values() if s.owner == record_name]

    def sets_with_member(self, record_name: str) -> list[SetType]:
        return [s for s in self.sets.values() if s.member == record_name]

    def system_sets(self) -> list[SetType]:
        return [s for s in self.sets.values() if s.system_owned]

    def sets_between(self, owner: str, member: str) -> list[SetType]:
        return [
            s for s in self.sets.values()
            if s.owner == owner and s.member == member
        ]

    # -- validation ---------------------------------------------------

    def validate_set(self, set_type: SetType) -> None:
        """Check a set type's references against this schema."""
        if not set_type.system_owned:
            owner = self.record(set_type.owner)
            del owner
        member = self.record(set_type.member)
        for key in set_type.order_keys:
            member.field(key)

    def validate(self) -> None:
        """Check cross-references of the whole schema."""
        for set_type in self.sets.values():
            self.validate_set(set_type)
        for record in self.records.values():
            for fld in record.fields:
                if not fld.is_virtual:
                    continue
                via = self.set_type(fld.virtual_via)
                if via.member != record.name:
                    raise SchemaError(
                        f"record {record.name}: virtual field {fld.name} "
                        f"VIA {via.name}, but {record.name} is not its member"
                    )
                if via.system_owned:
                    raise SchemaError(
                        f"record {record.name}: virtual field {fld.name} "
                        f"cannot be VIA a SYSTEM set"
                    )
                owner = self.record(via.owner)
                owner.field(fld.virtual_using)
        for constraint in self.constraints:
            constraint.validate_against(self)

    # -- utility ------------------------------------------------------

    def copy(self, name: str | None = None) -> "Schema":
        """A structural copy (record/set objects are immutable, shared)."""
        return Schema(
            name if name is not None else self.name,
            dict(self.records),
            dict(self.sets),
            list(self.constraints),
        )

    def is_hierarchical(self) -> bool:
        """True when non-SYSTEM sets form a forest (each record has at
        most one non-SYSTEM set membership and there are no cycles)."""
        parent: dict[str, str] = {}
        for set_type in self.sets.values():
            if set_type.system_owned:
                continue
            if set_type.member in parent:
                return False
            parent[set_type.member] = set_type.owner
        for start in parent:
            seen = {start}
            node = parent.get(start)
            while node is not None:
                if node in seen:
                    return False
                seen.add(node)
                node = parent.get(node)
        return True
