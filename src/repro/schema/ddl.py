"""Parser and formatter for the Figure 4.3 DDL syntax.

The paper's Maryland project (Section 4.2) defines a DDL "which would be
familiar while facilitating conversion"; Figure 4.3 gives its concrete
syntax.  We parse that syntax exactly, plus three small extensions the
rest of the paper needs:

* ``LOCATION MODE IS CALC USING (F1, F2).`` on records (CODASYL direct
  access, needed by the optimizer's access-path selection);
* ``INSERTION IS ... / RETENTION IS ... / DUPLICATES ARE ...`` on sets
  (the Section 3.1 membership classes);
* a ``CONSTRAINT SECTION`` declaring the Section 3.1 constraint kinds
  that 1979 models could not express.

Example (Figure 4.3 verbatim)::

    SCHEMA NAME IS COMPANY-NAME.
    RECORD SECTION.
      RECORD NAME IS DIV.
        FIELDS ARE.
          DIV-NAME PIC X(20).
          DIV-LOC PIC X(10).
      END RECORD.
      ...
    END RECORD SECTION.
    SET SECTION.
      SET NAME IS ALL-DIV.
        OWNER IS SYSTEM.
        MEMBER IS DIV.
        SET KEYS ARE (DIV-NAME).
      END SET.
      ...
    END SET SECTION.
    END SCHEMA.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import DDLSyntaxError
from repro.schema.constraints import (
    CardinalityLimit,
    Constraint,
    DomainConstraint,
    ExistenceConstraint,
    NotNull,
    UniqueKey,
)
from repro.schema.model import (
    Field,
    Insertion,
    RecordType,
    Retention,
    Schema,
    SetType,
)
from repro.schema.types import parse_pic


class _Token:
    __slots__ = ("text", "line")

    def __init__(self, text: str, line: int):
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.text!r}@{self.line})"


_TOKEN_RE = re.compile(
    r"""
    '(?:[^']*)'            # quoted literal
    | [A-Za-z0-9][A-Za-z0-9\-#]*(?:\(\d+\))?   # word, maybe PIC suffix
    | [().,]               # punctuation
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("*>")[0]  # allow trailing comments
        pos = 0
        while pos < len(stripped):
            ch = stripped[pos]
            if ch.isspace():
                pos += 1
                continue
            match = _TOKEN_RE.match(stripped, pos)
            if match is None:
                raise DDLSyntaxError(
                    f"unexpected character {ch!r}", line=line_no
                )
            token_text = match.group(0)
            # A word glued to a PIC suffix like X(20) stays one token,
            # but a trailing period belongs to the statement terminator.
            tokens.append(_Token(token_text, line_no))
            pos = match.end()
            if pos < len(stripped) and stripped[pos] == ".":
                # Only treat as terminator when followed by space/EOL.
                tokens.append(_Token(".", line_no))
                pos += 1
    return tokens


class _Parser:
    """Recursive-descent parser over the statement-period grammar."""

    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token primitives ----------------------------------------------

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last_line = self._tokens[-1].line if self._tokens else None
            raise DDLSyntaxError("unexpected end of DDL text",
                                 line=last_line)
        self._pos += 1
        return token

    def _expect(self, *expected: str) -> _Token:
        token = self._next()
        if token.text.upper() not in expected:
            raise DDLSyntaxError(
                f"expected {' or '.join(expected)}, got {token.text!r}",
                line=token.line,
            )
        return token

    def _expect_word(self) -> str:
        token = self._next()
        if token.text in "().,":
            raise DDLSyntaxError(
                f"expected a name, got {token.text!r}", line=token.line
            )
        return token.text.upper()

    def _at(self, *words: str) -> bool:
        token = self._peek()
        return token is not None and token.text.upper() == words[0] and \
            self._lookahead_matches(words)

    def _lookahead_matches(self, words: tuple[str, ...]) -> bool:
        for offset, word in enumerate(words):
            index = self._pos + offset
            if index >= len(self._tokens):
                return False
            if self._tokens[index].text.upper() != word:
                return False
        return True

    def _name_list(self) -> tuple[str, ...]:
        """Parse ``(A, B, C)``."""
        self._expect("(")
        names = [self._expect_word()]
        while self._peek() is not None and self._peek().text == ",":
            self._next()
            names.append(self._expect_word())
        self._expect(")")
        return tuple(names)

    def _value(self) -> Any:
        """A literal: quoted string or integer."""
        token = self._next()
        text = token.text
        if text.startswith("'") and text.endswith("'"):
            return text[1:-1]
        try:
            return int(text)
        except ValueError:
            raise DDLSyntaxError(
                f"expected a literal, got {text!r}", line=token.line
            ) from None

    def _value_list(self) -> tuple[Any, ...]:
        self._expect("(")
        values = [self._value()]
        while self._peek() is not None and self._peek().text == ",":
            self._next()
            values.append(self._value())
        self._expect(")")
        return tuple(values)

    # -- grammar ---------------------------------------------------------

    def parse_schema(self) -> Schema:
        self._expect("SCHEMA")
        self._expect("NAME")
        self._expect("IS")
        schema = Schema(self._expect_word())
        self._expect(".")
        while not self._at("END", "SCHEMA"):
            if self._at("RECORD", "SECTION"):
                self._record_section(schema)
            elif self._at("SET", "SECTION"):
                self._set_section(schema)
            elif self._at("CONSTRAINT", "SECTION"):
                self._constraint_section(schema)
            else:
                token = self._peek()
                raise DDLSyntaxError(
                    f"expected a section, got {token.text!r}",
                    line=token.line,
                )
        self._expect("END")
        self._expect("SCHEMA")
        self._expect(".")
        schema.validate()
        return schema

    def _record_section(self, schema: Schema) -> None:
        self._expect("RECORD")
        self._expect("SECTION")
        self._expect(".")
        while not self._at("END", "RECORD", "SECTION"):
            schema.add_record(self._record())
        self._expect("END")
        self._expect("RECORD")
        self._expect("SECTION")
        self._expect(".")

    def _record(self) -> RecordType:
        self._expect("RECORD")
        self._expect("NAME")
        self._expect("IS")
        name = self._expect_word()
        self._expect(".")
        calc_keys: tuple[str, ...] = ()
        if self._at("LOCATION"):
            self._expect("LOCATION")
            self._expect("MODE")
            self._expect("IS")
            self._expect("CALC")
            self._expect("USING")
            calc_keys = self._name_list()
            self._expect(".")
        self._expect("FIELDS")
        self._expect("ARE")
        self._expect(".")
        fields: list[Field] = []
        while not self._at("END", "RECORD"):
            fields.append(self._field())
        self._expect("END")
        self._expect("RECORD")
        self._expect(".")
        return RecordType(name, tuple(fields), calc_keys)

    def _field(self) -> Field:
        name = self._expect_word()
        token = self._next()
        keyword = token.text.upper()
        if keyword == "PIC":
            pic = self._next().text
            self._expect(".")
            return Field(name, parse_pic(pic))
        if keyword == "VIRTUAL":
            self._expect("VIA")
            via = self._expect_word()
            self._expect("USING")
            using = self._expect_word()
            self._expect(".")
            # The virtual field's type is resolved from the owner at
            # schema validation; declare a wide alphanumeric here and
            # let validation confirm the reference.
            return Field(name, parse_pic("X(255)"),
                         virtual_via=via, virtual_using=using)
        raise DDLSyntaxError(
            f"expected PIC or VIRTUAL after field {name}, got {keyword!r}",
            line=token.line,
        )

    def _set_section(self, schema: Schema) -> None:
        self._expect("SET")
        self._expect("SECTION")
        self._expect(".")
        while not self._at("END", "SET", "SECTION"):
            set_type = self._set()
            schema.validate_set(set_type)
            schema.add_set(set_type)
        self._expect("END")
        self._expect("SET")
        self._expect("SECTION")
        self._expect(".")

    def _set(self) -> SetType:
        self._expect("SET")
        self._expect("NAME")
        self._expect("IS")
        name = self._expect_word()
        self._expect(".")
        self._expect("OWNER")
        self._expect("IS")
        owner = self._expect_word()
        self._expect(".")
        self._expect("MEMBER")
        self._expect("IS")
        member = self._expect_word()
        self._expect(".")
        order_keys: tuple[str, ...] = ()
        insertion = Insertion.AUTOMATIC
        retention = Retention.OPTIONAL
        allow_duplicates = True
        while not self._at("END", "SET"):
            if self._at("SET", "KEYS"):
                self._expect("SET")
                self._expect("KEYS")
                self._expect("ARE")
                order_keys = self._name_list()
                self._expect(".")
                # Figure 4.3's "SET KEYS" implies no duplicate keys
                # within an occurrence ("Duplicates are not allowed
                # within a set occurrence", Section 4.2).
                allow_duplicates = False
            elif self._at("INSERTION"):
                self._expect("INSERTION")
                self._expect("IS")
                word = self._expect("AUTOMATIC", "MANUAL")
                insertion = Insertion[word.text.upper()]
                self._expect(".")
            elif self._at("RETENTION"):
                self._expect("RETENTION")
                self._expect("IS")
                word = self._expect("MANDATORY", "OPTIONAL")
                retention = Retention[word.text.upper()]
                self._expect(".")
            elif self._at("DUPLICATES"):
                self._expect("DUPLICATES")
                self._expect("ARE")
                word = self._expect("ALLOWED", "NOT")
                if word.text.upper() == "NOT":
                    self._expect("ALLOWED")
                    allow_duplicates = False
                else:
                    allow_duplicates = True
                self._expect(".")
            else:
                token = self._peek()
                raise DDLSyntaxError(
                    f"unexpected clause {token.text!r} in SET {name}",
                    line=token.line,
                )
        self._expect("END")
        self._expect("SET")
        self._expect(".")
        return SetType(name, owner, member, order_keys,
                       insertion, retention, allow_duplicates)

    def _constraint_section(self, schema: Schema) -> None:
        self._expect("CONSTRAINT")
        self._expect("SECTION")
        self._expect(".")
        while not self._at("END", "CONSTRAINT", "SECTION"):
            schema.add_constraint(self._constraint())
        self._expect("END")
        self._expect("CONSTRAINT")
        self._expect("SECTION")
        self._expect(".")

    def _constraint(self) -> Constraint:
        self._expect("CONSTRAINT")
        self._expect("NAME")
        self._expect("IS")
        name = self._expect_word()
        self._expect(".")
        token = self._next()
        keyword = token.text.upper()
        constraint: Constraint
        if keyword == "UNIQUE":
            fields = self._name_list()
            self._expect("IN")
            record = self._expect_word()
            constraint = UniqueKey(name, record, fields)
        elif keyword == "NOT":
            self._expect("NULL")
            field_name = self._expect_word()
            self._expect("IN")
            record = self._expect_word()
            constraint = NotNull(name, record, field_name)
        elif keyword == "EXISTENCE":
            self._expect("OF")
            self._expect("MEMBER")
            self._expect("IN")
            set_name = self._expect_word()
            constraint = ExistenceConstraint(name, set_name)
        elif keyword == "LIMIT":
            set_name = self._expect_word()
            self._expect("TO")
            limit_token = self._next()
            try:
                limit = int(limit_token.text)
            except ValueError:
                raise DDLSyntaxError(
                    f"LIMIT needs a number, got {limit_token.text!r}",
                    line=limit_token.line,
                ) from None
            per: tuple[str, ...] = ()
            if self._at("PER"):
                self._expect("PER")
                per = self._name_list()
            constraint = CardinalityLimit(name, set_name, limit, per)
        elif keyword == "DOMAIN":
            field_name = self._expect_word()
            self._expect("IN")
            record = self._expect_word()
            low = high = None
            allowed = None
            if self._at("FROM"):
                self._expect("FROM")
                low = self._value()
                self._expect("TO")
                high = self._value()
            elif self._at("AMONG"):
                self._expect("AMONG")
                allowed = self._value_list()
            constraint = DomainConstraint(name, record, field_name,
                                          low, high, allowed)
        else:
            raise DDLSyntaxError(
                f"unknown constraint kind {keyword!r}", line=token.line
            )
        self._expect(".")
        self._expect("END")
        self._expect("CONSTRAINT")
        self._expect(".")
        return constraint


def parse_ddl(text: str) -> Schema:
    """Parse DDL text (Figure 4.3 syntax) into a validated Schema."""
    parser = _Parser(_tokenize(text))
    schema = parser.parse_schema()
    trailing = parser._peek()
    if trailing is not None:
        raise DDLSyntaxError(
            f"text after END SCHEMA: {trailing.text!r}", line=trailing.line
        )
    return schema


def format_ddl(schema: Schema) -> str:
    """Render a Schema back into DDL text (parse/format round-trips)."""
    lines = [f"SCHEMA NAME IS {schema.name}."]
    lines.append("RECORD SECTION.")
    for record in schema.records.values():
        lines.append(f"  RECORD NAME IS {record.name}.")
        if record.calc_keys:
            keys = ", ".join(record.calc_keys)
            lines.append(f"    LOCATION MODE IS CALC USING ({keys}).")
        lines.append("    FIELDS ARE.")
        for fld in record.fields:
            if fld.is_virtual:
                lines.append(
                    f"      {fld.name} VIRTUAL VIA {fld.virtual_via} "
                    f"USING {fld.virtual_using}."
                )
            else:
                lines.append(f"      {fld.name} PIC {fld.type.pic}.")
        lines.append("  END RECORD.")
    lines.append("END RECORD SECTION.")
    lines.append("SET SECTION.")
    for set_type in schema.sets.values():
        lines.append(f"  SET NAME IS {set_type.name}.")
        lines.append(f"    OWNER IS {set_type.owner}.")
        lines.append(f"    MEMBER IS {set_type.member}.")
        if set_type.order_keys:
            keys = ", ".join(set_type.order_keys)
            lines.append(f"    SET KEYS ARE ({keys}).")
        lines.append(f"    INSERTION IS {set_type.insertion.value}.")
        lines.append(f"    RETENTION IS {set_type.retention.value}.")
        if set_type.allow_duplicates:
            lines.append("    DUPLICATES ARE ALLOWED.")
        else:
            lines.append("    DUPLICATES ARE NOT ALLOWED.")
        lines.append("  END SET.")
    lines.append("END SET SECTION.")
    if schema.constraints:
        lines.append("CONSTRAINT SECTION.")
        for constraint in schema.constraints:
            lines.append(f"  CONSTRAINT NAME IS {constraint.name}.")
            lines.append(f"    {_format_constraint(constraint)}.")
            lines.append("  END CONSTRAINT.")
        lines.append("END CONSTRAINT SECTION.")
    lines.append("END SCHEMA.")
    return "\n".join(lines) + "\n"


def _format_constraint(constraint: Constraint) -> str:
    if isinstance(constraint, UniqueKey):
        return f"UNIQUE ({', '.join(constraint.fields)}) IN {constraint.record}"
    if isinstance(constraint, NotNull):
        return f"NOT NULL {constraint.field} IN {constraint.record}"
    if isinstance(constraint, ExistenceConstraint):
        return f"EXISTENCE OF MEMBER IN {constraint.set_name}"
    if isinstance(constraint, CardinalityLimit):
        text = f"LIMIT {constraint.set_name} TO {constraint.limit}"
        if constraint.per_fields:
            text += f" PER ({', '.join(constraint.per_fields)})"
        return text
    if isinstance(constraint, DomainConstraint):
        text = f"DOMAIN {constraint.field} IN {constraint.record}"
        if constraint.low is not None or constraint.high is not None:
            text += f" FROM {_literal(constraint.low)} TO {_literal(constraint.high)}"
        if constraint.allowed is not None:
            values = ", ".join(_literal(v) for v in constraint.allowed)
            text += f" AMONG ({values})"
        return text
    raise TypeError(f"cannot format constraint {constraint!r}")


def _literal(value: Any) -> str:
    if isinstance(value, int):
        return str(value)
    return f"'{value}'"
