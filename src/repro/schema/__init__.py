"""Common schema model.

The paper's framework rests on "a precise description of the data
structures, integrity constraints, and permissible operations"
(Abstract).  This package provides that description:

* :mod:`repro.schema.types` -- COBOL-style PIC field types.
* :mod:`repro.schema.model` -- records, fields, owner-coupled set types,
  and the :class:`Schema` container, interpretable by all three data
  models (Section 5.1 of the paper asks for a representation "at a level
  which is high enough to be realized in either data model").
* :mod:`repro.schema.constraints` -- declarative integrity constraints,
  including the kinds Section 3.1 shows no 1979 model could declare.
* :mod:`repro.schema.ddl` -- parser for the Figure 4.3 DDL syntax.
* :mod:`repro.schema.diff` -- the schema-change taxonomy consumed by the
  Conversion Analyzer.
"""

from repro.schema.types import FieldType, parse_pic
from repro.schema.model import (
    Field,
    Insertion,
    Retention,
    RecordType,
    Schema,
    SetType,
    SYSTEM,
)
from repro.schema.constraints import (
    CardinalityLimit,
    Constraint,
    DomainConstraint,
    ExistenceConstraint,
    NotNull,
    UniqueKey,
)
from repro.schema.ddl import parse_ddl, format_ddl
from repro.schema.diff import (
    ConstraintAdded,
    ConstraintRemoved,
    FieldAdded,
    FieldRemoved,
    FieldRenamed,
    MembershipChanged,
    RecordAdded,
    RecordInterposed,
    RecordRemoved,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetAdded,
    SetOrderChanged,
    SetRemoved,
    SetRenamed,
    SiblingOrderChanged,
    VirtualizedField,
    diff_schemas,
)

__all__ = [
    "FieldType",
    "parse_pic",
    "Field",
    "Insertion",
    "Retention",
    "RecordType",
    "Schema",
    "SetType",
    "SYSTEM",
    "Constraint",
    "UniqueKey",
    "NotNull",
    "ExistenceConstraint",
    "CardinalityLimit",
    "DomainConstraint",
    "parse_ddl",
    "format_ddl",
    "SchemaChange",
    "RecordRenamed",
    "RecordAdded",
    "RecordRemoved",
    "FieldRenamed",
    "FieldAdded",
    "FieldRemoved",
    "SetRenamed",
    "SetAdded",
    "SetRemoved",
    "SetOrderChanged",
    "SiblingOrderChanged",
    "VirtualizedField",
    "MembershipChanged",
    "RecordInterposed",
    "RecordsMerged",
    "ConstraintAdded",
    "ConstraintRemoved",
    "diff_schemas",
]
