"""The host-language AST with embedded DML statements.

Design notes
------------

* Expressions are :class:`Const`, :class:`Var`, and :class:`Bin`.
  Variables live in one flat environment; successful GET-style DML
  binds database fields to variables named ``RECORD.FIELD`` (the COBOL
  record area, flattened).
* Every DML statement sets the variable ``DB-STATUS`` to the session's
  status code, so programs branch on it exactly the way Section 3.2's
  status-code-dependent programs do.
* All nodes are frozen dataclasses: the converter rewrites programs by
  building new trees, never mutating (the "abstract source program" to
  "abstract target program" mapping of Figure 4.1).
* Every node renders to a readable pseudo-COBOL text via
  :func:`render_program`, used by examples and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterator, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: Any

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Var:
    """A program variable (``RECORD.FIELD`` names come from GET)."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Bin:
    """Binary operation: arithmetic, comparison, or boolean."""

    op: str  # + - * = <> < <= > >= AND OR
    left: "Expr"
    right: "Expr"

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


Expr = Union[Const, Var, Bin]


def status_is(code: str) -> Bin:
    """Condition ``DB-STATUS = code`` -- the idiom of Section 4.1's
    "IF no such occurrence is found" template lines."""
    return Bin("=", Var("DB-STATUS"), Const(code))


def status_ok() -> Bin:
    """Condition ``DB-STATUS = '0000'``."""
    return status_is("0000")


# ---------------------------------------------------------------------------
# Statements: host language
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    var: str
    expr: Expr

    def render(self) -> str:
        return f"MOVE {self.expr.render()} TO {self.var}"


@dataclass(frozen=True)
class If:
    condition: Expr
    then: tuple["Stmt", ...]
    orelse: tuple["Stmt", ...] = ()

    def render(self) -> str:
        return f"IF {self.condition.render()} ..."


@dataclass(frozen=True)
class While:
    condition: Expr
    body: tuple["Stmt", ...]

    def render(self) -> str:
        return f"PERFORM UNTIL NOT {self.condition.render()} ..."


@dataclass(frozen=True)
class ForEachRow:
    """Iterate the rows bound to ``rows_var`` (a RelQuery result),
    binding each row's columns as ``<row_var>.<COLUMN>`` variables."""

    row_var: str
    rows_var: str
    body: tuple["Stmt", ...]

    def render(self) -> str:
        return f"FOR EACH {self.row_var} IN {self.rows_var} ..."


@dataclass(frozen=True)
class BindFirstRow:
    """Bind the first row of a query result (held in ``rows_var``) to
    ``<row_var>.<COLUMN>`` variables; DB-STATUS becomes '0000' when a
    row exists, '0326' otherwise.  The relational idiom for the
    navigational 'locate one instance'."""

    row_var: str
    rows_var: str

    def render(self) -> str:
        return f"BIND FIRST {self.row_var} FROM {self.rows_var}"


@dataclass(frozen=True)
class Call:
    """Invoke a named procedure of the program (the paper's
    "sub-program parameter passing structure"); arguments bind to the
    procedure's parameter names for the duration of the call."""

    procedure: str
    arguments: tuple[Expr, ...] = ()

    def render(self) -> str:
        rendered = ", ".join(a.render() for a in self.arguments)
        return f"PERFORM {self.procedure}({rendered})"


@dataclass(frozen=True)
class ReadTerminal:
    """Read one line from the terminal into a variable."""

    var: str
    prompt: str | None = None

    def render(self) -> str:
        prompt = f" PROMPT '{self.prompt}'" if self.prompt else ""
        return f"ACCEPT {self.var}{prompt}"


@dataclass(frozen=True)
class WriteTerminal:
    """Write expressions to the terminal (space-joined, one line)."""

    exprs: tuple[Expr, ...]

    def render(self) -> str:
        return "DISPLAY " + ", ".join(e.render() for e in self.exprs)


@dataclass(frozen=True)
class ReadFile:
    """Read the next line of a named non-database file into a var."""

    file_name: str
    var: str

    def render(self) -> str:
        return f"READ {self.file_name} INTO {self.var}"


@dataclass(frozen=True)
class WriteFile:
    """Append a line (space-joined expressions) to a named file."""

    file_name: str
    exprs: tuple[Expr, ...]

    def render(self) -> str:
        rendered = ", ".join(e.render() for e in self.exprs)
        return f"WRITE {rendered} TO {self.file_name}"


# ---------------------------------------------------------------------------
# Statements: network (CODASYL) DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetFindAny:
    """FIND ANY record USING field values."""

    record: str
    using: tuple[tuple[str, Expr], ...] = ()

    def render(self) -> str:
        if not self.using:
            return f"FIND ANY {self.record}"
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.using)
        return f"FIND ANY {self.record} USING {parts}"


@dataclass(frozen=True)
class NetFindFirst:
    record: str
    set_name: str

    def render(self) -> str:
        return f"FIND FIRST {self.record} WITHIN {self.set_name}"


@dataclass(frozen=True)
class NetFindNext:
    record: str
    set_name: str

    def render(self) -> str:
        return f"FIND NEXT {self.record} WITHIN {self.set_name}"


@dataclass(frozen=True)
class NetFindNextUsing:
    """FIND NEXT record WITHIN set USING fields (values are exprs)."""

    record: str
    set_name: str
    using: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.using)
        return f"FIND NEXT {self.record} WITHIN {self.set_name} USING {parts}"


@dataclass(frozen=True)
class NetFindOwner:
    set_name: str

    def render(self) -> str:
        return f"FIND OWNER WITHIN {self.set_name}"


@dataclass(frozen=True)
class NetFindCurrent:
    """FIND CURRENT OF record: re-establish the run-unit currency from
    the record-type currency (used by conversion-inserted sequences
    that hop away and back)."""

    record: str

    def render(self) -> str:
        return f"FIND CURRENT {self.record}"


@dataclass(frozen=True)
class NetGet:
    """GET: bind the current record's fields to RECORD.FIELD vars."""

    record: str

    def render(self) -> str:
        return f"GET {self.record}"


@dataclass(frozen=True)
class NetStore:
    record: str
    values: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        return f"STORE {self.record} ({parts})"


@dataclass(frozen=True)
class NetModify:
    record: str
    values: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        return f"MODIFY {self.record} ({parts})"


@dataclass(frozen=True)
class NetErase:
    record: str
    all_members: bool = False

    def render(self) -> str:
        suffix = " ALL MEMBERS" if self.all_members else ""
        return f"ERASE {self.record}{suffix}"


@dataclass(frozen=True)
class NetConnect:
    record: str
    set_name: str

    def render(self) -> str:
        return f"CONNECT {self.record} TO {self.set_name}"


@dataclass(frozen=True)
class NetDisconnect:
    record: str
    set_name: str

    def render(self) -> str:
        return f"DISCONNECT {self.record} FROM {self.set_name}"


@dataclass(frozen=True)
class NetReconnect:
    """Move the current record to the owner of ``set_name`` identified
    by ``using_field = value`` (conversion-inserted statement; with
    ``ensure_owner`` a missing owner is created)."""

    record: str
    set_name: str
    using_field: str
    value: Expr
    ensure_owner: bool = False

    def render(self) -> str:
        ensure = " ENSURING OWNER" if self.ensure_owner else ""
        return (f"RECONNECT {self.record} IN {self.set_name} TO "
                f"{self.using_field}={self.value.render()}{ensure}")


@dataclass(frozen=True)
class NetGenericCall:
    """A call-interface DML request whose *verb is an expression*.

    Section 3.2: "some database systems which use a call interface ...
    pass the request (retrieve, insert, etc.) as an argument.  This
    argument is usually a program variable and thus potentially can
    change during execution."  When ``verb`` is not a constant, the
    program analyzer must prove it invariant via data flow -- or give
    up, exactly as the paper predicts.
    """

    verb: Expr  # evaluates to 'FIND-ANY' | 'STORE' | 'ERASE' | 'MODIFY' | 'GET'
    record: str
    values: tuple[tuple[str, Expr], ...] = ()

    def render(self) -> str:
        parts = "".join(
            f", {k}={v.render()}" for k, v in self.values
        )
        return f"CALL DML({self.verb.render()}, {self.record}{parts})"


# ---------------------------------------------------------------------------
# Statements: relational DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelQuery:
    """Run a SEQUEL query; bind the result rows to ``into_var``.

    ``parameters`` substitute ``?NAME`` placeholders in the query text
    with current variable values before parsing.
    """

    sequel: str
    into_var: str
    parameters: tuple[str, ...] = ()

    def render(self) -> str:
        using = ""
        if self.parameters:
            using = f" USING ({', '.join(self.parameters)})"
        return f"QUERY [{self.sequel}] INTO {self.into_var}{using}"


@dataclass(frozen=True)
class RelInsert:
    relation: str
    values: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        return f"INSERT INTO {self.relation} ({parts})"


@dataclass(frozen=True)
class RelDelete:
    """Delete rows matching equality conditions."""

    relation: str
    equal: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = " AND ".join(f"{k}={v.render()}" for k, v in self.equal)
        return f"DELETE FROM {self.relation} WHERE {parts}"


@dataclass(frozen=True)
class RelUpdate:
    relation: str
    equal: tuple[tuple[str, Expr], ...]
    updates: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        where = " AND ".join(f"{k}={v.render()}" for k, v in self.equal)
        sets = ", ".join(f"{k}={v.render()}" for k, v in self.updates)
        return f"UPDATE {self.relation} SET {sets} WHERE {where}"


# ---------------------------------------------------------------------------
# Statements: hierarchical (DL/I) DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SsaSpec:
    """An SSA whose comparison value is an expression."""

    segment: str
    qual_field: str | None = None
    op: str = "="
    value: Expr | None = None

    def render(self) -> str:
        if self.qual_field is None:
            return self.segment
        return f"{self.segment}({self.qual_field}{self.op}{self.value.render()})"


@dataclass(frozen=True)
class HierGU:
    """GET UNIQUE: bind found segment fields to SEGMENT.FIELD vars."""

    ssas: tuple[SsaSpec, ...]

    def render(self) -> str:
        return "GU " + " ".join(s.render() for s in self.ssas)


@dataclass(frozen=True)
class HierGN:
    ssas: tuple[SsaSpec, ...] = ()

    def render(self) -> str:
        return "GN " + " ".join(s.render() for s in self.ssas)


@dataclass(frozen=True)
class HierGNP:
    ssas: tuple[SsaSpec, ...] = ()

    def render(self) -> str:
        return "GNP " + " ".join(s.render() for s in self.ssas)


@dataclass(frozen=True)
class HierISRT:
    segment: str
    values: tuple[tuple[str, Expr], ...]
    parent_ssas: tuple[SsaSpec, ...] = ()

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        path = " ".join(s.render() for s in self.parent_ssas)
        under = f" UNDER {path}" if path else ""
        return f"ISRT {self.segment} ({parts}){under}"


@dataclass(frozen=True)
class HierDLET:
    def render(self) -> str:
        return "DLET"


@dataclass(frozen=True)
class HierPositionParent:
    """Re-establish position at the current parentage (used by
    Mehl & Wang substitution sequences between generated typed loops)."""

    def render(self) -> str:
        return "POSITION PARENT"


@dataclass(frozen=True)
class HierREPL:
    values: tuple[tuple[str, Expr], ...]

    def render(self) -> str:
        parts = ", ".join(f"{k}={v.render()}" for k, v in self.values)
        return f"REPL ({parts})"


Stmt = Union[
    Assign, If, While, ForEachRow, BindFirstRow, Call,
    ReadTerminal, WriteTerminal, ReadFile, WriteFile,
    NetFindAny, NetFindFirst, NetFindNext, NetFindNextUsing, NetFindOwner,
    NetFindCurrent, NetGet, NetStore, NetModify, NetErase, NetConnect,
    NetDisconnect, NetReconnect, NetGenericCall,
    RelQuery, RelInsert, RelDelete, RelUpdate,
    HierGU, HierGN, HierGNP, HierISRT, HierDLET, HierREPL,
    HierPositionParent,
]

#: Statement classes that touch the database (used by the analyzer).
DML_NODES = (
    NetFindAny, NetFindFirst, NetFindNext, NetFindNextUsing, NetFindOwner,
    NetFindCurrent, NetGet, NetStore, NetModify, NetErase, NetConnect,
    NetDisconnect, NetReconnect, NetGenericCall,
    RelQuery, RelInsert, RelDelete, RelUpdate,
    HierGU, HierGN, HierGNP, HierISRT, HierDLET, HierREPL,
    HierPositionParent,
)


# ---------------------------------------------------------------------------
# Program container
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Procedure:
    """A named sub-program with positional parameters."""

    name: str
    parameters: tuple[str, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Program:
    """A complete database program.

    ``model`` names the data model its DML speaks ('network',
    'relational', or 'hierarchical'); ``schema_name`` records which
    schema it was written against (the paper's requirement that a
    program's assumptions be declared, Section 1.1).
    """

    name: str
    model: str
    schema_name: str
    statements: tuple[Stmt, ...]
    procedures: tuple[Procedure, ...] = ()

    def procedure(self, name: str) -> Procedure:
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise KeyError(f"program {self.name} has no procedure {name}")

    def with_statements(self, statements: tuple[Stmt, ...]) -> "Program":
        return replace(self, statements=statements)


# ---------------------------------------------------------------------------
# Tree walking and rendering
# ---------------------------------------------------------------------------


def children_of(stmt: Stmt) -> tuple[tuple[Stmt, ...], ...]:
    """The nested statement blocks of a compound statement."""
    if isinstance(stmt, If):
        return (stmt.then, stmt.orelse)
    if isinstance(stmt, While):
        return (stmt.body,)
    if isinstance(stmt, ForEachRow):
        return (stmt.body,)
    return ()


def walk(statements: tuple[Stmt, ...]) -> Iterator[Stmt]:
    """Yield every statement in a block, depth-first, pre-order."""
    for stmt in statements:
        yield stmt
        for block in children_of(stmt):
            yield from walk(block)


def walk_program(program: Program) -> Iterator[Stmt]:
    """Walk the main block and every procedure body."""
    yield from walk(program.statements)
    for procedure in program.procedures:
        yield from walk(procedure.body)


def transform_block(statements: tuple[Stmt, ...],
                    fn) -> tuple[Stmt, ...]:
    """Rebuild a block, applying ``fn`` bottom-up to each statement.

    ``fn(stmt)`` returns a statement, a tuple/list of statements (to
    splice), or None (to drop).  Nested blocks are transformed first so
    ``fn`` sees already-rewritten children.
    """
    out: list[Stmt] = []
    for stmt in statements:
        if isinstance(stmt, If):
            stmt = replace(stmt,
                           then=transform_block(stmt.then, fn),
                           orelse=transform_block(stmt.orelse, fn))
        elif isinstance(stmt, While):
            stmt = replace(stmt, body=transform_block(stmt.body, fn))
        elif isinstance(stmt, ForEachRow):
            stmt = replace(stmt, body=transform_block(stmt.body, fn))
        result = fn(stmt)
        if result is None:
            continue
        if isinstance(result, (tuple, list)):
            out.extend(result)
        else:
            out.append(result)
    return tuple(out)


def transform_program(program: Program, fn) -> Program:
    """Apply :func:`transform_block` to the program and its procedures."""
    statements = transform_block(program.statements, fn)
    procedures = tuple(
        replace(procedure, body=transform_block(procedure.body, fn))
        for procedure in program.procedures
    )
    return replace(program, statements=statements, procedures=procedures)


def render_program(program: Program) -> str:
    """Readable pseudo-COBOL text of a program."""
    lines = [f"PROGRAM {program.name} ({program.model} / "
             f"{program.schema_name})."]

    def emit(statements: tuple[Stmt, ...], indent: int) -> None:
        pad = "  " * indent
        for stmt in statements:
            if isinstance(stmt, If):
                lines.append(f"{pad}IF {stmt.condition.render()}")
                emit(stmt.then, indent + 1)
                if stmt.orelse:
                    lines.append(f"{pad}ELSE")
                    emit(stmt.orelse, indent + 1)
                lines.append(f"{pad}END-IF")
            elif isinstance(stmt, While):
                lines.append(f"{pad}PERFORM WHILE {stmt.condition.render()}")
                emit(stmt.body, indent + 1)
                lines.append(f"{pad}END-PERFORM")
            elif isinstance(stmt, ForEachRow):
                lines.append(
                    f"{pad}FOR EACH {stmt.row_var} IN {stmt.rows_var}"
                )
                emit(stmt.body, indent + 1)
                lines.append(f"{pad}END-FOR")
            else:
                lines.append(f"{pad}{stmt.render()}.")

    emit(program.statements, 1)
    for procedure in program.procedures:
        params = ", ".join(procedure.parameters)
        lines.append(f"PROCEDURE {procedure.name}({params}).")
        emit(procedure.body, 1)
    return "\n".join(lines) + "\n"
