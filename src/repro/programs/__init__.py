"""Database programs.

Section 1.1 defines a database program as "a program written in a
conventional programming language, with embedded data manipulation
statements which interact with a database system".  This package models
exactly that: a small host-language AST (variables, expressions,
control flow, terminal and file I/O) with embedded DML statements for
all three data models, an interpreter that runs programs against a
database while recording the I/O trace, and builder helpers for
constructing programs compactly.

The AST *is* the framework's "internal representation of the program"
(Figure 4.1): it exposes "the program control structure, the
relationships among program variables and the sub-program parameter
passing structure" to the analyzer.
"""

from repro.programs.ast import (
    Assign,
    Bin,
    Call,
    Const,
    ForEachRow,
    HierDLET,
    HierGN,
    HierGNP,
    HierGU,
    HierISRT,
    HierREPL,
    If,
    NetConnect,
    NetDisconnect,
    NetErase,
    NetFindAny,
    NetFindFirst,
    NetFindNext,
    NetFindNextUsing,
    NetFindOwner,
    NetGenericCall,
    NetGet,
    NetModify,
    NetStore,
    Procedure,
    Program,
    ReadFile,
    ReadTerminal,
    RelDelete,
    RelInsert,
    RelQuery,
    RelUpdate,
    SsaSpec,
    Var,
    While,
    WriteFile,
    WriteTerminal,
    walk,
)
from repro.programs.iotrace import IOTrace, IOEvent
from repro.programs.interpreter import Interpreter, ProgramInputs, run_program
from repro.programs.parser import (
    ProgramSyntaxError,
    parse_expression,
    parse_program,
)

__all__ = [
    "Program",
    "Procedure",
    "Const",
    "Var",
    "Bin",
    "Assign",
    "If",
    "While",
    "ForEachRow",
    "Call",
    "ReadTerminal",
    "WriteTerminal",
    "ReadFile",
    "WriteFile",
    "NetFindAny",
    "NetFindFirst",
    "NetFindNext",
    "NetFindNextUsing",
    "NetFindOwner",
    "NetGet",
    "NetStore",
    "NetModify",
    "NetErase",
    "NetConnect",
    "NetDisconnect",
    "NetGenericCall",
    "RelQuery",
    "RelInsert",
    "RelDelete",
    "RelUpdate",
    "HierGU",
    "HierGN",
    "HierGNP",
    "HierISRT",
    "HierDLET",
    "HierREPL",
    "SsaSpec",
    "walk",
    "IOTrace",
    "IOEvent",
    "Interpreter",
    "ProgramInputs",
    "run_program",
    "parse_program",
    "parse_expression",
    "ProgramSyntaxError",
]
