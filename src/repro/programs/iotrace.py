"""Input/output traces -- the paper's equivalence currency.

Section 1.1: "except with respect to the database, a restructured
program must preserve the input/output behavior of the original
program ... the program must give the same requests and/or messages as
before conversion [and] present the same series of reads and writes to
non-database files."

An :class:`IOTrace` is the ordered list of those observable events.
Database operations never appear in it, by construction: "a different
combination of interactions is acceptable with respect to the
database."
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IOEvent:
    """One observable event.

    ``channel`` is ``terminal`` or a file name; ``direction`` is
    ``read`` or ``write``; ``text`` is the line content.
    """

    channel: str
    direction: str
    text: str

    def render(self) -> str:
        arrow = "<-" if self.direction == "read" else "->"
        return f"{self.channel} {arrow} {self.text}"


@dataclass
class IOTrace:
    """The ordered observable behaviour of one program run."""

    events: list[IOEvent] = field(default_factory=list)

    def terminal_write(self, text: str) -> None:
        self.events.append(IOEvent("terminal", "write", text))

    def terminal_read(self, text: str) -> None:
        self.events.append(IOEvent("terminal", "read", text))

    def file_write(self, file_name: str, text: str) -> None:
        self.events.append(IOEvent(file_name, "write", text))

    def file_read(self, file_name: str, text: str) -> None:
        self.events.append(IOEvent(file_name, "read", text))

    def terminal_lines(self) -> list[str]:
        """Lines written to the terminal, in order."""
        return [
            event.text for event in self.events
            if event.channel == "terminal" and event.direction == "write"
        ]

    def file_lines(self, file_name: str) -> list[str]:
        """Lines written to one file, in order."""
        return [
            event.text for event in self.events
            if event.channel == file_name and event.direction == "write"
        ]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IOTrace):
            return NotImplemented
        return self.events == other.events

    def __len__(self) -> int:
        return len(self.events)

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events)

    def diff(self, other: "IOTrace") -> str | None:
        """A human-readable first divergence, or None when equal."""
        for index, (mine, theirs) in enumerate(zip(self.events, other.events)):
            if mine != theirs:
                return (f"event {index}: {mine.render()!r} vs "
                        f"{theirs.render()!r}")
        if len(self.events) != len(other.events):
            longer = self if len(self.events) > len(other.events) else other
            index = min(len(self.events), len(other.events))
            return (f"event {index}: one trace has extra "
                    f"{longer.events[index].render()!r}")
        return None
