"""Interpreter: runs a database program against a database, recording
its I/O trace.

The interpreter accepts any of the three database classes and wires up
the matching DML session.  It enforces the Section 1.1 consistency
contract when asked (``consistent=True`` wraps the run in a run unit)
and guards against runaway loops with a step budget.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ReproError
from repro.hierarchical.database import HierarchicalDatabase
from repro.hierarchical.dml import DLISession, SSA
from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.observe.registry import named_counters
from repro.observe.tracing import current_tracer, sampled_span, span
from repro.programs import ast
from repro.programs.iotrace import IOTrace
from repro.relational.database import RelationalDatabase
from repro.relational.sequel import evaluate as evaluate_sequel, parse_sequel


class InterpreterError(ReproError):
    """A program failed at run time (bad variable, step budget, ...)."""


class ProgramTimeout(InterpreterError):
    """A program run exceeded its cooperative wall-clock deadline.

    Raised from the interpreter's statement loop when a
    :func:`program_deadline` window is active -- the batch supervisor's
    watchdog.  The message names the configured limit, never the
    elapsed time, so a timed-out program produces the same report
    serially and inside a worker process."""

    def __init__(self, message: str, program: str | None = None):
        super().__init__(message)
        self.program = program
        self.phase = "watchdog"


#: The active cooperative deadline: ``(monotonic_deadline, limit)``.
#: A context variable, so the batch layer can arm one deadline around
#: a whole conversion (reference run plus every validation probe) and
#: every interpreter the conversion creates -- in this thread or
#: task -- sees it without plumbing.
_DEADLINE: ContextVar[tuple[float, float] | None] = ContextVar(
    "repro_program_deadline", default=None)


@contextmanager
def program_deadline(seconds: float | None) -> Iterator[None]:
    """Arm a cooperative wall-clock deadline for program runs.

    Every :meth:`Interpreter.run` started inside the window checks the
    deadline once per statement (and once at end of run, so a run whose
    final statement blocked past the limit still surfaces) and raises
    :class:`ProgramTimeout` when it has passed.  ``None`` is a no-op,
    so callers can pass ``options.program_timeout`` unconditionally.
    Windows nest; the innermost wins.
    """
    if seconds is None:
        yield
        return
    if seconds <= 0:
        raise ValueError(f"program_timeout must be > 0, got {seconds}")
    token = _DEADLINE.set((time.monotonic() + seconds, seconds))
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def active_deadline() -> tuple[float, float] | None:
    """The armed ``(monotonic_deadline, limit_seconds)``, if any."""
    return _DEADLINE.get()


@dataclass
class ProgramInputs:
    """External inputs to one run: terminal lines and file contents."""

    terminal: list[str] = field(default_factory=list)
    files: dict[str, list[str]] = field(default_factory=dict)

    def copy(self) -> "ProgramInputs":
        return ProgramInputs(
            list(self.terminal),
            {name: list(lines) for name, lines in self.files.items()},
        )


def _text(value: Any) -> str:
    return "" if value is None else str(value)


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    # Ordering: None sorts below everything (matches index ordering).
    if left is None or right is None:
        if op in ("<", "<="):
            return left is None and (right is not None or op == "<=")
        return right is None and (left is not None or op == ">=")
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise InterpreterError(f"unknown comparison {op!r}")


class Interpreter:
    """Executes one program against one database."""

    def __init__(self, db, inputs: ProgramInputs | None = None,
                 max_steps: int = 2_000_000, session: Any = None):
        self.db = db
        self.inputs = (inputs or ProgramInputs()).copy()
        self.max_steps = max_steps
        self.trace = IOTrace()
        self.env: dict[str, Any] = {"DB-STATUS": "0000", "FILE-STATUS": "00"}
        self._steps = 0
        self._dml_statements = 0
        self._dml_trace = False
        self._deadline: tuple[float, float] | None = active_deadline()
        self._program: ast.Program | None = None
        # Per-statement compiled-expression cache.  Keyed by id() (AST
        # nodes are frozen dataclasses whose values may be unhashable);
        # the node itself is kept in the value so the id cannot be
        # recycled while the entry lives.
        self._compiled: dict[int, tuple[ast.Expr, Callable[[], Any]]] = {}
        # Substituted SEQUEL text -> parsed query, so a RelQuery inside
        # a loop parses once per distinct parameter binding.
        self._sequel_cache: dict[str, Any] = {}
        if session is not None:
            # A custom session (e.g. a DML emulation layer) that speaks
            # the DMLSession surface.
            self.session = session
        elif isinstance(db, NetworkDatabase):
            self.session = DMLSession(db)
        elif isinstance(db, HierarchicalDatabase):
            self.session = DLISession(db)
        elif isinstance(db, RelationalDatabase):
            self.session = None
        else:
            raise InterpreterError(
                f"unsupported database type {type(db).__name__}"
            )

    # -- public entry -----------------------------------------------------

    def run(self, program: ast.Program) -> IOTrace:
        """Execute the program, producing its I/O trace.

        Under an active tracer the whole run is a ``program.run`` span
        stamped with the statement totals, and individual DML
        statements are recorded as sampled ``dml.*`` spans."""
        self._program = program
        self._deadline = active_deadline()
        self._dml_trace = current_tracer() is not None
        if not self._dml_trace:
            self._exec_block(program.statements)
            self._check_deadline()
            return self.trace
        with span("program.run", capture_metrics=False,
                  program=program.name, model=program.model) as run_span:
            self._exec_block(program.statements)
            self._check_deadline()
            run_span.set_attr("statements", self._steps)
            run_span.set_attr("dml_statements", self._dml_statements)
        return self.trace

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: ast.Expr) -> Any:
        """Evaluate an expression (compiling it to a closure on first
        use; loops re-run the closure, not the AST walk)."""
        cached = self._compiled.get(id(expr))
        if cached is not None and cached[0] is expr:
            return cached[1]()
        compiled = self._compile_expr(expr)
        self._compiled[id(expr)] = (expr, compiled)
        return compiled()

    def _compile_expr(self, expr: ast.Expr) -> Callable[[], Any]:
        """One AST node -> one closure over the interpreter's (stable)
        environment dict.  Error semantics match the walking evaluator:
        unbound variables raise at evaluation, not compilation."""
        env = self.env
        if isinstance(expr, ast.Const):
            value = expr.value
            return lambda: value
        if isinstance(expr, ast.Var):
            name = expr.name

            def read_var() -> Any:
                try:
                    return env[name]
                except KeyError:
                    raise InterpreterError(
                        f"unbound variable {name}"
                    ) from None
            return read_var
        if isinstance(expr, ast.Bin):
            left = self._compile_expr(expr.left)
            right = self._compile_expr(expr.right)
            op = expr.op
            if op == "AND":
                return lambda: bool(left()) and bool(right())
            if op == "OR":
                return lambda: bool(left()) or bool(right())
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return lambda: _compare(op, left(), right())
            if op == "+":
                return lambda: left() + right()
            if op == "-":
                return lambda: left() - right()
            if op == "*":
                return lambda: left() * right()
            raise InterpreterError(f"unknown operator {op!r}")
        raise InterpreterError(f"unknown expression {expr!r}")

    def _pairs(self, pairs: tuple[tuple[str, ast.Expr], ...]) -> dict[str, Any]:
        return {name: self.eval(expr) for name, expr in pairs}

    # -- statements -------------------------------------------------------------

    def _exec_block(self, statements: tuple[ast.Stmt, ...]) -> None:
        for stmt in statements:
            self._step()
            self._exec(stmt)

    def _step(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpreterError(
                f"step budget exceeded ({self.max_steps}); "
                "probable infinite loop"
            )
        if self._deadline is not None:
            self._check_deadline()

    def _check_deadline(self) -> None:
        """Cooperative watchdog: raise once the armed deadline passes.

        The timeout message is deterministic -- it names the program
        and the configured limit, never the elapsed time -- so a
        timed-out program's failure report is byte-identical whether
        the run happened serially or inside a worker process."""
        if self._deadline is None:
            return
        deadline, limit = self._deadline
        if time.monotonic() < deadline:
            return
        named_counters("supervision").bump("timeouts")
        name = self._program.name if self._program is not None else "?"
        raise ProgramTimeout(
            f"program '{name}' exceeded its {limit:g}s conversion "
            "deadline (cooperative watchdog)",
            program=name,
        )

    def _exec(self, stmt: ast.Stmt) -> None:
        handler = self._HANDLERS.get(type(stmt))
        if handler is None:
            raise InterpreterError(
                f"no handler for statement {type(stmt).__name__}"
            )
        if type(stmt) in _DML_STATEMENTS:
            self._dml_statements += 1
            if self._dml_trace:
                with sampled_span(f"dml.{type(stmt).__name__}"):
                    handler(self, stmt)
                return
        handler(self, stmt)

    # host language ----------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign) -> None:
        self.env[stmt.var] = self.eval(stmt.expr)

    def _exec_if(self, stmt: ast.If) -> None:
        if self.eval(stmt.condition):
            self._exec_block(stmt.then)
        else:
            self._exec_block(stmt.orelse)

    def _exec_while(self, stmt: ast.While) -> None:
        while self.eval(stmt.condition):
            self._step()
            self._exec_block(stmt.body)

    def _exec_for_each_row(self, stmt: ast.ForEachRow) -> None:
        rows = self.env.get(stmt.rows_var)
        if rows is None:
            raise InterpreterError(
                f"FOR EACH: {stmt.rows_var} holds no query result"
            )
        for row in rows:
            for column, value in row.items():
                self.env[f"{stmt.row_var}.{column}"] = value
            self._exec_block(stmt.body)

    def _exec_bind_first_row(self, stmt: ast.BindFirstRow) -> None:
        rows = self.env.get(stmt.rows_var)
        if not rows:
            self.env["DB-STATUS"] = "0326"
            return
        for column, value in rows[0].items():
            self.env[f"{stmt.row_var}.{column}"] = value
        self.env["DB-STATUS"] = "0000"

    def _exec_call(self, stmt: ast.Call) -> None:
        if self._program is None:
            raise InterpreterError("CALL outside a program run")
        procedure = self._program.procedure(stmt.procedure)
        if len(stmt.arguments) != len(procedure.parameters):
            raise InterpreterError(
                f"CALL {stmt.procedure}: expected "
                f"{len(procedure.parameters)} arguments"
            )
        saved = {
            name: self.env[name] for name in procedure.parameters
            if name in self.env
        }
        for name, expr in zip(procedure.parameters, stmt.arguments):
            self.env[name] = self.eval(expr)
        try:
            self._exec_block(procedure.body)
        finally:
            for name in procedure.parameters:
                if name in saved:
                    self.env[name] = saved[name]
                else:
                    self.env.pop(name, None)

    def _exec_read_terminal(self, stmt: ast.ReadTerminal) -> None:
        if stmt.prompt is not None:
            self.trace.terminal_write(stmt.prompt)
        if self.inputs.terminal:
            line = self.inputs.terminal.pop(0)
        else:
            line = ""
        self.env[stmt.var] = line
        self.trace.terminal_read(line)

    def _exec_write_terminal(self, stmt: ast.WriteTerminal) -> None:
        text = " ".join(_text(self.eval(e)) for e in stmt.exprs)
        self.trace.terminal_write(text)

    def _exec_read_file(self, stmt: ast.ReadFile) -> None:
        lines = self.inputs.files.get(stmt.file_name, [])
        if lines:
            line = lines.pop(0)
            self.env[stmt.var] = line
            self.env["FILE-STATUS"] = "00"
            self.trace.file_read(stmt.file_name, line)
        else:
            self.env[stmt.var] = None
            self.env["FILE-STATUS"] = "10"  # COBOL AT END

    def _exec_write_file(self, stmt: ast.WriteFile) -> None:
        text = " ".join(_text(self.eval(e)) for e in stmt.exprs)
        self.trace.file_write(stmt.file_name, text)

    # network DML ---------------------------------------------------------

    def _net(self) -> DMLSession:
        if not isinstance(self.session, DMLSession):
            raise InterpreterError(
                "network DML statement run against a non-network database"
            )
        return self.session

    def _after_net(self) -> None:
        self.env["DB-STATUS"] = self._net().status

    def _exec_net_find_any(self, stmt: ast.NetFindAny) -> None:
        self._net().find_any(stmt.record, **self._pairs(stmt.using))
        self._after_net()

    def _exec_net_find_first(self, stmt: ast.NetFindFirst) -> None:
        self._net().find_first(stmt.record, stmt.set_name)
        self._after_net()

    def _exec_net_find_next(self, stmt: ast.NetFindNext) -> None:
        self._net().find_next(stmt.record, stmt.set_name)
        self._after_net()

    def _exec_net_find_next_using(self, stmt: ast.NetFindNextUsing) -> None:
        session = self._net()
        for name, value in self._pairs(stmt.using).items():
            session.move(value, stmt.record, name)
        session.find_next_using(stmt.record, stmt.set_name,
                                *[name for name, _ in stmt.using])
        self._after_net()

    def _exec_net_find_owner(self, stmt: ast.NetFindOwner) -> None:
        self._net().find_owner(stmt.set_name)
        self._after_net()

    def _exec_net_find_current(self, stmt: ast.NetFindCurrent) -> None:
        self._net().find_current(stmt.record)
        self._after_net()

    def _exec_net_get(self, stmt: ast.NetGet) -> None:
        session = self._net()
        if not session.current_matches(stmt.record):
            self.env["DB-STATUS"] = "0306"
            return
        values = session.get()
        self._after_net()
        if values is not None:
            for name, value in values.items():
                self.env[f"{stmt.record}.{name}"] = value

    def _exec_net_store(self, stmt: ast.NetStore) -> None:
        self._net().store(stmt.record, self._pairs(stmt.values))
        self._after_net()

    def _exec_net_modify(self, stmt: ast.NetModify) -> None:
        self._net().modify(self._pairs(stmt.values))
        self._after_net()

    def _exec_net_erase(self, stmt: ast.NetErase) -> None:
        self._net().erase(all_members=stmt.all_members)
        self._after_net()

    def _exec_net_connect(self, stmt: ast.NetConnect) -> None:
        self._net().connect(stmt.set_name)
        self._after_net()

    def _exec_net_disconnect(self, stmt: ast.NetDisconnect) -> None:
        self._net().disconnect(stmt.set_name)
        self._after_net()

    def _exec_net_reconnect(self, stmt: ast.NetReconnect) -> None:
        self._net().reconnect(stmt.set_name, stmt.using_field,
                              self.eval(stmt.value), stmt.ensure_owner)
        self._after_net()

    def _exec_net_generic(self, stmt: ast.NetGenericCall) -> None:
        verb = self.eval(stmt.verb)
        values = self._pairs(stmt.values)
        session = self._net()
        if verb == "FIND-ANY":
            session.find_any(stmt.record, **values)
        elif verb == "STORE":
            session.store(stmt.record, values)
        elif verb == "MODIFY":
            session.modify(values)
        elif verb == "ERASE":
            session.erase()
        elif verb == "GET":
            self._exec_net_get(ast.NetGet(stmt.record))
            return
        else:
            raise InterpreterError(f"unknown DML verb {verb!r}")
        self._after_net()

    # relational DML --------------------------------------------------------

    def _rel(self) -> RelationalDatabase:
        if not isinstance(self.db, RelationalDatabase):
            raise InterpreterError(
                "relational DML statement run against a non-relational "
                "database"
            )
        return self.db

    def _exec_rel_query(self, stmt: ast.RelQuery) -> None:
        text = stmt.sequel
        for name in stmt.parameters:
            value = self.env.get(name)
            literal = f"'{value}'" if isinstance(value, str) else str(value)
            text = text.replace(f"?{name}", literal)
        query = self._sequel_cache.get(text)
        if query is None:
            query = parse_sequel(text)
            self._sequel_cache[text] = query
        result = evaluate_sequel(query, self._rel())
        self.env[stmt.into_var] = result.rows()
        self.env["DB-STATUS"] = "0000"

    def _exec_rel_insert(self, stmt: ast.RelInsert) -> None:
        self._rel().insert(stmt.relation, self._pairs(stmt.values))
        self.env["DB-STATUS"] = "0000"

    def _exec_rel_delete(self, stmt: ast.RelDelete) -> None:
        wanted = self._pairs(stmt.equal)
        count = self._rel().delete_where(
            stmt.relation,
            lambda row: all(row.get(k) == v for k, v in wanted.items()),
            equal=wanted,
        )
        self.env["DB-STATUS"] = "0000" if count else "0326"

    def _exec_rel_update(self, stmt: ast.RelUpdate) -> None:
        wanted = self._pairs(stmt.equal)
        updates = self._pairs(stmt.updates)
        count = self._rel().update_where(
            stmt.relation,
            lambda row: all(row.get(k) == v for k, v in wanted.items()),
            updates,
            equal=wanted,
        )
        self.env["DB-STATUS"] = "0000" if count else "0326"

    # hierarchical DML ----------------------------------------------------------

    def _hier(self) -> DLISession:
        if not isinstance(self.session, DLISession):
            raise InterpreterError(
                "hierarchical DML statement run against a non-hierarchical "
                "database"
            )
        return self.session

    def _ssas(self, specs: tuple[ast.SsaSpec, ...]) -> list[SSA]:
        out = []
        for spec in specs:
            if spec.qual_field is None:
                out.append(SSA(spec.segment))
            else:
                out.append(SSA(spec.segment, spec.qual_field, spec.op,
                               self.eval(spec.value)))
        return out

    def _bind_segment(self, record) -> None:
        if record is None:
            return
        for name, value in record.values.items():
            self.env[f"{record.type_name}.{name}"] = value

    def _exec_hier_gu(self, stmt: ast.HierGU) -> None:
        session = self._hier()
        record = session.get_unique(*self._ssas(stmt.ssas))
        self.env["DB-STATUS"] = session.status
        self._bind_segment(record)

    def _exec_hier_gn(self, stmt: ast.HierGN) -> None:
        session = self._hier()
        record = session.get_next(*self._ssas(stmt.ssas))
        self.env["DB-STATUS"] = session.status
        self._bind_segment(record)

    def _exec_hier_gnp(self, stmt: ast.HierGNP) -> None:
        session = self._hier()
        record = session.get_next_within_parent(*self._ssas(stmt.ssas))
        self.env["DB-STATUS"] = session.status
        self._bind_segment(record)

    def _exec_hier_isrt(self, stmt: ast.HierISRT) -> None:
        session = self._hier()
        session.insert(stmt.segment, self._pairs(stmt.values),
                       *self._ssas(stmt.parent_ssas))
        self.env["DB-STATUS"] = session.status

    def _exec_hier_position_parent(self, stmt: ast.HierPositionParent) -> None:
        session = self._hier()
        session.position_to_parentage()
        self.env["DB-STATUS"] = session.status

    def _exec_hier_dlet(self, stmt: ast.HierDLET) -> None:
        session = self._hier()
        session.delete()
        self.env["DB-STATUS"] = session.status

    def _exec_hier_repl(self, stmt: ast.HierREPL) -> None:
        session = self._hier()
        session.replace(self._pairs(stmt.values))
        self.env["DB-STATUS"] = session.status

    _HANDLERS = {
        ast.Assign: _exec_assign,
        ast.If: _exec_if,
        ast.While: _exec_while,
        ast.ForEachRow: _exec_for_each_row,
        ast.BindFirstRow: _exec_bind_first_row,
        ast.Call: _exec_call,
        ast.ReadTerminal: _exec_read_terminal,
        ast.WriteTerminal: _exec_write_terminal,
        ast.ReadFile: _exec_read_file,
        ast.WriteFile: _exec_write_file,
        ast.NetFindAny: _exec_net_find_any,
        ast.NetFindFirst: _exec_net_find_first,
        ast.NetFindNext: _exec_net_find_next,
        ast.NetFindNextUsing: _exec_net_find_next_using,
        ast.NetFindOwner: _exec_net_find_owner,
        ast.NetFindCurrent: _exec_net_find_current,
        ast.NetGet: _exec_net_get,
        ast.NetStore: _exec_net_store,
        ast.NetModify: _exec_net_modify,
        ast.NetErase: _exec_net_erase,
        ast.NetConnect: _exec_net_connect,
        ast.NetDisconnect: _exec_net_disconnect,
        ast.NetReconnect: _exec_net_reconnect,
        ast.NetGenericCall: _exec_net_generic,
        ast.RelQuery: _exec_rel_query,
        ast.RelInsert: _exec_rel_insert,
        ast.RelDelete: _exec_rel_delete,
        ast.RelUpdate: _exec_rel_update,
        ast.HierGU: _exec_hier_gu,
        ast.HierGN: _exec_hier_gn,
        ast.HierGNP: _exec_hier_gnp,
        ast.HierISRT: _exec_hier_isrt,
        ast.HierDLET: _exec_hier_dlet,
        ast.HierPositionParent: _exec_hier_position_parent,
        ast.HierREPL: _exec_hier_repl,
    }


#: Statement types that issue DML; counted per run and recorded as
#: sampled spans when tracing is on.
_DML_STATEMENTS = frozenset(
    stmt_type for stmt_type in Interpreter._HANDLERS
    if stmt_type.__name__.startswith(("Net", "Rel", "Hier"))
)


def run_program(program: ast.Program, db,
                inputs: ProgramInputs | None = None,
                consistent: bool = True) -> IOTrace:
    """Run a program; with ``consistent=True`` (default) the run is a
    Section 1.1 run unit: the database must end consistent."""
    interpreter = Interpreter(db, inputs)
    if consistent:
        with db.run_unit():
            trace = interpreter.run(program)
    else:
        trace = interpreter.run(program)
    return trace
