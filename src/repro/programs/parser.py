"""Parser for the pseudo-COBOL program text.

The Program Analyzer of Figure 4.1 reads *source programs*; this
parser closes the loop: :func:`repro.programs.ast.render_program`
produces a text form, and :func:`parse_program` reads it (or
hand-written text in the same style) back into the AST.  Round-tripping
is exact -- ``parse_program(render_program(p))`` reproduces ``p`` -- and
is enforced by property tests over the generated corpus.

The grammar is line-oriented: one statement per line, leaf statements
terminated by a period, compound statements bracketed by
``IF/ELSE/END-IF``, ``PERFORM WHILE/END-PERFORM`` and
``FOR EACH/END-FOR``, procedures introduced by ``PROCEDURE NAME(...)``.
"""

from __future__ import annotations

import re

from repro.errors import ReproError
from repro.programs import ast


class ProgramSyntaxError(ReproError):
    """The program text could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

_EXPR_TOKEN = re.compile(r"'[^']*'|\(|\)|[^\s()]+")
_OPS = ("AND", "OR", "=", "<>", "<=", ">=", "<", ">", "+", "-", "*")


def _tokenize_expr(text: str) -> list[str]:
    return _EXPR_TOKEN.findall(text)


class _ExprParser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _next(self) -> str:
        if self._pos >= len(self._tokens):
            raise ProgramSyntaxError("unexpected end of expression")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def parse(self) -> ast.Expr:
        expr = self._expr()
        if self._pos != len(self._tokens):
            raise ProgramSyntaxError(
                f"trailing tokens in expression: "
                f"{self._tokens[self._pos:]!r}"
            )
        return expr

    def _expr(self) -> ast.Expr:
        token = self._next()
        if token == "(":
            left = self._expr()
            op = self._next()
            if op not in _OPS:
                raise ProgramSyntaxError(f"expected an operator, got {op!r}")
            right = self._expr()
            closing = self._next()
            if closing != ")":
                raise ProgramSyntaxError(f"expected ')', got {closing!r}")
            return ast.Bin(op, left, right)
        return _atom(token)


def _atom(token: str) -> ast.Expr:
    if token.startswith("'") and token.endswith("'"):
        return ast.Const(token[1:-1])
    if re.fullmatch(r"-?\d+", token):
        return ast.Const(int(token))
    if token == "True":
        return ast.Const(True)
    if token == "False":
        return ast.Const(False)
    if token == "None":
        return ast.Const(None)
    return ast.Var(token)


def parse_expression(text: str) -> ast.Expr:
    """Parse one rendered expression."""
    return _ExprParser(_tokenize_expr(text)).parse()


def _split_top_level(text: str, separator: str) -> list[str]:
    """Split on a separator, ignoring occurrences inside quotes,
    parentheses, or brackets."""
    parts: list[str] = []
    depth = 0
    quoted = False
    current = []
    index = 0
    while index < len(text):
        ch = text[index]
        if ch == "'":
            quoted = not quoted
        elif not quoted and ch in "([":
            depth += 1
        elif not quoted and ch in ")]":
            depth -= 1
        if (not quoted and depth == 0
                and text.startswith(separator, index)):
            parts.append("".join(current))
            current = []
            index += len(separator)
            continue
        current.append(ch)
        index += 1
    parts.append("".join(current))
    return parts


def _parse_pairs(text: str) -> tuple[tuple[str, ast.Expr], ...]:
    """Parse ``K1=expr, K2=expr`` lists."""
    text = text.strip()
    if not text:
        return ()
    pairs = []
    for part in _split_top_level(text, ", "):
        name, _eq, value = part.partition("=")
        if not _eq:
            raise ProgramSyntaxError(f"expected NAME=value, got {part!r}")
        pairs.append((name.strip(), parse_expression(value.strip())))
    return tuple(pairs)


def _parse_exprs(text: str) -> tuple[ast.Expr, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(parse_expression(part.strip())
                 for part in _split_top_level(text, ", "))


_SSA_RE = re.compile(
    r"^([A-Z0-9\-#]+)(?:\((.+?)(<=|>=|<>|=|<|>)(.+)\))?$"
)


def _parse_ssa(text: str) -> ast.SsaSpec:
    match = _SSA_RE.match(text.strip())
    if match is None:
        raise ProgramSyntaxError(f"malformed SSA {text!r}")
    segment, field_name, op, value = match.groups()
    if field_name is None:
        return ast.SsaSpec(segment)
    return ast.SsaSpec(segment, field_name, op,
                       parse_expression(value))


def _parse_ssas(text: str) -> tuple[ast.SsaSpec, ...]:
    text = text.strip()
    if not text:
        return ()
    return tuple(_parse_ssa(part) for part in _split_top_level(text, " "))


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class _ProgramParser:
    def __init__(self, text: str):
        self._lines = [
            (number, line.strip())
            for number, line in enumerate(text.splitlines(), start=1)
            if line.strip()
        ]
        self._pos = 0

    def _peek(self) -> tuple[int, str] | None:
        if self._pos < len(self._lines):
            return self._lines[self._pos]
        return None

    def _next(self) -> tuple[int, str]:
        entry = self._peek()
        if entry is None:
            raise ProgramSyntaxError("unexpected end of program text")
        self._pos += 1
        return entry

    def parse(self) -> ast.Program:
        line_no, header = self._next()
        match = re.match(
            r"^PROGRAM ([A-Z0-9\-#]+) \((\w+) / ([A-Z0-9\-#]+)\)\.$",
            header,
        )
        if match is None:
            raise ProgramSyntaxError(
                f"expected 'PROGRAM NAME (model / schema).', got "
                f"{header!r}", line_no,
            )
        name, model, schema_name = match.groups()
        statements = self._block(stop={"PROCEDURE"})
        procedures = []
        while self._peek() is not None:
            procedures.append(self._procedure())
        return ast.Program(name, model, schema_name, tuple(statements),
                           tuple(procedures))

    def _procedure(self) -> ast.Procedure:
        line_no, header = self._next()
        match = re.match(r"^PROCEDURE ([A-Z0-9\-#]+)\((.*)\)\.$", header)
        if match is None:
            raise ProgramSyntaxError(
                f"expected 'PROCEDURE NAME(params).', got {header!r}",
                line_no,
            )
        name, params_text = match.groups()
        parameters = tuple(
            p.strip() for p in params_text.split(",") if p.strip()
        )
        body = self._block(stop={"PROCEDURE"})
        return ast.Procedure(name, parameters, tuple(body))

    def _block(self, stop: set[str]) -> list[ast.Stmt]:
        statements: list[ast.Stmt] = []
        while True:
            entry = self._peek()
            if entry is None:
                return statements
            _line_no, line = entry
            head = line.split("(")[0].split()[0] if line else ""
            if head in stop or line in ("END-IF", "ELSE", "END-PERFORM",
                                        "END-FOR"):
                return statements
            if line.startswith("PROCEDURE "):
                return statements
            statements.append(self._statement())

    def _statement(self) -> ast.Stmt:
        line_no, line = self._next()
        try:
            return self._dispatch(line)
        except ProgramSyntaxError:
            raise
        except ReproError:
            raise
        except Exception as error:  # tokenizer edge cases -> syntax error
            raise ProgramSyntaxError(
                f"cannot parse {line!r}: {error}", line_no
            ) from error

    def _dispatch(self, line: str) -> ast.Stmt:
        # -- compound statements ---------------------------------------
        if line.startswith("IF "):
            condition = parse_expression(line[3:])
            then = self._block(stop=set())
            _no, marker = self._next()
            orelse: list[ast.Stmt] = []
            if marker == "ELSE":
                orelse = self._block(stop=set())
                _no, marker = self._next()
            if marker != "END-IF":
                raise ProgramSyntaxError(
                    f"expected END-IF, got {marker!r}"
                )
            return ast.If(condition, tuple(then), tuple(orelse))
        if line.startswith("PERFORM WHILE "):
            condition = parse_expression(line[len("PERFORM WHILE "):])
            body = self._block(stop=set())
            _no, marker = self._next()
            if marker != "END-PERFORM":
                raise ProgramSyntaxError(
                    f"expected END-PERFORM, got {marker!r}"
                )
            return ast.While(condition, tuple(body))
        if line.startswith("FOR EACH "):
            match = re.match(r"^FOR EACH (\S+) IN (\S+)$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed FOR EACH: {line!r}")
            body = self._block(stop=set())
            _no, marker = self._next()
            if marker != "END-FOR":
                raise ProgramSyntaxError(
                    f"expected END-FOR, got {marker!r}"
                )
            return ast.ForEachRow(match.group(1), match.group(2),
                                  tuple(body))

        # -- leaf statements (trailing period) ---------------------------
        if not line.endswith("."):
            raise ProgramSyntaxError(f"missing period: {line!r}")
        return self._leaf(line[:-1])

    def _leaf(self, line: str) -> ast.Stmt:
        # host language -------------------------------------------------
        if line.startswith("MOVE "):
            expr_text, _sep, var = line[5:].rpartition(" TO ")
            return ast.Assign(var.strip(), parse_expression(expr_text))
        if line.startswith("DISPLAY "):
            return ast.WriteTerminal(_parse_exprs(line[8:]))
        if line == "DISPLAY":
            return ast.WriteTerminal(())
        if line.startswith("ACCEPT "):
            rest = line[7:]
            match = re.match(r"^(\S+) PROMPT '([^']*)'$", rest)
            if match:
                return ast.ReadTerminal(match.group(1), match.group(2))
            return ast.ReadTerminal(rest.strip())
        if line.startswith("READ "):
            match = re.match(r"^READ (\S+) INTO (\S+)$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed READ: {line!r}")
            return ast.ReadFile(match.group(1), match.group(2))
        if line.startswith("WRITE "):
            body, _sep, file_name = line[6:].rpartition(" TO ")
            return ast.WriteFile(file_name.strip(), _parse_exprs(body))
        if line.startswith("BIND FIRST "):
            match = re.match(r"^BIND FIRST (\S+) FROM (\S+)$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed BIND FIRST: {line!r}")
            return ast.BindFirstRow(match.group(1), match.group(2))
        if line.startswith("PERFORM "):
            match = re.match(r"^PERFORM ([A-Z0-9\-#]+)\((.*)\)$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed PERFORM: {line!r}")
            return ast.Call(match.group(1), _parse_exprs(match.group(2)))

        # network DML ----------------------------------------------------
        if line.startswith("FIND ANY "):
            rest = line[len("FIND ANY "):]
            record, _sep, using = rest.partition(" USING ")
            return ast.NetFindAny(record.strip(), _parse_pairs(using))
        if line.startswith("FIND FIRST "):
            match = re.match(r"^FIND FIRST (\S+) WITHIN (\S+)$", line)
            return ast.NetFindFirst(match.group(1), match.group(2))
        if line.startswith("FIND NEXT "):
            match = re.match(
                r"^FIND NEXT (\S+) WITHIN (\S+)(?: USING (.+))?$", line)
            if match.group(3):
                return ast.NetFindNextUsing(match.group(1), match.group(2),
                                            _parse_pairs(match.group(3)))
            return ast.NetFindNext(match.group(1), match.group(2))
        if line.startswith("FIND OWNER WITHIN "):
            return ast.NetFindOwner(line[len("FIND OWNER WITHIN "):])
        if line.startswith("FIND CURRENT "):
            return ast.NetFindCurrent(line[len("FIND CURRENT "):].strip())
        if line.startswith("GET "):
            return ast.NetGet(line[4:].strip())
        if line.startswith("STORE "):
            match = re.match(r"^STORE (\S+) \((.*)\)$", line)
            return ast.NetStore(match.group(1),
                                _parse_pairs(match.group(2)))
        if line.startswith("MODIFY "):
            match = re.match(r"^MODIFY (\S+) \((.*)\)$", line)
            return ast.NetModify(match.group(1),
                                 _parse_pairs(match.group(2)))
        if line.startswith("ERASE "):
            rest = line[6:]
            if rest.endswith(" ALL MEMBERS"):
                return ast.NetErase(rest[:-len(" ALL MEMBERS")].strip(),
                                    all_members=True)
            return ast.NetErase(rest.strip())
        if line.startswith("CONNECT "):
            match = re.match(r"^CONNECT (\S+) TO (\S+)$", line)
            return ast.NetConnect(match.group(1), match.group(2))
        if line.startswith("DISCONNECT "):
            match = re.match(r"^DISCONNECT (\S+) FROM (\S+)$", line)
            return ast.NetDisconnect(match.group(1), match.group(2))
        if line.startswith("RECONNECT "):
            match = re.match(
                r"^RECONNECT (\S+) IN (\S+) TO ([A-Z0-9\-#]+)=(.+?)"
                r"( ENSURING OWNER)?$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed RECONNECT: {line!r}")
            return ast.NetReconnect(
                match.group(1), match.group(2), match.group(3),
                parse_expression(match.group(4)),
                ensure_owner=match.group(5) is not None,
            )
        if line.startswith("CALL DML("):
            inner = line[len("CALL DML("):-1]
            parts = _split_top_level(inner, ", ")
            verb = parse_expression(parts[0])
            record = parts[1].strip()
            pairs = _parse_pairs(", ".join(parts[2:])) if len(parts) > 2 \
                else ()
            return ast.NetGenericCall(verb, record, pairs)

        # relational DML ---------------------------------------------------
        if line.startswith("QUERY ["):
            match = re.match(
                r"^QUERY \[(.+)\] INTO (\S+?)(?: USING \((.*)\))?$", line)
            if match is None:
                raise ProgramSyntaxError(f"malformed QUERY: {line!r}")
            parameters = tuple(
                p.strip() for p in (match.group(3) or "").split(",")
                if p.strip()
            )
            return ast.RelQuery(match.group(1), match.group(2), parameters)
        if line.startswith("INSERT INTO "):
            match = re.match(r"^INSERT INTO (\S+) \((.*)\)$", line)
            return ast.RelInsert(match.group(1),
                                 _parse_pairs(match.group(2)))
        if line.startswith("DELETE FROM "):
            match = re.match(r"^DELETE FROM (\S+) WHERE (.+)$", line)
            pairs = _parse_pairs(
                ", ".join(_split_top_level(match.group(2), " AND "))
            )
            return ast.RelDelete(match.group(1), pairs)
        if line.startswith("UPDATE "):
            match = re.match(r"^UPDATE (\S+) SET (.+) WHERE (.+)$", line)
            equal = _parse_pairs(
                ", ".join(_split_top_level(match.group(3), " AND "))
            )
            return ast.RelUpdate(match.group(1), equal,
                                 _parse_pairs(match.group(2)))

        # hierarchical DML ----------------------------------------------------
        if line == "GU" or line.startswith("GU "):
            return ast.HierGU(_parse_ssas(line[2:]))
        if line == "GNP" or line.startswith("GNP "):
            return ast.HierGNP(_parse_ssas(line[3:]))
        if line == "GN" or line.startswith("GN "):
            return ast.HierGN(_parse_ssas(line[2:]))
        if line.startswith("ISRT "):
            match = re.match(r"^ISRT (\S+) \((.*?)\)(?: UNDER (.+))?$",
                             line)
            if match is None:
                raise ProgramSyntaxError(f"malformed ISRT: {line!r}")
            return ast.HierISRT(
                match.group(1), _parse_pairs(match.group(2)),
                _parse_ssas(match.group(3) or ""),
            )
        if line == "DLET":
            return ast.HierDLET()
        if line.startswith("REPL "):
            match = re.match(r"^REPL \((.*)\)$", line)
            return ast.HierREPL(_parse_pairs(match.group(1)))
        if line == "POSITION PARENT":
            return ast.HierPositionParent()

        raise ProgramSyntaxError(f"unrecognized statement {line!r}")


def parse_program(text: str) -> ast.Program:
    """Parse pseudo-COBOL program text into a :class:`Program`."""
    return _ProgramParser(text).parse()


def roundtrips(program: ast.Program) -> bool:
    """True when render -> parse reproduces the program exactly."""
    return parse_program(ast.render_program(program)) == program


__all__ = ["parse_program", "parse_expression", "ProgramSyntaxError",
           "roundtrips"]
