"""Builder helpers for constructing database programs compactly.

Raw Python values are auto-wrapped in :class:`Const`; strings are NOT
auto-converted to variables (pass :func:`v` explicitly), because the
difference between a literal and a variable is exactly what the
Section 3.2 variability analysis cares about.

The compound helpers (:func:`scan_set`, :func:`scan_set_using`) emit
the *canonical language templates* of Section 4.1 -- FIND FIRST
followed by a status-driven FIND NEXT loop -- which is also the shape
the program analyzer's template matcher recognizes.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.programs import ast
from repro.programs.ast import (
    Assign,
    Bin,
    Const,
    Expr,
    If,
    Program,
    ReadFile,
    ReadTerminal,
    Stmt,
    Var,
    While,
    WriteFile,
    WriteTerminal,
)


def lit(value: Any) -> Expr:
    """Wrap a raw value as a Const; pass Expr nodes through."""
    if isinstance(value, (Const, Var, Bin)):
        return value
    return Const(value)


def v(name: str) -> Var:
    """A program variable reference."""
    return Var(name)


def c(value: Any) -> Const:
    """A literal constant."""
    return Const(value)


def field(record: str, field_name: str) -> Var:
    """The RECORD.FIELD variable bound by GET."""
    return Var(f"{record}.{field_name}")


# -- expression combinators ---------------------------------------------------


def eq(left: Any, right: Any) -> Bin:
    """``left = right``."""
    return Bin("=", lit(left), lit(right))


def ne(left: Any, right: Any) -> Bin:
    """``left <> right``."""
    return Bin("<>", lit(left), lit(right))


def lt(left: Any, right: Any) -> Bin:
    """``left < right``."""
    return Bin("<", lit(left), lit(right))


def le(left: Any, right: Any) -> Bin:
    """``left <= right``."""
    return Bin("<=", lit(left), lit(right))


def gt(left: Any, right: Any) -> Bin:
    """``left > right``."""
    return Bin(">", lit(left), lit(right))


def ge(left: Any, right: Any) -> Bin:
    """``left >= right``."""
    return Bin(">=", lit(left), lit(right))


def add(left: Any, right: Any) -> Bin:
    """``left + right``."""
    return Bin("+", lit(left), lit(right))


def and_(left: Any, right: Any) -> Bin:
    """Boolean AND (short-circuit)."""
    return Bin("AND", lit(left), lit(right))


def or_(left: Any, right: Any) -> Bin:
    """Boolean OR (short-circuit)."""
    return Bin("OR", lit(left), lit(right))


# -- host statements --------------------------------------------------------


def assign(var: str, value: Any) -> Assign:
    """``MOVE value TO var``."""
    return Assign(var, lit(value))


def display(*values: Any) -> WriteTerminal:
    """``DISPLAY`` values to the terminal (space-joined)."""
    return WriteTerminal(tuple(lit(value) for value in values))


def accept(var: str, prompt: str | None = None) -> ReadTerminal:
    """``ACCEPT`` a terminal line into a variable."""
    return ReadTerminal(var, prompt)


def read_file(file_name: str, var: str) -> ReadFile:
    """``READ file INTO var`` (non-database file)."""
    return ReadFile(file_name, var)


def write_file(file_name: str, *values: Any) -> WriteFile:
    """``WRITE`` values to a non-database file."""
    return WriteFile(file_name, tuple(lit(value) for value in values))


def if_(condition: Any, then: Sequence[Stmt],
        orelse: Sequence[Stmt] = ()) -> If:
    """``IF condition ... [ELSE ...] END-IF``."""
    return If(lit(condition), tuple(then), tuple(orelse))


def while_(condition: Any, body: Sequence[Stmt]) -> While:
    """``PERFORM WHILE condition ... END-PERFORM``."""
    return While(lit(condition), tuple(body))


def for_each_row(row_var: str, rows_var: str,
                 body: Sequence[Stmt]) -> ast.ForEachRow:
    """Iterate a query result, binding row columns."""
    return ast.ForEachRow(row_var, rows_var, tuple(body))


def call(procedure: str, *arguments: Any) -> ast.Call:
    """``PERFORM`` a named procedure with arguments."""
    return ast.Call(procedure, tuple(lit(a) for a in arguments))


# -- network DML --------------------------------------------------------------


def _kv(values: dict[str, Any]) -> tuple[tuple[str, Expr], ...]:
    return tuple((name, lit(value)) for name, value in values.items())


def find_any(record: str, **using: Any) -> ast.NetFindAny:
    """``FIND ANY record USING field values``."""
    return ast.NetFindAny(record, _kv(using))


def find_first(record: str, set_name: str) -> ast.NetFindFirst:
    """``FIND FIRST record WITHIN set``."""
    return ast.NetFindFirst(record, set_name)


def find_next(record: str, set_name: str) -> ast.NetFindNext:
    """``FIND NEXT record WITHIN set``."""
    return ast.NetFindNext(record, set_name)


def find_next_using(record: str, set_name: str,
                    **using: Any) -> ast.NetFindNextUsing:
    """``FIND NEXT ... USING`` (the paper's template (B))."""
    return ast.NetFindNextUsing(record, set_name, _kv(using))


def find_owner(set_name: str) -> ast.NetFindOwner:
    """``FIND OWNER WITHIN set``."""
    return ast.NetFindOwner(set_name)


def get(record: str) -> ast.NetGet:
    """``GET``: bind the current record's fields."""
    return ast.NetGet(record)


def store(record: str, **values: Any) -> ast.NetStore:
    """``STORE record`` with field values."""
    return ast.NetStore(record, _kv(values))


def modify(record: str, **values: Any) -> ast.NetModify:
    """``MODIFY`` the current record."""
    return ast.NetModify(record, _kv(values))


def erase(record: str, all_members: bool = False) -> ast.NetErase:
    """``ERASE`` the current record (optionally ALL MEMBERS)."""
    return ast.NetErase(record, all_members)


def connect(record: str, set_name: str) -> ast.NetConnect:
    """``CONNECT`` the current record to a set occurrence."""
    return ast.NetConnect(record, set_name)


def disconnect(record: str, set_name: str) -> ast.NetDisconnect:
    """``DISCONNECT`` the current record from a set."""
    return ast.NetDisconnect(record, set_name)


def generic_call(verb: Any, record: str, **values: Any) -> ast.NetGenericCall:
    """A call-interface DML request (verb may be an expression, Section 3.2)."""
    return ast.NetGenericCall(lit(verb), record, _kv(values))


def scan_set(record: str, set_name: str,
             body: Sequence[Stmt]) -> list[Stmt]:
    """The canonical "process all members" template (Section 4.1):

    FIND FIRST record WITHIN set;
    PERFORM WHILE DB-STATUS = OK: GET; <body>; FIND NEXT.
    """
    return [
        find_first(record, set_name),
        while_(ast.status_ok(), [
            get(record),
            *body,
            find_next(record, set_name),
        ]),
    ]


def scan_system(record: str, set_name: str,
                body: Sequence[Stmt]) -> list[Stmt]:
    """Scan a SYSTEM-owned set (database entry sweep)."""
    return scan_set(record, set_name, body)


def process_first(record: str, set_name: str,
                  body: Sequence[Stmt]) -> list[Stmt]:
    """The Section 3.2 'process the first' shape: the programmer
    "may have intended to process all dependent records ... but may
    have written a program which will process the first"."""
    return [
        find_first(record, set_name),
        if_(ast.status_ok(), [get(record), *body]),
    ]


# -- relational DML ------------------------------------------------------------


def query(sequel: str, into_var: str,
          parameters: Iterable[str] = ()) -> ast.RelQuery:
    """A SEQUEL query bound into a rows variable."""
    return ast.RelQuery(sequel, into_var, tuple(parameters))


def rel_insert(relation: str, **values: Any) -> ast.RelInsert:
    """Relational INSERT."""
    return ast.RelInsert(relation, _kv(values))


def rel_delete(relation: str, **equal: Any) -> ast.RelDelete:
    """Relational DELETE by equality conditions."""
    return ast.RelDelete(relation, _kv(equal))


def rel_update(relation: str, equal: dict[str, Any],
               updates: dict[str, Any]) -> ast.RelUpdate:
    """Relational UPDATE by equality conditions."""
    return ast.RelUpdate(relation, _kv(equal), _kv(updates))


# -- hierarchical DML -------------------------------------------------------------


def ssa(segment: str, qual_field: str | None = None, op: str = "=",
        value: Any = None) -> ast.SsaSpec:
    """A DL/I segment search argument."""
    return ast.SsaSpec(
        segment, qual_field, op,
        lit(value) if qual_field is not None else None,
    )


def gu(*ssas: ast.SsaSpec) -> ast.HierGU:
    """DL/I GET UNIQUE."""
    return ast.HierGU(tuple(ssas))


def gn(*ssas: ast.SsaSpec) -> ast.HierGN:
    """DL/I GET NEXT."""
    return ast.HierGN(tuple(ssas))


def gnp(*ssas: ast.SsaSpec) -> ast.HierGNP:
    """DL/I GET NEXT WITHIN PARENT."""
    return ast.HierGNP(tuple(ssas))


def isrt(segment: str, values: dict[str, Any],
         *parent_ssas: ast.SsaSpec) -> ast.HierISRT:
    """DL/I ISRT under a parent path."""
    return ast.HierISRT(segment, _kv(values), tuple(parent_ssas))


def dlet() -> ast.HierDLET:
    """DL/I DLET (current segment and subtree)."""
    return ast.HierDLET()


def repl(**values: Any) -> ast.HierREPL:
    """DL/I REPL (update the current segment)."""
    return ast.HierREPL(_kv(values))


# -- program ----------------------------------------------------------------


def program(name: str, model: str, schema_name: str,
            statements: Sequence[Stmt],
            procedures: Sequence[ast.Procedure] = ()) -> Program:
    """Assemble a Program from statements and procedures."""
    return Program(name, model, schema_name, tuple(statements),
                   tuple(procedures))


def procedure(name: str, parameters: Sequence[str],
              body: Sequence[Stmt]) -> ast.Procedure:
    """Assemble a named Procedure."""
    return ast.Procedure(name, tuple(parameters), tuple(body))
