"""DBTG data-manipulation language session.

The verbs follow the 1978 CODASYL DML the paper quotes in Section 4.1::

    MOVE 'D2' TO D# IN DEPT.
    FIND ANY DEPT.
    IF no such occurrence is found GO TO NOTFD.
    MOVE 3 TO YEAR-OF-SERVICE IN EMP.
    NEXT. FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE.
    IF no other occurrences GO TO NEXT.

A session owns a user work area (UWA) and a currency table.  Every verb
sets :attr:`DMLSession.status`; navigational misses are status codes,
not exceptions, so programs can exhibit (and conversions must preserve)
the Section 3.2 status-code behaviors.  Genuine integrity violations
still raise.
"""

from __future__ import annotations

from typing import Any

from repro.engine.storage import Record
from repro.errors import CurrencyError, ExistenceViolation
from repro.network.currency import CurrencyTable
from repro.network.database import NetworkDatabase
from repro.network.sets import SYSTEM_OWNER_RID
from repro.schema.model import Insertion, Retention, SetType

#: DBTG-style status codes.
STATUS_OK = "0000"
STATUS_END_OF_SET = "0307"     # FIND NEXT/PRIOR ran off the occurrence
STATUS_NOT_FOUND = "0326"      # FIND ANY / FIND ... USING found nothing
STATUS_NO_CURRENCY = "0306"    # verb issued without required currency
STATUS_EMPTY_SET = "0307"      # FIND FIRST of an empty occurrence


class DMLSession:
    """One run unit's view of a network database."""

    def __init__(self, db: NetworkDatabase):
        self.db = db
        self.currency = CurrencyTable()
        self.status = STATUS_OK
        self.uwa: dict[str, dict[str, Any]] = {
            name: {} for name in db.schema.records
        }

    # -- user work area ---------------------------------------------------

    def move(self, value: Any, record_name: str, field_name: str) -> None:
        """MOVE value TO field IN record (fills the UWA)."""
        self.db.schema.record(record_name).field(field_name)
        self.uwa[record_name][field_name] = value

    def uwa_values(self, record_name: str) -> dict[str, Any]:
        return dict(self.uwa[record_name])

    # -- internal helpers ---------------------------------------------------

    def _ok(self, record: Record,
            retain_sets: frozenset[str] = frozenset()) -> Record:
        self.status = STATUS_OK
        self.currency.note(self.db.schema, record.type_name, record.rid,
                           retain_sets)
        return record

    def _miss(self, status: str) -> None:
        self.status = status
        return None

    def current_record(self) -> Record | None:
        """The record identified by the current of run-unit."""
        position = self.currency.run_unit
        if position is None:
            return None
        return self.db.store(position.record_name).peek(position.rid)

    def current_matches(self, record_name: str) -> bool:
        """Is the current of run-unit an instance of ``record_name``?
        (Overridden by emulation layers that rename record types.)"""
        record = self.current_record()
        return record is not None and record.type_name == record_name

    def _set_position(self, set_name: str) -> tuple[SetType, int | None]:
        """Resolve the current of set into (set type, owner rid)."""
        set_type = self.db.schema.set_type(set_name)
        if set_type.system_owned:
            return set_type, SYSTEM_OWNER_RID
        position = self.currency.of_set(set_name)
        if position is None:
            return set_type, None
        if position.record_name == set_type.owner:
            return set_type, position.rid
        # Current of set is a member: its occurrence is its owner's.
        owner_rid = self.db.set_store(set_name).owner(position.rid)
        return set_type, owner_rid

    # -- FIND verbs ----------------------------------------------------------

    def find_any(self, record_name: str,
                 **field_values: Any) -> Record | None:
        """FIND ANY record USING its CALC key (values from the UWA,
        overridable by keyword arguments)."""
        self.db.metrics.dml_calls += 1
        record_type = self.db.schema.record(record_name)
        # Explicit values identify the record on their own; the UWA is
        # consulted only for the MOVE ... FIND ANY idiom (no arguments).
        values = dict(field_values) if field_values \
            else dict(self.uwa[record_name])
        calc_supplied = record_type.calc_keys and all(
            values.get(k) is not None for k in record_type.calc_keys
        )
        if calc_supplied:
            key = tuple(values.get(k) for k in record_type.calc_keys)
            index = self.db.calc_index(record_name)
            rids = index.lookup(key)
            for rid in rids:
                record = self.db.store(record_name).fetch(rid)
                if all(self.db.read_field(record, k) == v
                       for k, v in values.items()):
                    return self._ok(record)
            return self._miss(STATUS_NOT_FOUND)
        # No usable CALC key: exhaustive scan on the supplied values.
        # read_field resolves VIRTUAL fields, so locates survive
        # virtualization/extraction restructurings.
        for record in self.db.store(record_name).scan():
            if all(self.db.read_field(record, k) == v
                   for k, v in values.items()):
                return self._ok(record)
        return self._miss(STATUS_NOT_FOUND)

    def find_first(self, record_name: str, set_name: str) -> Record | None:
        """FIND FIRST record WITHIN set."""
        self.db.metrics.dml_calls += 1
        set_type, owner_rid = self._set_position(set_name)
        if owner_rid is None:
            return self._miss(STATUS_NO_CURRENCY)
        if set_type.member != record_name:
            raise CurrencyError(
                f"{record_name} is not the member of set {set_name}"
            )
        self.db.metrics.set_traversals += 1
        first_rid = self.db.set_store(set_name).first(owner_rid)
        if first_rid is None:
            return self._miss(STATUS_EMPTY_SET)
        return self._ok(self.db.store(record_name).fetch(first_rid))

    def find_last(self, record_name: str, set_name: str) -> Record | None:
        """FIND LAST record WITHIN set."""
        self.db.metrics.dml_calls += 1
        set_type, owner_rid = self._set_position(set_name)
        if owner_rid is None:
            return self._miss(STATUS_NO_CURRENCY)
        self.db.metrics.set_traversals += 1
        last_rid = self.db.set_store(set_name).last(owner_rid)
        if last_rid is None:
            return self._miss(STATUS_EMPTY_SET)
        return self._ok(self.db.store(record_name).fetch(last_rid))

    def find_next(self, record_name: str, set_name: str) -> Record | None:
        """FIND NEXT record WITHIN set (from the current of set)."""
        self.db.metrics.dml_calls += 1
        set_type = self.db.schema.set_type(set_name)
        position = self.currency.of_set(set_name)
        if position is None:
            return self._miss(STATUS_NO_CURRENCY)
        if position.record_name == set_type.owner or (
                set_type.system_owned
                and position.record_name != set_type.member):
            # Positioned on the owner: NEXT means FIRST.
            return self.find_first(record_name, set_name)
        self.db.metrics.set_traversals += 1
        next_rid = self.db.set_store(set_name).next_after(position.rid)
        if next_rid is None:
            return self._miss(STATUS_END_OF_SET)
        return self._ok(self.db.store(record_name).fetch(next_rid))

    def find_prior(self, record_name: str, set_name: str) -> Record | None:
        """FIND PRIOR record WITHIN set."""
        self.db.metrics.dml_calls += 1
        set_type = self.db.schema.set_type(set_name)
        position = self.currency.of_set(set_name)
        if position is None:
            return self._miss(STATUS_NO_CURRENCY)
        if position.record_name == set_type.owner:
            return self.find_last(record_name, set_name)
        self.db.metrics.set_traversals += 1
        prior_rid = self.db.set_store(set_name).prior_before(position.rid)
        if prior_rid is None:
            return self._miss(STATUS_END_OF_SET)
        return self._ok(self.db.store(record_name).fetch(prior_rid))

    def find_next_using(self, record_name: str, set_name: str,
                        *using_fields: str) -> Record | None:
        """FIND NEXT record WITHIN set USING fields.

        Scans forward from the current of set for the next member whose
        ``using_fields`` equal the UWA values (the Section 4.1 template:
        ``FIND NEXT EMP WITHIN ED USING YEAR-OF-SERVICE``).
        """
        self.db.metrics.dml_calls += 1
        wanted = {
            field_name: self.uwa[record_name].get(field_name)
            for field_name in using_fields
        }
        while True:
            record = self.find_next(record_name, set_name)
            if record is None:
                return None  # status already set by find_next
            # read_field: USING comparisons see VIRTUAL fields through
            # their sets, so keyed scans survive virtualization.
            if all(self.db.read_field(record, k) == v
                   for k, v in wanted.items()):
                return record

    def find_owner(self, set_name: str) -> Record | None:
        """FIND OWNER WITHIN set."""
        self.db.metrics.dml_calls += 1
        set_type = self.db.schema.set_type(set_name)
        if set_type.system_owned:
            return self._miss(STATUS_NOT_FOUND)
        position = self.currency.of_set(set_name)
        if position is None:
            return self._miss(STATUS_NO_CURRENCY)
        if position.record_name == set_type.owner:
            return self._ok(self.db.store(set_type.owner).fetch(position.rid))
        owner_rid = self.db.set_store(set_name).owner(position.rid)
        if owner_rid is None:
            return self._miss(STATUS_NOT_FOUND)
        self.db.metrics.set_traversals += 1
        return self._ok(self.db.store(set_type.owner).fetch(owner_rid))

    def find_current(self, record_name: str) -> Record | None:
        """FIND CURRENT OF record (re-establish run-unit currency)."""
        self.db.metrics.dml_calls += 1
        position = self.currency.of_record(record_name)
        if position is None:
            return self._miss(STATUS_NO_CURRENCY)
        record = self.db.store(record_name).peek(position.rid)
        if record is None:
            return self._miss(STATUS_NOT_FOUND)
        return self._ok(record)

    # -- GET ------------------------------------------------------------------

    def get(self) -> dict[str, Any] | None:
        """GET: read the current of run-unit into the UWA (virtual
        fields resolved through their sets), returning the values."""
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            return self._miss(STATUS_NO_CURRENCY)
        self.db.store(record.type_name).fetch(record.rid)  # count the read
        values = self.db.record_values(record)
        self.uwa[record.type_name].update(values)
        self.status = STATUS_OK
        return values

    # -- STORE -----------------------------------------------------------------

    def store(self, record_name: str,
              values: dict[str, Any] | None = None) -> Record:
        """STORE record.

        Values default to the UWA.  AUTOMATIC set membership is
        established per CODASYL set selection: by the value of a
        VIRTUAL field routed through the set when one is supplied,
        else by the current of set.  A MANDATORY AUTOMATIC set with no
        selectable owner fails the store -- the Section 3.1 guarantee
        ("if an attempt is made to insert a course offering for which
        there is ... no corresponding course ..., the insertion will
        fail").
        """
        self.db.metrics.dml_calls += 1
        record_type = self.db.schema.record(record_name)
        raw = dict(self.uwa[record_name]) if values is None else dict(values)
        # Virtual-field values route set selection, not storage.
        selections: dict[str, Any] = {}
        stored: dict[str, Any] = {}
        for name, value in raw.items():
            fld = record_type.field(name)
            if fld.is_virtual:
                selections[fld.virtual_via] = (fld.virtual_using, value)
            else:
                stored[name] = value

        plan: list[tuple[str, int]] = []
        for set_type in self.db.schema.sets_with_member(record_name):
            if set_type.insertion is not Insertion.AUTOMATIC:
                continue
            if set_type.system_owned:
                plan.append((set_type.name, SYSTEM_OWNER_RID))
                continue
            owner_rid = self._select_owner(set_type, selections)
            if owner_rid is None:
                if set_type.retention is Retention.MANDATORY:
                    raise ExistenceViolation(
                        f"STORE {record_name}: no owner selectable for "
                        f"MANDATORY AUTOMATIC set {set_type.name}"
                    )
                continue  # OPTIONAL: stored unconnected
            plan.append((set_type.name, owner_rid))

        record = self.db.insert_record(record_name, stored)
        for set_name, owner_rid in plan:
            self.db.connect(set_name, owner_rid, record.rid)
        return self._ok(record)

    def _select_owner(self, set_type: SetType,
                      selections: dict[str, Any]) -> int | None:
        if set_type.name in selections:
            using_field, value = selections[set_type.name]
            owners = self.db.select_owners_by_value(set_type, using_field,
                                                    value)
            if not owners:
                return None
            if len(owners) == 1:
                return owners[0].rid
            # Ambiguous by value (keys unique only per group, as with an
            # interposed record): disambiguate through the candidate
            # owners' own set currencies -- CODASYL SET SELECTION ...
            # THRU OWNER.
            for owner in owners:
                if self._consistent_with_currency(owner):
                    return owner.rid
            return owners[0].rid
        position = self.currency.of_set(set_type.name)
        if position is None:
            return None
        if position.record_name == set_type.owner:
            return position.rid
        return self.db.set_store(set_type.name).owner(position.rid)

    def _consistent_with_currency(self, candidate) -> bool:
        """Does this candidate owner sit in the currently-selected
        occurrence of every set it is itself a member of?"""
        for upper in self.db.schema.sets_with_member(candidate.type_name):
            if upper.system_owned:
                continue
            position = self.currency.of_set(upper.name)
            if position is None:
                continue
            if position.record_name == upper.owner:
                wanted_owner = position.rid
            else:
                wanted_owner = self.db.set_store(upper.name).owner(
                    position.rid
                )
            actual_owner = self.db.set_store(upper.name).owner(candidate.rid)
            if wanted_owner is not None and actual_owner != wanted_owner:
                return False
        return True

    # -- MODIFY / ERASE ----------------------------------------------------------

    def modify(self, updates: dict[str, Any]) -> Record | None:
        """MODIFY the current of run-unit."""
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            return self._miss(STATUS_NO_CURRENCY)
        updated = self.db.update_record(record.type_name, record.rid, updates)
        return self._ok(updated)

    def erase(self, all_members: bool = False) -> None:
        """ERASE the current of run-unit (optionally ALL MEMBERS)."""
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            self.status = STATUS_NO_CURRENCY
            return
        self.db.delete_record(record.type_name, record.rid,
                              all_members=all_members)
        self.currency.forget_record(record.type_name, record.rid)
        self.status = STATUS_OK

    # -- CONNECT / DISCONNECT ------------------------------------------------------

    def connect(self, set_name: str) -> None:
        """CONNECT the current of run-unit to the current occurrence of
        the set."""
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            self.status = STATUS_NO_CURRENCY
            return
        set_type, owner_rid = self._set_position(set_name)
        if owner_rid is None:
            # Fall back to the current of the owner *record type* (set
            # selection thru owner) -- the usual idiom when the member
            # was re-found after positioning the target owner.
            owner_position = self.currency.of_record(set_type.owner)
            if owner_position is not None:
                owner_rid = owner_position.rid
        if owner_rid is None:
            self.status = STATUS_NO_CURRENCY
            return
        self.db.connect(set_name, owner_rid, record.rid)
        self.status = STATUS_OK

    def reconnect(self, set_name: str, using_field: str, value: Any,
                  ensure_owner: bool = False) -> None:
        """Move the current of run-unit to the owner of ``set_name``
        whose ``using_field`` equals ``value``.

        This is the conversion-inserted sequence for programs that used
        to MODIFY a now-virtual member field (Su, Section 4.1: "the
        system will insert statements to traverse this relationship and
        continue to enforce the ... relationship").  With
        ``ensure_owner`` a missing owner is created first.
        """
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            self.status = STATUS_NO_CURRENCY
            return
        set_type = self.db.schema.set_type(set_name)
        owners = self.db.select_owners_by_value(set_type, using_field, value)
        owner_rid: int | None = None
        for owner in owners:
            if self._consistent_with_currency(owner):
                owner_rid = owner.rid
                break
        if owner_rid is None and owners:
            owner_rid = owners[0].rid
        if owner_rid is None:
            if not ensure_owner:
                self.status = STATUS_NOT_FOUND
                return
            saved = self.currency.run_unit
            created = self.store(set_type.owner, {using_field: value})
            owner_rid = created.rid
            self.currency.run_unit = saved
        self.db.disconnect(set_name, record.rid)
        self.db.connect(set_name, owner_rid, record.rid)
        self.status = STATUS_OK

    def disconnect(self, set_name: str) -> None:
        """DISCONNECT the current of run-unit from the set.

        Disconnecting a MANDATORY member leaves the database
        inconsistent; this is caught at the run-unit boundary (the
        paper's consistency contract), not here.
        """
        self.db.metrics.dml_calls += 1
        record = self.current_record()
        if record is None:
            self.status = STATUS_NO_CURRENCY
            return
        self.db.disconnect(set_name, record.rid)
        self.status = STATUS_OK
