"""Owner-coupled set occurrences.

A :class:`SetStore` maintains the occurrences of one set type: which
owner each member is connected to, and the member order within each
occurrence (sorted by the set's order keys, else chained in insertion
order).  SYSTEM-owned sets have a single occurrence identified by owner
rid 0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.ordering import orderable
from repro.engine.savepoint import Savepoint, check_owner
from repro.errors import IntegrityError, UniquenessViolation
from repro.schema.model import SetType

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.database import NetworkDatabase

#: Owner rid of the single occurrence of a SYSTEM-owned set.
SYSTEM_OWNER_RID = 0


class SetStore:
    """Occurrences of one set type."""

    def __init__(self, set_type: SetType, db: "NetworkDatabase"):
        self.set_type = set_type
        self._db = db
        self._owner_of: dict[int, int] = {}          # member rid -> owner rid
        self._members: dict[int, list[int]] = {}     # owner rid -> member rids
        self._seq: dict[int, int] = {}               # member rid -> arrival seq
        self._next_seq = 0

    # -- internals ------------------------------------------------------

    def _order_key(self, member_rid: int) -> tuple:
        """Sort key of a member: order-key field values, then arrival."""
        record = self._db.store(self.set_type.member).peek(member_rid)
        values = tuple(
            record.get(key) if record is not None else None
            for key in self.set_type.order_keys
        )
        return (orderable(values), self._seq.get(member_rid, 0))

    def _key_values(self, member_rid: int) -> tuple:
        record = self._db.store(self.set_type.member).peek(member_rid)
        return tuple(
            record.get(key) if record is not None else None
            for key in self.set_type.order_keys
        )

    # -- mutation ---------------------------------------------------------

    def connect(self, owner_rid: int, member_rid: int) -> None:
        """Insert a member into an owner's occurrence, in set order."""
        if member_rid in self._owner_of:
            raise IntegrityError(
                f"set {self.set_type.name}: member rid {member_rid} "
                "is already connected"
            )
        occurrence = self._members.setdefault(owner_rid, [])
        if self.set_type.order_keys and not self.set_type.allow_duplicates:
            new_key = self._key_values(member_rid)
            for existing in occurrence:
                if self._key_values(existing) == new_key:
                    raise UniquenessViolation(
                        f"set {self.set_type.name}: duplicate set key "
                        f"{new_key!r} within occurrence of owner "
                        f"{owner_rid}"
                    )
        self._next_seq += 1
        self._seq[member_rid] = self._next_seq
        self._owner_of[member_rid] = owner_rid
        if self.set_type.order_keys:
            key = self._order_key(member_rid)
            position = 0
            while (position < len(occurrence)
                   and self._order_key(occurrence[position]) <= key):
                position += 1
            occurrence.insert(position, member_rid)
        else:
            occurrence.append(member_rid)

    def connect_many(self, owner_rid: int, member_rids: list[int]) -> None:
        """Bulk :meth:`connect` into one owner's occurrence.

        Equivalent to connecting each member in order (same final set
        order: order-key values, then arrival sequence) but the
        occurrence is sorted once and the duplicate-key check uses a
        hash set instead of a per-member scan.
        """
        if not member_rids:
            return
        for member_rid in member_rids:
            if member_rid in self._owner_of:
                raise IntegrityError(
                    f"set {self.set_type.name}: member rid {member_rid} "
                    "is already connected"
                )
        occurrence = self._members.setdefault(owner_rid, [])
        if self.set_type.order_keys and not self.set_type.allow_duplicates:
            seen = {self._key_values(existing) for existing in occurrence}
            for member_rid in member_rids:
                new_key = self._key_values(member_rid)
                if new_key in seen:
                    raise UniquenessViolation(
                        f"set {self.set_type.name}: duplicate set key "
                        f"{new_key!r} within occurrence of owner "
                        f"{owner_rid}"
                    )
                seen.add(new_key)
        for member_rid in member_rids:
            self._next_seq += 1
            self._seq[member_rid] = self._next_seq
            self._owner_of[member_rid] = owner_rid
        occurrence.extend(member_rids)
        if self.set_type.order_keys:
            # _order_key ends in the arrival sequence, so one sort
            # reproduces the incremental insert-after-equals order.
            occurrence.sort(key=self._order_key)

    def disconnect(self, member_rid: int) -> int | None:
        """Remove a member from its occurrence; return its old owner."""
        owner_rid = self._owner_of.pop(member_rid, None)
        if owner_rid is None:
            return None
        occurrence = self._members.get(owner_rid, [])
        if member_rid in occurrence:
            occurrence.remove(member_rid)
            if not occurrence:
                del self._members[owner_rid]
        self._seq.pop(member_rid, None)
        return owner_rid

    def reposition(self, member_rid: int) -> None:
        """Re-sort a member after its order-key fields were modified."""
        if not self.set_type.order_keys:
            return
        owner_rid = self._owner_of.get(member_rid)
        if owner_rid is None:
            return
        occurrence = self._members[owner_rid]
        occurrence.remove(member_rid)
        key = self._order_key(member_rid)
        position = 0
        while (position < len(occurrence)
               and self._order_key(occurrence[position]) <= key):
            position += 1
        occurrence.insert(position, member_rid)

    def drop_owner(self, owner_rid: int) -> list[int]:
        """Forget an owner's occurrence, returning its member rids."""
        members = self._members.pop(owner_rid, [])
        for member_rid in members:
            self._owner_of.pop(member_rid, None)
            self._seq.pop(member_rid, None)
        return members

    # -- queries ---------------------------------------------------------

    def owner(self, member_rid: int) -> int | None:
        return self._owner_of.get(member_rid)

    def is_connected(self, member_rid: int) -> bool:
        return member_rid in self._owner_of

    def members(self, owner_rid: int) -> list[int]:
        """Member rids of one occurrence, in set order (a copy)."""
        return list(self._members.get(owner_rid, []))

    def first(self, owner_rid: int) -> int | None:
        occurrence = self._members.get(owner_rid, [])
        return occurrence[0] if occurrence else None

    def last(self, owner_rid: int) -> int | None:
        occurrence = self._members.get(owner_rid, [])
        return occurrence[-1] if occurrence else None

    def next_after(self, member_rid: int) -> int | None:
        """The member after ``member_rid`` in its occurrence, if any."""
        owner_rid = self._owner_of.get(member_rid)
        if owner_rid is None:
            return None
        occurrence = self._members.get(owner_rid, [])
        index = occurrence.index(member_rid)
        if index + 1 < len(occurrence):
            return occurrence[index + 1]
        return None

    def prior_before(self, member_rid: int) -> int | None:
        owner_rid = self._owner_of.get(member_rid)
        if owner_rid is None:
            return None
        occurrence = self._members.get(owner_rid, [])
        index = occurrence.index(member_rid)
        if index > 0:
            return occurrence[index - 1]
        return None

    def owners(self) -> list[int]:
        """Owner rids that currently have a non-empty occurrence."""
        return list(self._members)

    def occurrence_count(self) -> int:
        return len(self._members)

    # -- savepoints -------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture occurrence membership and order (lists copied)."""
        return Savepoint("set-store", id(self), payload=(
            dict(self._owner_of),
            {owner: list(members)
             for owner, members in self._members.items()},
            dict(self._seq),
            self._next_seq,
        ))

    def rollback(self, savepoint: Savepoint) -> None:
        check_owner(savepoint, "set-store", self)
        owner_of, members, seq, next_seq = savepoint.payload
        self._owner_of = dict(owner_of)
        self._members = {
            owner: list(member_rids)
            for owner, member_rids in members.items()
        }
        self._seq = dict(seq)
        self._next_seq = next_seq

    def state_fingerprint_data(self) -> tuple:
        return (
            self.set_type.name,
            self._next_seq,
            tuple(
                (owner, tuple(members))
                for owner, members in self._members.items()
            ),
            tuple(sorted(self._owner_of.items())),
            tuple(sorted(self._seq.items())),
        )
