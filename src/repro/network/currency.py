"""Currency indicators.

CODASYL navigation is stateful: every successful FIND/STORE updates the
*current of run-unit*, the *current of record type*, and the *current of
set* for every set the record participates in.  Section 2.1.2 singles
out currency as what makes DML emulation "extremely complicated" -- the
conversion software "may require ... status values (e.g., currency)" --
so the model keeps the full table explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schema.model import Schema


@dataclass(frozen=True)
class CurrencyPosition:
    """A currency value: which record, of which type.

    For currents-of-set the position may also be the *owner* of the set
    occurrence (after FIND OWNER), so the record type name matters.
    """

    record_name: str
    rid: int


@dataclass
class CurrencyTable:
    """All currency indicators of one run unit."""

    run_unit: CurrencyPosition | None = None
    records: dict[str, CurrencyPosition] = field(default_factory=dict)
    sets: dict[str, CurrencyPosition] = field(default_factory=dict)

    def note(self, schema: Schema, record_name: str, rid: int,
             retain_sets: frozenset[str] = frozenset()) -> None:
        """Register a successful access to (record_name, rid).

        Updates run-unit, record-type, and set currencies, except for
        sets named in ``retain_sets`` (the DBTG ``RETAINING CURRENCY``
        option, which converted programs sometimes need to preserve
        source navigation behavior).
        """
        position = CurrencyPosition(record_name, rid)
        self.run_unit = position
        self.records[record_name] = position
        for set_type in schema.sets.values():
            if set_type.name in retain_sets:
                continue
            if record_name in (set_type.owner, set_type.member):
                self.sets[set_type.name] = position

    def forget_record(self, record_name: str, rid: int) -> None:
        """Clear every indicator pointing at a deleted record."""
        position = CurrencyPosition(record_name, rid)
        if self.run_unit == position:
            self.run_unit = None
        self.records = {
            name: pos for name, pos in self.records.items()
            if pos != position
        }
        self.sets = {
            name: pos for name, pos in self.sets.items()
            if pos != position
        }

    def of_set(self, set_name: str) -> CurrencyPosition | None:
        return self.sets.get(set_name)

    def of_record(self, record_name: str) -> CurrencyPosition | None:
        return self.records.get(record_name)

    def clear(self) -> None:
        self.run_unit = None
        self.records.clear()
        self.sets.clear()
