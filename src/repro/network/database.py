"""The network database: stores, set occurrences, CALC indexes,
constraint checking, and the consistent-state run-unit boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.engine.index import HashIndex
from repro.engine.metrics import Metrics
from repro.engine.savepoint import Savepoint, check_owner, fingerprint
from repro.engine.storage import Record, RecordStore
from repro.errors import (
    IntegrityError,
    MandatoryViolation,
)
from repro.network.sets import SetStore, SYSTEM_OWNER_RID
from repro.schema.constraints import Violation, check_all
from repro.schema.model import Retention, Schema, SetType


class NetworkDatabase:
    """An in-memory CODASYL database instance over a schema.

    Implements the :class:`repro.schema.constraints.DatabaseView`
    protocol so declared constraints check uniformly, and exposes the
    raw stores/sets to the DML session, the data translator, and the
    bridge strategy.
    """

    def __init__(self, schema: Schema, metrics: Metrics | None = None):
        schema.validate()
        self.schema = schema
        self.metrics = metrics if metrics is not None else Metrics()
        self._stores: dict[str, RecordStore] = {
            name: RecordStore(name, self.metrics)
            for name in schema.records
        }
        self._sets: dict[str, SetStore] = {
            name: SetStore(set_type, self)
            for name, set_type in schema.sets.items()
        }
        self._calc: dict[str, HashIndex] = {}
        for name, record in schema.records.items():
            if record.calc_keys:
                self._calc[name] = HashIndex(
                    f"{name}.calc", unique=False, metrics=self.metrics
                )

    # -- low-level access -------------------------------------------------

    def store(self, record_name: str) -> RecordStore:
        self.schema.record(record_name)
        return self._stores[record_name]

    def set_store(self, set_name: str) -> SetStore:
        self.schema.set_type(set_name)
        return self._sets[set_name]

    def calc_index(self, record_name: str) -> HashIndex | None:
        return self._calc.get(record_name)

    def _calc_key(self, record_name: str, values: dict[str, Any]) -> tuple:
        record_type = self.schema.record(record_name)
        return tuple(values.get(key) for key in record_type.calc_keys)

    # -- record lifecycle ---------------------------------------------------

    def insert_record(self, record_name: str,
                      values: dict[str, Any]) -> Record:
        """Store a record (no set connection -- the DML layer drives
        AUTOMATIC insertion so currency can participate)."""
        record_type = self.schema.record(record_name)
        checked = record_type.validate_values(values)
        # Fill unmentioned stored fields with null.
        for field_name in record_type.stored_field_names():
            checked.setdefault(field_name, None)
        record = self._stores[record_name].insert(checked)
        index = self._calc.get(record_name)
        if index is not None:
            index.insert(self._calc_key(record_name, checked), record.rid)
        return record

    def insert_records(self, record_name: str,
                       rows: list[dict[str, Any]]) -> list[Record]:
        """Bulk :meth:`insert_record`: validation per row, store and
        CALC-index maintenance amortized over the batch."""
        record_type = self.schema.record(record_name)
        stored_fields = record_type.stored_field_names()
        checked_rows = []
        for values in rows:
            checked = record_type.validate_values(values)
            for field_name in stored_fields:
                checked.setdefault(field_name, None)
            checked_rows.append(checked)
        records = self._stores[record_name].insert_many(checked_rows)
        index = self._calc.get(record_name)
        if index is not None:
            calc_keys = record_type.calc_keys
            for record in records:
                index.insert(
                    tuple(record.values.get(key) for key in calc_keys),
                    record.rid,
                )
        return records

    def update_record(self, record_name: str, rid: int,
                      updates: dict[str, Any]) -> Record:
        record_type = self.schema.record(record_name)
        checked = record_type.validate_values(updates)
        store = self._stores[record_name]
        old = store.peek(rid)
        record = store.update(rid, checked)
        index = self._calc.get(record_name)
        if index is not None and old is not None:
            old_key = self._calc_key(record_name, old.values)
            new_key = self._calc_key(record_name, record.values)
            if old_key != new_key:
                index.remove(old_key, rid)
                index.insert(new_key, rid)
        # Re-sort any set occurrence whose order keys were touched.
        for set_store in self._sets.values():
            set_type = set_store.set_type
            if set_type.member != record_name:
                continue
            if any(key in checked for key in set_type.order_keys):
                set_store.reposition(rid)
        return record

    def delete_record(self, record_name: str, rid: int,
                      all_members: bool = False) -> None:
        """ERASE semantics.

        Without ``all_members``: OPTIONAL members of owned occurrences
        are disconnected; a non-empty occurrence of MANDATORY members
        refuses the erase.  With ``all_members``: members are erased
        recursively -- the Section 3.1 hazard ("deletion of course
        offerings when instructors are deleted ... violates the
        system's integrity constraints"); any damage is caught at the
        run-unit boundary, not here.
        """
        for set_store in self._sets.values():
            set_type = set_store.set_type
            if set_type.owner != record_name:
                continue
            members = set_store.members(rid)
            if not members:
                continue
            if all_members:
                for member_rid in list(members):
                    set_store.disconnect(member_rid)
                    self.delete_record(set_type.member, member_rid,
                                       all_members=True)
            elif set_type.retention is Retention.MANDATORY:
                raise MandatoryViolation(
                    f"cannot erase {record_name} rid {rid}: occurrence of "
                    f"{set_type.name} has {len(members)} MANDATORY members"
                )
            else:
                for member_rid in list(members):
                    set_store.disconnect(member_rid)
        # Leave every set this record belongs to as a member.
        for set_store in self._sets.values():
            if set_store.set_type.member == record_name:
                set_store.disconnect(rid)
        store = self._stores[record_name]
        old = store.peek(rid)
        store.delete(rid)
        index = self._calc.get(record_name)
        if index is not None and old is not None:
            index.remove(self._calc_key(record_name, old.values), rid)

    # -- set connection -------------------------------------------------

    def connect(self, set_name: str, owner_rid: int, member_rid: int) -> None:
        self.metrics.set_traversals += 1
        self._sets[set_name].connect(owner_rid, member_rid)

    def connect_many(self, set_name: str, owner_rid: int,
                     member_rids: list[int]) -> None:
        """Bulk :meth:`connect` into one occurrence: the occurrence is
        ordered once for the whole batch instead of per member."""
        self.metrics.set_traversals += len(member_rids)
        self._sets[set_name].connect_many(owner_rid, member_rids)

    def disconnect(self, set_name: str, member_rid: int) -> int | None:
        return self._sets[set_name].disconnect(member_rid)

    def select_owner_by_value(self, set_type: SetType, using_field: str,
                              value: Any) -> Record | None:
        """SET SELECTION BY VALUE: the first owner whose ``using_field``
        equals ``value`` (backing VIRTUAL ... VIA ... USING storage)."""
        owners = self.select_owners_by_value(set_type, using_field, value)
        return owners[0] if owners else None

    def select_owners_by_value(self, set_type: SetType, using_field: str,
                               value: Any) -> list[Record]:
        """All owners whose ``using_field`` equals ``value``.

        Interposed record types (Figure 4.4's DEPT) have keys unique
        only within their own owner's occurrence, so selection may be
        ambiguous; the DML session disambiguates with set currency
        (CODASYL SET SELECTION ... THRU OWNER)."""
        owner_type = self.schema.record(set_type.owner)
        index = self._calc.get(set_type.owner)
        if index is not None and owner_type.calc_keys == (using_field,):
            rids = index.lookup((value,))
            return [self._stores[set_type.owner].fetch(rid) for rid in rids]
        # The using-field may itself be virtual on the owner (a chain
        # through an interposed record): resolve through read_field.
        return [
            record for record in self._stores[set_type.owner].scan()
            if self.read_field(record, using_field) == value
        ]

    # -- DatabaseView protocol -------------------------------------------

    def instances(self, record_name: str) -> Iterator[Record]:
        yield from self.store(record_name).scan()

    def owner_record(self, set_name: str, member_rid: int) -> Record | None:
        set_store = self.set_store(set_name)
        owner_rid = set_store.owner(member_rid)
        if owner_rid is None:
            return None
        if set_store.set_type.system_owned:
            return None  # SYSTEM has no owner record
        self.metrics.set_traversals += 1
        return self._stores[set_store.set_type.owner].fetch(owner_rid)

    def member_records(self, set_name: str, owner_rid: int) -> Iterator[Record]:
        set_store = self.set_store(set_name)
        member_store = self._stores[set_store.set_type.member]
        for member_rid in set_store.members(owner_rid):
            self.metrics.set_traversals += 1
            yield member_store.fetch(member_rid)

    def read_field(self, record: Record, field_name: str) -> Any:
        """Field access resolving VIRTUAL fields through their set."""
        record_type = self.schema.record(record.type_name)
        fld = record_type.field(field_name)
        if not fld.is_virtual:
            return record.get(field_name)
        owner = self.owner_record(fld.virtual_via, record.rid)
        if owner is None:
            return None
        # Recurse: the owner's field may itself be virtual (a chain
        # created by interposing a record on a set with virtual fields).
        return self.read_field(owner, fld.virtual_using)

    def record_values(self, record: Record) -> dict[str, Any]:
        """All field values of a record, virtuals resolved."""
        record_type = self.schema.record(record.type_name)
        return {
            fld.name: self.read_field(record, fld.name)
            for fld in record_type.fields
        }

    # -- integrity ---------------------------------------------------------

    def check_constraints(self) -> list[Violation]:
        """All current violations of the schema's declared constraints,
        plus the structural AUTOMATIC+MANDATORY existence rule."""
        violations = check_all(self)
        for set_type in self.schema.sets.values():
            if set_type.system_owned:
                continue
            if set_type.retention is not Retention.MANDATORY:
                continue
            set_store = self._sets[set_type.name]
            for record in self.instances(set_type.member):
                if not set_store.is_connected(record.rid):
                    violations.append(Violation(
                        _MandatoryRule(set_type.name), set_type.member,
                        record.rid,
                        f"{set_type.member} rid {record.rid} is not "
                        f"connected in MANDATORY set {set_type.name}",
                    ))
        return violations

    def verify_consistent(self) -> None:
        """Raise IntegrityError when the database is inconsistent."""
        violations = self.check_constraints()
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise IntegrityError(
                f"database inconsistent ({len(violations)} violations): "
                f"{summary}",
                constraint=violations[0].constraint,
            )

    @contextmanager
    def run_unit(self) -> Iterator["NetworkDatabase"]:
        """The Section 1.1 contract: a program takes the database from
        one consistent state to another.  Entering asserts nothing;
        leaving (without an exception in flight) verifies consistency.
        """
        yield self
        self.verify_consistent()

    # -- savepoints --------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture the whole instance: every store, every set
        occurrence, every CALC index.  Metrics are deliberately NOT
        captured -- a rolled-back probe still did the work it did."""
        parts: dict[str, Savepoint] = {}
        for name, store in self._stores.items():
            parts[f"store:{name}"] = store.savepoint()
        for name, set_store in self._sets.items():
            parts[f"set:{name}"] = set_store.savepoint()
        calc = {name: index.snapshot_entries()
                for name, index in self._calc.items()}
        return Savepoint("network-db", id(self), payload=calc, parts=parts)

    def rollback(self, savepoint: Savepoint) -> None:
        """Restore the exact state captured by :meth:`savepoint`."""
        check_owner(savepoint, "network-db", self)
        for name, store in self._stores.items():
            store.rollback(savepoint.part(f"store:{name}"))
        for name, set_store in self._sets.items():
            set_store.rollback(savepoint.part(f"set:{name}"))
        for name, index in self._calc.items():
            index.restore_entries(savepoint.payload[name])

    def state_fingerprint(self) -> str:
        """Content digest over records, set occurrences, and rid
        counters; two databases with equal fingerprints are
        byte-identical in everything a program can observe."""
        return fingerprint((
            "network", self.schema.name,
            tuple(store.state_fingerprint_data()
                  for store in self._stores.values()),
            tuple(set_store.state_fingerprint_data()
                  for set_store in self._sets.values()),
        ))

    # -- convenience -------------------------------------------------------

    def count(self, record_name: str) -> int:
        return len(self.store(record_name))

    def system_owner_rid(self) -> int:
        return SYSTEM_OWNER_RID


class _MandatoryRule:
    """Ad-hoc pseudo-constraint used in violation reports for the
    structural MANDATORY-membership rule."""

    def __init__(self, set_name: str):
        self.name = f"MANDATORY({set_name})"
        self.set_name = set_name

    def describe(self) -> str:
        return f"MANDATORY MEMBERSHIP IN {self.set_name}"
