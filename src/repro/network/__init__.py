"""CODASYL network data model.

A faithful in-memory model of the 1978 CODASYL DBTG architecture as the
paper uses it: record types with CALC location, owner-coupled sets with
AUTOMATIC/MANUAL insertion and MANDATORY/OPTIONAL retention, currency
indicators, a user work area, and the navigational DML verbs (FIND ANY,
FIND FIRST/NEXT/PRIOR WITHIN set, FIND OWNER, GET, STORE, MODIFY,
ERASE, CONNECT, DISCONNECT).

DML verbs report failure through status codes in ``session.status``
rather than exceptions, because Section 3.2's "status code dependence"
pathology only exists in a status-code world.
"""

from repro.network.database import NetworkDatabase
from repro.network.dml import (
    DMLSession,
    STATUS_END_OF_SET,
    STATUS_NOT_FOUND,
    STATUS_NO_CURRENCY,
    STATUS_OK,
)
from repro.network.currency import CurrencyTable

__all__ = [
    "NetworkDatabase",
    "DMLSession",
    "CurrencyTable",
    "STATUS_OK",
    "STATUS_NOT_FOUND",
    "STATUS_END_OF_SET",
    "STATUS_NO_CURRENCY",
]
