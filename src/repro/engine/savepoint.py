"""Savepoints: cheap capture-and-restore of engine state.

The conversion pipeline routinely runs *candidate* work against a live
database -- a probe execution validating a strategy, an emulated verb
sequence, a restructuring dry run -- and any of it can fail part-way
through, leaving the instance half-mutated.  Section 1.1's consistency
contract ("every database program takes the database from one
consistent state to another") has nothing to say about a program that
*crashes*; savepoints supply the missing half: a failed run restores
the exact pre-call state instead of corrupting the instance.

Design:

* a :class:`Savepoint` is an opaque token tied to the object that
  created it; handing it to a different instance raises
  :class:`~repro.errors.SavepointMismatch`;
* record payloads are captured by *sharing*: :class:`Record` objects
  are immutable, so a savepoint holds shallow dict copies and the
  store keeps mutating its live dict (copy-on-write in effect);
* mutable side structures (set occurrences, sibling buckets, relation
  rows) are copied at savepoint time and secondary indexes are either
  snapshot (hash buckets) or rebuilt on rollback;
* rollback bumps the storage generation so any in-flight
  generation-checked scan fails loudly rather than resuming over
  restored state.

Savepoints nest freely (each is an independent capture) and surviving
tokens may be rolled back more than once.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from itertools import count
from typing import Any

from repro.errors import SavepointMismatch

_SERIAL = count(1)


@dataclass(frozen=True)
class Savepoint:
    """Opaque captured state of one object.

    ``owner_id`` pins the token to the instance that issued it;
    ``payload`` is whatever that instance needs to restore itself
    (never inspected here); ``parts`` holds nested savepoints of
    sub-objects (stores inside a database, indexes inside a store).
    """

    kind: str
    owner_id: int
    payload: Any = None
    parts: dict[str, "Savepoint"] = field(default_factory=dict)
    serial: int = field(default_factory=lambda: next(_SERIAL))

    def part(self, name: str) -> "Savepoint":
        try:
            return self.parts[name]
        except KeyError:
            raise SavepointMismatch(
                f"savepoint {self.kind}#{self.serial} has no part {name!r} "
                "(schema changed between savepoint and rollback?)"
            ) from None


def check_owner(savepoint: Savepoint, kind: str, owner: object) -> None:
    """Refuse a savepoint issued by a different object (or kind)."""
    if savepoint.kind != kind or savepoint.owner_id != id(owner):
        raise SavepointMismatch(
            f"savepoint {savepoint.kind}#{savepoint.serial} does not "
            f"belong to this {kind}"
        )


def fingerprint(state: Any) -> str:
    """A stable content digest of a canonical state structure.

    The rollback tests assert *byte* identity: the pre-fault and
    post-rollback states must pickle to the same bytes.  Callers build
    the state from deterministic containers (dicts in insertion order,
    lists, scalars) so the pickle stream is reproducible.
    """
    payload = pickle.dumps(state, protocol=4)
    return hashlib.sha256(payload).hexdigest()
