"""Secondary indexes.

Two index flavours cover everything the data models need:

* :class:`HashIndex` -- equality lookup, optionally unique.  Backs
  relational keys, CODASYL CALC keys, and foreign-key existence checks.
* :class:`SortedIndex` -- key-ordered traversal.  Backs CODASYL sorted
  set occurrences and hierarchical sibling order.

Keys may be single values or tuples of values (composite keys).  ``None``
inside a key is allowed and sorts before every non-None value of any
type, so indexes tolerate the "null instructor" records of Section 3.1.
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Iterator

from repro.errors import DuplicateKey
from repro.engine.metrics import Metrics
from repro.engine.ordering import orderable

#: Backwards-compatible private name; the public home of the function
#: is :func:`repro.engine.ordering.orderable`.
_orderable = orderable


class HashIndex:
    """Equality index from key to a list of rids (insertion order)."""

    def __init__(self, name: str, unique: bool = False,
                 metrics: Metrics | None = None):
        self.name = name
        self.unique = unique
        self.metrics = metrics if metrics is not None else Metrics()
        self._entries: dict[Hashable, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(rids) for rids in self._entries.values())

    def insert(self, key: Hashable, rid: int) -> None:
        bucket = self._entries.setdefault(key, [])
        if self.unique and bucket:
            raise DuplicateKey(
                f"index {self.name}: duplicate key {key!r}"
            )
        bucket.append(rid)

    def remove(self, key: Hashable, rid: int) -> None:
        bucket = self._entries.get(key, [])
        if rid in bucket:
            bucket.remove(rid)
            if not bucket:
                del self._entries[key]

    def lookup(self, key: Hashable) -> list[int]:
        """Rids with exactly this key, in insertion order."""
        self.metrics.index_probes += 1
        return list(self._entries.get(key, []))

    def contains(self, key: Hashable) -> bool:
        self.metrics.index_probes += 1
        return bool(self._entries.get(key))

    def keys(self) -> list[Hashable]:
        return list(self._entries)

    def snapshot_entries(self) -> dict[Hashable, list[int]]:
        """Copy of the bucket map, for savepoints (buckets are mutable
        lists, so each is copied)."""
        return {key: list(rids) for key, rids in self._entries.items()}

    def restore_entries(self, entries: dict[Hashable, list[int]]) -> None:
        """Replace the bucket map with a previously snapshot copy."""
        self._entries = {key: list(rids) for key, rids in entries.items()}


class SortedIndex:
    """Key-ordered index supporting ordered iteration and range scans."""

    def __init__(self, name: str, unique: bool = False,
                 metrics: Metrics | None = None):
        self.name = name
        self.unique = unique
        self.metrics = metrics if metrics is not None else Metrics()
        # Parallel arrays: _order holds (orderable(key), seq) sort keys.
        self._order: list[tuple] = []
        self._items: list[tuple[Any, int]] = []  # (key, rid)
        self._seq = 0

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, key: Any, rid: int) -> None:
        if self.unique and self._key_present(key):
            raise DuplicateKey(f"index {self.name}: duplicate key {key!r}")
        self._seq += 1
        sort_key = (orderable(key), self._seq)
        pos = bisect.bisect_left(self._order, sort_key)
        self._order.insert(pos, sort_key)
        self._items.insert(pos, (key, rid))

    def _key_present(self, key: Any) -> bool:
        target = orderable(key)
        pos = bisect.bisect_left(self._order, (target,))
        return pos < len(self._order) and self._order[pos][0] == target

    def remove(self, key: Any, rid: int) -> None:
        target = orderable(key)
        pos = bisect.bisect_left(self._order, (target,))
        while pos < len(self._order) and self._order[pos][0] == target:
            if self._items[pos][1] == rid:
                del self._order[pos]
                del self._items[pos]
                return
            pos += 1

    def scan(self) -> Iterator[int]:
        """Yield rids in key order."""
        self.metrics.index_scans += 1
        for _key, rid in list(self._items):
            yield rid

    def scan_items(self) -> Iterator[tuple[Any, int]]:
        """Yield (key, rid) pairs in key order."""
        self.metrics.index_scans += 1
        yield from list(self._items)

    def lookup(self, key: Any) -> list[int]:
        """Rids whose key equals ``key``, in key order."""
        self.metrics.index_probes += 1
        target = orderable(key)
        pos = bisect.bisect_left(self._order, (target,))
        out = []
        while pos < len(self._order) and self._order[pos][0] == target:
            out.append(self._items[pos][1])
            pos += 1
        return out

    def range(self, low: Any = None, high: Any = None) -> Iterator[int]:
        """Yield rids with low <= key <= high (either bound optional)."""
        self.metrics.index_scans += 1
        low_key = orderable(low) if low is not None else None
        high_key = orderable(high) if high is not None else None
        for key, rid in list(self._items):
            ordered = orderable(key)
            if low_key is not None and ordered < low_key:
                continue
            if high_key is not None and ordered > high_key:
                break
            yield rid

    def first(self) -> int | None:
        """Rid with the smallest key, or None when empty."""
        self.metrics.index_probes += 1
        return self._items[0][1] if self._items else None

    def position(self, rid: int) -> int | None:
        """Zero-based position of a rid in key order, or None."""
        for pos, (_key, item_rid) in enumerate(self._items):
            if item_rid == rid:
                return pos
        return None
