"""Record storage.

A :class:`RecordStore` holds the record instances of one record type.
Records get stable integer ids (never reused within a store), field
values are plain Python scalars, and iteration order is insertion order
-- deterministic, which the equivalence checker relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from repro.errors import RecordNotFound
from repro.engine.metrics import Metrics
from repro.engine.savepoint import Savepoint, check_owner


@dataclass(frozen=True)
class Record:
    """An immutable view of one stored record.

    ``rid`` identifies the record within its store; ``type_name`` is the
    owning record type; ``values`` maps field name to value.  Updates go
    through :meth:`RecordStore.update`, which produces a new version --
    holders of stale ``Record`` objects simply see old values, mirroring
    the "record area" copy semantics of CODASYL run units.
    """

    rid: int
    type_name: str
    values: dict[str, Any]

    def get(self, field_name: str, default: Any = None) -> Any:
        return self.values.get(field_name, default)

    def __getitem__(self, field_name: str) -> Any:
        return self.values[field_name]

    def with_values(self, **updates: Any) -> "Record":
        """Return a copy with some field values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return Record(self.rid, self.type_name, merged)


class RecordStore:
    """Insertion-ordered storage for the instances of one record type."""

    def __init__(self, type_name: str, metrics: Metrics | None = None):
        self.type_name = type_name
        self.metrics = metrics if metrics is not None else Metrics()
        self._records: dict[int, Record] = {}
        self._next_rid = 1
        # Bumped on structural change (insert/delete/clear); scans check
        # it so they can iterate the live dict without a defensive copy.
        self._generation = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, rid: int) -> bool:
        return rid in self._records

    def insert(self, values: dict[str, Any]) -> Record:
        """Store a new record and return it (with its assigned rid)."""
        rid = self._next_rid
        self._next_rid += 1
        record = Record(rid, self.type_name, dict(values))
        self._records[rid] = record
        self._generation += 1
        self.metrics.records_written += 1
        return record

    def insert_many(self, rows: Iterable[dict[str, Any]]) -> list[Record]:
        """Bulk :meth:`insert`: one metrics update for the whole batch.

        Equivalent to inserting each row in order (same rids, same
        iteration order) but with the per-row bookkeeping amortized.
        """
        records = []
        rid = self._next_rid
        for values in rows:
            record = Record(rid, self.type_name, dict(values))
            self._records[rid] = record
            records.append(record)
            rid += 1
        self._next_rid = rid
        self._generation += 1
        self.metrics.records_written += len(records)
        return records

    def fetch(self, rid: int) -> Record:
        """Return the current version of the record with this rid."""
        try:
            record = self._records[rid]
        except KeyError:
            raise RecordNotFound(
                f"{self.type_name}: no record with rid {rid}"
            ) from None
        self.metrics.records_read += 1
        return record

    def peek(self, rid: int) -> Record | None:
        """Like :meth:`fetch` but uncounted and returning None if absent.

        Used by internal bookkeeping (set pointers, index maintenance)
        that should not inflate access-path-length measurements.
        """
        return self._records.get(rid)

    def update(self, rid: int, updates: dict[str, Any]) -> Record:
        """Replace some field values of an existing record."""
        current = self._records.get(rid)
        if current is None:
            raise RecordNotFound(f"{self.type_name}: no record with rid {rid}")
        new_record = current.with_values(**updates)
        self._records[rid] = new_record
        self.metrics.records_written += 1
        return new_record

    def delete(self, rid: int) -> Record:
        """Remove a record, returning its last version."""
        try:
            record = self._records.pop(rid)
        except KeyError:
            raise RecordNotFound(
                f"{self.type_name}: no record with rid {rid}"
            ) from None
        self._generation += 1
        self.metrics.records_deleted += 1
        return record

    def scan(self) -> Iterator[Record]:
        """Yield every record in insertion order (counted as reads).

        Iterates a generation-checked view of the live dict rather than
        copying every record reference into a list up front: the common
        consumers (FIND ANY, constraint checks) either consume the scan
        immediately or abandon the generator before mutating.  A store
        that *is* structurally mutated while a scan is being resumed
        fails loudly instead of serving a stale copy.
        """
        self.metrics.index_scans += 1
        generation = self._generation
        for record in self._records.values():
            if self._generation != generation:
                raise RuntimeError(
                    f"{self.type_name}: store mutated during scan"
                )
            self.metrics.records_read += 1
            yield record

    def rids(self) -> list[int]:
        """All live rids in insertion order (uncounted)."""
        return list(self._records)

    def all_records(self) -> list[Record]:
        """All live records in insertion order (uncounted bulk access).

        Intended for data translation and test assertions, not for DML
        paths, so it does not contribute to access-path metrics.
        """
        return list(self._records.values())

    def clear(self) -> None:
        """Drop every record (rids are still not reused afterwards)."""
        self._records.clear()
        self._generation += 1

    def load(self, rows: Iterable[dict[str, Any]]) -> list[Record]:
        """Bulk-insert rows, returning the created records."""
        return self.insert_many(rows)

    # -- savepoints --------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture the store's state.

        Record objects are immutable, so a shallow copy of the rid map
        shares every record with the live store -- O(len) pointer
        copies, no value copying (copy-on-write in effect: updates
        install *new* Record versions and never touch shared ones).
        """
        return Savepoint("record-store", id(self), payload=(
            dict(self._records), self._next_rid,
        ))

    def rollback(self, savepoint: Savepoint) -> None:
        """Restore the exact state captured by :meth:`savepoint`.

        The generation is bumped (not restored) so a scan that was in
        flight across the rollback fails loudly instead of resuming
        over replaced state.
        """
        check_owner(savepoint, "record-store", self)
        records, next_rid = savepoint.payload
        self._records = dict(records)
        self._next_rid = next_rid
        self._generation += 1

    def state_fingerprint_data(self) -> tuple:
        """Canonical content structure for byte-identity assertions."""
        return (
            self.type_name,
            self._next_rid,
            tuple(
                (rid, record.type_name, tuple(record.values.items()))
                for rid, record in self._records.items()
            ),
        )
