"""Operation metrics.

The 1979 paper argues about strategy efficiency in terms of "increased
overhead in program size and/or access path length" (Section 2.1.2).
With no 1979 hardware to time, we count logical operations instead:
records read and written, DML calls issued, index probes, and records
materialized by bridge reconstruction.  Counts are machine-independent
and directly capture access-path length.

A single :class:`Metrics` object is threaded through an engine and the
DML layers above it; :class:`MetricsScope` snapshots a region of
execution so benchmarks can report per-phase deltas.

Every engine-owned bundle also registers itself with the process-wide
:class:`~repro.observe.registry.MetricsRegistry` under ``engine.*``
names, so spans and conversion reports see one unified counter view;
derived bundles (scope deltas, subtraction results) opt out so the
aggregate never counts an increment twice.  The attribute API here is
the registry's back-compat shim: increments stay plain int stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.observe.registry import get_registry


_COUNTERS = (
    "records_read",
    "records_written",
    "records_deleted",
    "index_probes",
    "index_scans",
    "index_hits",
    "full_scans",
    "set_traversals",
    "dml_calls",
    "emulation_mappings",
    "bridge_materializations",
    "sort_operations",
)


@dataclass
class Metrics:
    """Mutable counter bundle for one database engine instance."""

    records_read: int = 0
    records_written: int = 0
    records_deleted: int = 0
    index_probes: int = 0
    index_scans: int = 0
    #: Queries answered through a maintained secondary index ...
    index_hits: int = 0
    #: ... versus queries that had to fall back to a full scan.
    full_scans: int = 0
    set_traversals: int = 0
    dml_calls: int = 0
    emulation_mappings: int = 0
    bridge_materializations: int = 0
    sort_operations: int = 0
    #: Registered bundles feed the unified registry's aggregate view;
    #: derived bundles (deltas, differences) are created with
    #: ``registered=False`` so their copies of already-counted work do
    #: not inflate it.
    registered: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.registered:
            get_registry().register(self)

    def __setstate__(self, state: dict) -> None:
        # Pickle bypasses __init__/__post_init__; a rehydrated engine
        # bundle (parallel worker processes unpickle whole engines)
        # must re-register into *its* process's registry or the
        # worker's counters would be invisible to spans and reports.
        self.__dict__.update(state)
        if self.registered:
            get_registry().register(self)

    def metrics_items(self) -> Iterable[tuple[str, int]]:
        """Yield ``(engine.<counter>, value)`` pairs for the registry."""
        for name in _COUNTERS:
            yield f"engine.{name}", getattr(self, name)

    def reset(self) -> None:
        """Zero every counter."""
        for name in _COUNTERS:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return a plain dict copy of the current counts."""
        return {name: getattr(self, name) for name in _COUNTERS}

    def total_accesses(self) -> int:
        """Total record-level touches; the paper's access-path length."""
        return self.records_read + self.records_written + self.records_deleted

    def add(self, other: "Metrics") -> None:
        """Accumulate another metrics bundle into this one."""
        for name in _COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def __sub__(self, other: "Metrics") -> "Metrics":
        out = Metrics(registered=False)
        for name in _COUNTERS:
            setattr(out, name, getattr(self, name) - getattr(other, name))
        return out


@dataclass
class MetricsScope:
    """Context manager that measures the metric delta over a region.

    Example::

        with MetricsScope(db.metrics) as scope:
            run_program(program, db)
        print(scope.delta.total_accesses())
    """

    metrics: Metrics
    delta: Metrics = field(
        default_factory=lambda: Metrics(registered=False))
    _before: dict[str, int] = field(default_factory=dict)

    def __enter__(self) -> "MetricsScope":
        self._before = self.metrics.snapshot()
        return self

    def __exit__(self, *exc_info: object) -> None:
        after = self.metrics.snapshot()
        for name, before_value in self._before.items():
            setattr(self.delta, name, after[name] - before_value)
