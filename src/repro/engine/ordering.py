"""Cross-type total ordering for index and sort keys.

Every layer that sorts values -- index key order, set occurrence
order, relational sort/dedup keys, emulated occurrence re-sorting --
needs one shared definition of "key order" so converted programs see
identical orderings regardless of which engine produced them.  This
module is that single definition; :func:`orderable` used to live as a
private helper inside :mod:`repro.engine.index` and was re-imported
under its private name everywhere it was needed.
"""

from __future__ import annotations

from typing import Any


def orderable(key: Any) -> tuple:
    """Map an index key to a tuple that sorts across mixed types.

    Values are grouped by type name so ints compare with ints and
    strings with strings; None sorts first.
    """
    parts = key if isinstance(key, tuple) else (key,)
    out = []
    for part in parts:
        if part is None:
            out.append((0, "", ""))
        elif isinstance(part, bool):
            out.append((1, "bool", part))
        elif isinstance(part, (int, float)):
            out.append((1, "number", part))
        else:
            out.append((1, type(part).__name__, str(part)))
    return tuple(out)
