"""Storage engine substrate.

An in-memory record manager shared by the relational, network, and
hierarchical data models.  It provides record storage with stable record
ids, secondary indexes, and an operation-metrics counter that every data
model and conversion strategy reports into, so experiments compare
"access path length" (the paper's efficiency measure, Section 2.1.2)
on identical terms.
"""

from repro.engine.metrics import Metrics, MetricsScope
from repro.engine.savepoint import Savepoint, fingerprint
from repro.engine.storage import Record, RecordStore
from repro.engine.index import HashIndex, SortedIndex

__all__ = [
    "Metrics",
    "MetricsScope",
    "Record",
    "RecordStore",
    "HashIndex",
    "SortedIndex",
    "Savepoint",
    "fingerprint",
]
