"""Program analysis.

Section 3.2 catalogs the behaviours that make database programs hard or
impossible to convert mechanically: run-time variability of DML verbs,
dependence on record presentation order, "process the first" written
for "process all", and status-code dependence.  Section 5.3 asks
whether an analyzer can "detect database integrity constraints that are
enforced procedurally in the program".

This package implements both: a small dataflow analysis over the
program AST, the four Section 3.2 pathology detectors, and the
procedural-constraint detector.
"""

from repro.analysis.dataflow import (
    assigned_variables,
    constant_value,
    input_tainted_variables,
    is_runtime_constant,
)
from repro.analysis.variability import (
    Finding,
    detect_order_dependence,
    detect_pathologies,
    detect_process_first,
    detect_status_code_dependence,
    detect_verb_variability,
)
from repro.analysis.constraints import (
    DetectedConstraint,
    detect_procedural_constraints,
)

__all__ = [
    "assigned_variables",
    "constant_value",
    "input_tainted_variables",
    "is_runtime_constant",
    "Finding",
    "detect_pathologies",
    "detect_verb_variability",
    "detect_order_dependence",
    "detect_process_first",
    "detect_status_code_dependence",
    "DetectedConstraint",
    "detect_procedural_constraints",
]
