"""Detection of procedurally-enforced integrity constraints.

Section 5.3: "Another open problem is to determine whether the program
analyzer can detect database integrity constraints that are enforced
procedurally in the program (or when they are not but should be)."
Section 3.1 argues such constraints should be "centralized, explicitly,
as part of the data model".

Two detectors cover the paper's two worked constraint examples:

* **existence checks**: a FIND of a would-be owner whose status guards
  a STORE of the member (the course-offering insertion rule);
* **cardinality counts**: a counter incremented inside a set scan,
  compared against a literal limit that guards a STORE (the
  "course may not be offered more than twice" rule).

Each detection proposes the equivalent declarative constraint, ready to
be added to the schema by :class:`repro.restructure.AddConstraint`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import expression_variables
from repro.programs import ast
from repro.programs.ast import Program, Stmt
from repro.schema.constraints import (
    CardinalityLimit,
    Constraint,
    ExistenceConstraint,
)
from repro.schema.model import Schema


@dataclass(frozen=True)
class DetectedConstraint:
    """A constraint found enforced in program logic."""

    kind: str                     # 'existence' | 'cardinality'
    constraint: Constraint        # proposed declarative equivalent
    evidence: str                 # what in the program implied it

    def render(self) -> str:
        return (f"{self.kind}: {self.constraint.describe()} "
                f"[evidence: {self.evidence}]")


def detect_procedural_constraints(program: Program,
                                  schema: Schema) -> list[DetectedConstraint]:
    """Run both detectors over a network program."""
    detections = _detect_existence_checks(program, schema)
    detections += _detect_cardinality_checks(program, schema)
    return detections


def _detect_existence_checks(program: Program,
                             schema: Schema) -> list[DetectedConstraint]:
    """FIND ANY owner ... IF DB-STATUS = OK ... STORE member."""
    detections: list[DetectedConstraint] = []

    def visit(statements: tuple[Stmt, ...]) -> None:
        previous_find: ast.NetFindAny | None = None
        for stmt in statements:
            if isinstance(stmt, ast.NetFindAny):
                previous_find = stmt
            elif isinstance(stmt, ast.If) and previous_find is not None:
                guarded = _status_guard(stmt)
                if guarded is not None:
                    branch = stmt.then if guarded else stmt.orelse
                    for inner in ast.walk(branch):
                        if not isinstance(inner, ast.NetStore):
                            continue
                        for set_type in schema.sets_between(
                                previous_find.record, inner.record):
                            detections.append(DetectedConstraint(
                                "existence",
                                ExistenceConstraint(
                                    f"DETECTED-EXIST-{set_type.name}",
                                    set_type.name,
                                ),
                                f"STORE {inner.record} guarded by "
                                f"FIND ANY {previous_find.record} status",
                            ))
                visit(stmt.then)
                visit(stmt.orelse)
                previous_find = None
            elif isinstance(stmt, (ast.Assign, ast.NetGet,
                                   ast.WriteTerminal, ast.WriteFile)):
                pass  # these do not disturb the find/guard pairing
            else:
                for block in ast.children_of(stmt):
                    visit(block)
                previous_find = None

    visit(program.statements)
    for procedure in program.procedures:
        visit(procedure.body)
    return _dedup(detections)


def _status_guard(stmt: ast.If) -> bool | None:
    """True when the THEN branch runs on status OK, False when the THEN
    branch runs on failure, None when the condition is unrelated."""
    condition = stmt.condition
    if not isinstance(condition, ast.Bin):
        return None
    if not (isinstance(condition.left, ast.Var)
            and condition.left.name == "DB-STATUS"
            and isinstance(condition.right, ast.Const)):
        return None
    is_ok_code = condition.right.value == "0000"
    if condition.op == "=":
        return is_ok_code
    if condition.op == "<>":
        return not is_ok_code
    return None


def _detect_cardinality_checks(program: Program,
                               schema: Schema) -> list[DetectedConstraint]:
    """Counter incremented in a set scan, compared to a literal before
    a STORE of that set's member type."""
    detections: list[DetectedConstraint] = []

    counters_by_set: dict[str, set[str]] = {}

    def find_counters(statements: tuple[Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.While):
                sets_scanned = {
                    inner.set_name for inner in ast.walk(stmt.body)
                    if isinstance(inner, (ast.NetFindNext,
                                          ast.NetFindNextUsing))
                }
                for inner in ast.walk(stmt.body):
                    if (isinstance(inner, ast.Assign)
                            and isinstance(inner.expr, ast.Bin)
                            and inner.expr.op == "+"
                            and inner.var in
                            expression_variables(inner.expr)):
                        for set_name in sets_scanned:
                            counters_by_set.setdefault(
                                set_name, set()
                            ).add(inner.var)
            for block in ast.children_of(stmt):
                find_counters(block)

    find_counters(program.statements)
    for procedure in program.procedures:
        find_counters(procedure.body)

    def find_limit_guards(statements: tuple[Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.If):
                limit = _counter_limit(stmt.condition, counters_by_set)
                if limit is not None:
                    set_name, bound, counter = limit
                    member = schema.set_type(set_name).member
                    for inner in ast.walk(stmt.then + stmt.orelse):
                        if isinstance(inner, ast.NetStore) and \
                                inner.record == member:
                            detections.append(DetectedConstraint(
                                "cardinality",
                                CardinalityLimit(
                                    f"DETECTED-LIMIT-{set_name}",
                                    set_name, bound,
                                ),
                                f"STORE {member} guarded by counter "
                                f"{counter} over {set_name} vs {bound}",
                            ))
            for block in ast.children_of(stmt):
                find_limit_guards(block)

    find_limit_guards(program.statements)
    for procedure in program.procedures:
        find_limit_guards(procedure.body)
    return _dedup(detections)


def _counter_limit(condition: ast.Expr,
                   counters_by_set: dict[str, set[str]]
                   ) -> tuple[str, int, str] | None:
    """Match ``counter < N`` / ``counter <= N`` against known counters,
    returning (set name, limit, counter variable)."""
    if not isinstance(condition, ast.Bin):
        return None
    if condition.op not in ("<", "<="):
        return None
    if not (isinstance(condition.left, ast.Var)
            and isinstance(condition.right, ast.Const)
            and isinstance(condition.right.value, int)):
        return None
    counter = condition.left.name
    for set_name, counters in counters_by_set.items():
        if counter in counters:
            bound = condition.right.value
            if condition.op == "<=":
                bound += 1
            # "store allowed while count < N" means at most N members.
            return set_name, bound, counter
    return None


def _dedup(detections: list[DetectedConstraint]) -> list[DetectedConstraint]:
    seen = set()
    out = []
    for detection in detections:
        key = (detection.kind, detection.constraint.describe())
        if key in seen:
            continue
        seen.add(key)
        out.append(detection)
    return out
