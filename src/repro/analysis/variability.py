"""Section 3.2 pathology detectors.

Four detectors, one per difficulty the paper names:

* **verb variability** -- a call-interface DML whose verb expression is
  not a provable run-time constant ("what appeared to be a read at
  compile time might become an update");
* **order dependence** -- observable output emitted per member inside a
  set scan, so I/O depends on member presentation order;
* **process-first** -- a FIND FIRST whose result is used without a
  FIND NEXT loop ("may have intended to process all dependent records
  ... but may have written a program which will process the first");
* **status-code dependence** -- branching on specific non-OK status
  codes ("certain restructurings will cause a different status code to
  be returned").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import is_runtime_constant
from repro.programs import ast
from repro.programs.ast import Program, Stmt, children_of, walk_program


@dataclass(frozen=True)
class Finding:
    """One detected pathology."""

    kind: str          # 'verb-variability' | 'order-dependence' |
                       # 'process-first' | 'status-code'
    statement: str     # rendered statement
    detail: str
    blocking: bool     # True when conversion cannot proceed mechanically

    def render(self) -> str:
        marker = "BLOCKING" if self.blocking else "warning"
        return f"[{marker}] {self.kind}: {self.detail} ({self.statement})"


#: Status codes that flow from normal loop termination; branching on
#: these is idiomatic, not pathological.
_BENIGN_CODES = {"0000"}

#: Shared with :mod:`repro.cost`, whose static profile walk must
#: reproduce this finding byte-for-byte.
VERB_VARIABILITY_DETAIL = (
    "DML verb is a run-time expression; the request may change "
    "during execution (Section 3.2)"
)


def detect_verb_variability(program: Program) -> list[Finding]:
    """Call-interface DML whose verb is not provably constant."""
    findings = []
    for stmt in walk_program(program):
        if not isinstance(stmt, ast.NetGenericCall):
            continue
        if is_runtime_constant(program, stmt.verb):
            continue
        findings.append(Finding(
            "verb-variability", stmt.render(),
            VERB_VARIABILITY_DETAIL,
            blocking=True,
        ))
    return findings


def detect_order_dependence(program: Program) -> list[Finding]:
    """Find I/O emitted per-member inside set-scan loops."""
    findings = []

    def scan_sets_in(condition_stmts: tuple[Stmt, ...]) -> set[str]:
        names = set()
        for stmt in condition_stmts:
            if isinstance(stmt, (ast.NetFindNext, ast.NetFindFirst,
                                 ast.NetFindNextUsing)):
                names.add(stmt.set_name)
        return names

    def visit(statements: tuple[Stmt, ...]) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.While):
                sets = scan_sets_in(tuple(walk_program(
                    Program("_", program.model, program.schema_name,
                            stmt.body)
                )))
                if sets:
                    emits = [
                        inner for inner in _walk_block(stmt.body)
                        if isinstance(inner, (ast.WriteTerminal,
                                              ast.WriteFile))
                    ]
                    for emitted in emits:
                        findings.append(Finding(
                            "order-dependence", emitted.render(),
                            "output emitted per member of set(s) "
                            f"{sorted(sets)}; I/O depends on member "
                            "presentation order",
                            blocking=False,
                        ))
            for block in children_of(stmt):
                visit(block)

    visit(program.statements)
    for procedure in program.procedures:
        visit(procedure.body)
    findings += _detect_relational_order_dependence(program)
    return findings


def _detect_relational_order_dependence(program: Program) -> list[Finding]:
    """FOR EACH over an unordered query result that emits output: the
    row order is an accident of base-relation order, the relational
    twin of the navigational order dependence."""
    findings: list[Finding] = []
    unordered_rows_vars = set()
    for stmt in walk_program(program):
        if isinstance(stmt, ast.RelQuery) and \
                "ORDER BY" not in stmt.sequel.upper():
            unordered_rows_vars.add(stmt.into_var)
    for stmt in walk_program(program):
        if not isinstance(stmt, ast.ForEachRow):
            continue
        if stmt.rows_var not in unordered_rows_vars:
            continue
        for inner in _walk_block(stmt.body):
            if isinstance(inner, (ast.WriteTerminal, ast.WriteFile)):
                findings.append(Finding(
                    "order-dependence", inner.render(),
                    f"output emitted per row of unordered query result "
                    f"{stmt.rows_var}; add ORDER BY or accept "
                    "presentation-order dependence (Section 3.2)",
                    blocking=False,
                ))
    return findings


def _walk_block(statements: tuple[Stmt, ...]):
    for stmt in statements:
        yield stmt
        for block in children_of(stmt):
            yield from _walk_block(block)


def detect_process_first(program: Program) -> list[Finding]:
    """FIND FIRST with no corresponding FIND NEXT on the same set."""
    findings = []
    scanned_sets = {
        stmt.set_name for stmt in walk_program(program)
        if isinstance(stmt, (ast.NetFindNext, ast.NetFindNextUsing))
    }
    for stmt in walk_program(program):
        if not isinstance(stmt, ast.NetFindFirst):
            continue
        if stmt.set_name in scanned_sets:
            continue
        findings.append(Finding(
            "process-first", stmt.render(),
            f"only the first member of {stmt.set_name} is processed; "
            "if the application meant 'process all', behaviour depends "
            "on the occurrence having one member (Section 3.2)",
            blocking=False,
        ))
    return findings


def detect_status_code_dependence(program: Program) -> list[Finding]:
    """Branches comparing DB-STATUS to specific non-OK codes."""
    findings = []

    def check_expr(expr: ast.Expr, statement: Stmt) -> None:
        if isinstance(expr, ast.Bin):
            if (expr.op in ("=", "<>")
                    and isinstance(expr.left, ast.Var)
                    and expr.left.name == "DB-STATUS"
                    and isinstance(expr.right, ast.Const)
                    and expr.right.value not in _BENIGN_CODES):
                findings.append(Finding(
                    "status-code", statement.render(),
                    f"branches on status code {expr.right.value!r}; "
                    "restructuring may return a different code "
                    "(Section 3.2)",
                    blocking=False,
                ))
            check_expr(expr.left, statement)
            check_expr(expr.right, statement)

    for stmt in walk_program(program):
        if isinstance(stmt, ast.If):
            check_expr(stmt.condition, stmt)
        elif isinstance(stmt, ast.While):
            check_expr(stmt.condition, stmt)
    return findings


def detect_pathologies(program: Program) -> list[Finding]:
    """All four Section 3.2 detectors, in severity order."""
    findings = detect_verb_variability(program)
    findings += detect_order_dependence(program)
    findings += detect_process_first(program)
    findings += detect_status_code_dependence(program)
    return findings
