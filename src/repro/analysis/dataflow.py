"""Dataflow analysis over the program AST.

The paper requires that "any software which attempts to understand the
program's behavior from a source language version of the program must
(through data flow analysis techniques) make sure that the commands do
not vary at run time" (Section 3.2).  The analysis here is deliberately
conservative: a variable counts as a run-time constant only when it is
assigned exactly once, from a literal, outside any loop or branch, and
is never re-bound by terminal/file input, GET bindings, or query
results.
"""

from __future__ import annotations

from typing import Any

from repro.programs import ast
from repro.programs.ast import (
    Assign,
    Bin,
    Const,
    Expr,
    Program,
    Stmt,
    Var,
    walk_program,
)


def assigned_variables(program: Program) -> dict[str, int]:
    """How many times each variable is (potentially) assigned.

    Assignments inside loops count as 2 (may repeat); GET/GU/GN/query
    bindings count their implicit targets.
    """
    counts: dict[str, int] = {}

    def bump(name: str, times: int) -> None:
        counts[name] = counts.get(name, 0) + times

    def visit(statements: tuple[Stmt, ...], in_loop: bool) -> None:
        weight = 2 if in_loop else 1
        for stmt in statements:
            if isinstance(stmt, Assign):
                bump(stmt.var, weight)
            elif isinstance(stmt, (ast.ReadTerminal, ast.ReadFile)):
                bump(stmt.var, weight)
            elif isinstance(stmt, ast.RelQuery):
                bump(stmt.into_var, weight)
            elif isinstance(stmt, ast.NetGet):
                bump(f"{stmt.record}.*", weight)
            elif isinstance(stmt, ast.If):
                visit(stmt.then, in_loop)
                visit(stmt.orelse, in_loop)
            elif isinstance(stmt, ast.While):
                visit(stmt.body, True)
            elif isinstance(stmt, ast.ForEachRow):
                bump(f"{stmt.row_var}.*", 2)
                visit(stmt.body, True)

    visit(program.statements, False)
    for procedure in program.procedures:
        # Called procedures may run any number of times.
        visit(procedure.body, True)
    return counts


def constant_value(program: Program, name: str) -> tuple[bool, Any]:
    """(True, value) when ``name`` is provably a run-time constant.

    Provable means: exactly one top-level ``MOVE literal TO name`` and
    no other binding anywhere in the program.
    """
    counts = assigned_variables(program)
    if counts.get(name, 0) != 1:
        return False, None
    for stmt in program.statements:  # top level only
        if isinstance(stmt, Assign) and stmt.var == name:
            if isinstance(stmt.expr, Const):
                return True, stmt.expr.value
            return False, None
    return False, None


def is_runtime_constant(program: Program, expr: Expr) -> bool:
    """Is this expression's value fixed for the whole run?"""
    if isinstance(expr, Const):
        return True
    if isinstance(expr, Var):
        known, _value = constant_value(program, expr.name)
        return known
    if isinstance(expr, Bin):
        return (is_runtime_constant(program, expr.left)
                and is_runtime_constant(program, expr.right))
    return False


def input_tainted_variables(program: Program) -> set[str]:
    """Variables whose value may derive from terminal or file input
    (transitively through assignments)."""
    tainted: set[str] = set()
    for stmt in walk_program(program):
        if isinstance(stmt, (ast.ReadTerminal, ast.ReadFile)):
            tainted.add(stmt.var)
    # Propagate through assignments to a fixpoint.
    changed = True
    while changed:
        changed = False
        for stmt in walk_program(program):
            if not isinstance(stmt, Assign) or stmt.var in tainted:
                continue
            if _mentions_any(stmt.expr, tainted):
                tainted.add(stmt.var)
                changed = True
    return tainted


def _mentions_any(expr: Expr, names: set[str]) -> bool:
    if isinstance(expr, Var):
        return expr.name in names
    if isinstance(expr, Bin):
        return (_mentions_any(expr.left, names)
                or _mentions_any(expr.right, names))
    return False


def expression_variables(expr: Expr) -> set[str]:
    """All variable names mentioned in an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Bin):
        return expression_variables(expr.left) | \
            expression_variables(expr.right)
    return set()
