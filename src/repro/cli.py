"""Command-line interface.

Everything the Conversion Analyst touches is a text artifact -- a DDL
file (Figure 4.3 syntax), a restructuring specification, and program
source in the pseudo-COBOL form -- so the whole Figure 4.1 pipeline is
drivable from the shell::

    python -m repro validate-ddl company.ddl
    python -m repro changes --ddl company.ddl --spec fig44.spec
    python -m repro analyze --ddl company.ddl --program report.cob
    python -m repro convert --ddl company.ddl --spec fig44.spec \\
        --program report.cob --target-model network
    python -m repro suggest-renames --ddl old.ddl --target-ddl new.ddl
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.analysis import detect_pathologies
from repro.core import (
    ConversionSupervisor,
    ProgramAnalyzer,
    access_pattern_sequence,
)
from repro.core.abstract import render_abstract
from repro.core.access_patterns import render_sequence
from repro.core.analyzer_db import ConversionAnalyzer
from repro.errors import ReproError
from repro.programs.ast import render_program
from repro.programs.parser import parse_program
from repro.restructure.spec import parse_spec
from repro.schema.ddl import format_ddl, parse_ddl


def _read(path: str) -> str:
    return Path(path).read_text()


def _load_schema(args) -> object:
    return parse_ddl(_read(args.ddl))


def cmd_validate_ddl(args) -> int:
    """Parse and reformat a DDL file."""
    schema = parse_ddl(_read(args.file))
    print(format_ddl(schema), end="")
    print(f"*> schema {schema.name}: {len(schema.records)} record "
          f"type(s), {len(schema.sets)} set type(s), "
          f"{len(schema.constraints)} constraint(s)")
    return 0


def cmd_changes(args) -> int:
    """Classify the changes of a restructuring spec."""
    schema = _load_schema(args)
    operator = parse_spec(_read(args.spec))
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    print(catalog.summary())
    if args.target_ddl:
        print()
        print(format_ddl(catalog.target_schema), end="")
    if not catalog.is_information_preserving():
        print("WARNING: restructuring is information-reducing "
              "(Section 1.1: a harder conversion problem)")
    return 0


def cmd_analyze(args) -> int:
    """Run the Program Analyzer over a source program."""
    schema = _load_schema(args)
    program = parse_program(_read(args.program))
    findings = detect_pathologies(program)
    for finding in findings:
        print(finding.render())
    blocking = [f for f in findings if f.blocking]
    if blocking:
        print("analysis blocked; resolve the findings above "
              "(or pin verbs via the API)")
        return 1
    abstract = ProgramAnalyzer(schema).analyze(program)
    print(render_abstract(abstract))
    print("access pattern sequence (Section 4.1):")
    print(render_sequence(access_pattern_sequence(abstract, schema)))
    return 0


def cmd_convert(args) -> int:
    """Convert one program for a restructuring (Figure 4.1), or -- with
    repeated ``--program`` or a ``--checkpoint`` -- a fault-isolated
    batch through the strategy fallback cascade, parallel across
    ``--jobs`` worker processes.  ``--trace`` and ``--profile`` run the
    conversion under a tracer (always through the cascade, so
    supervisor phases, cascade stages, and restructure operators all
    appear in the span tree)."""
    from repro import api

    schema = _load_schema(args)
    operator = parse_spec(_read(args.spec))
    programs = [parse_program(_read(path)) for path in args.program]
    tracing = bool(args.trace or args.profile)
    batch_mode = len(programs) > 1 or args.checkpoint or args.resume \
        or args.out_dir or args.report_json or tracing
    if batch_mode:
        if not tracing:
            return _cmd_convert_batch(args, schema, operator, programs)
        from repro.observe.export import render_profile, write_trace
        from repro.observe.tracing import Tracer

        tracer = Tracer()
        with tracer:
            code = _cmd_convert_batch(args, schema, operator, programs)
        if args.trace:
            path = write_trace(tracer, args.trace)
            print(f"wrote trace {path}", file=sys.stderr)
        if args.profile:
            print(render_profile(tracer), file=sys.stderr)
        return code

    program = programs[0]
    from repro.options import DEFAULT_OPTIMIZER_PASSES

    options = api.ConversionOptions(
        target_model=args.target_model,
        optimizer_passes=() if args.no_optimize
        else DEFAULT_OPTIMIZER_PASSES,
        rule_catalog=_load_rules(args),
    )
    report = api.convert(schema, operator, program, options)
    print(report.render(), file=sys.stderr)
    if report.target_program is None:
        return 1
    print(render_program(report.target_program), end="")
    return 0


def _cmd_convert_batch(args, schema, operator, programs) -> int:
    """Batch conversion: cascade per program, probe databases built
    from the optional ``--data`` loader, checkpointed, resumable, and
    parallel across ``--jobs`` workers."""
    from repro import api
    from repro.parallel import ParallelExecutionError

    options = api.ConversionOptions(
        checkpoint=args.checkpoint,
        resume=args.resume,
        report_json=args.report_json,
        inputs=_load_inputs(args),
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        parallel_threshold=args.parallel_threshold,
        strategy_order=args.strategy_order,
        cost_model=args.cost_model,
        program_timeout=args.program_timeout,
        rule_catalog=_load_rules(args))
    cascade = api.build_cascade(schema, operator, data=args.data,
                                options=options)
    try:
        batch = api.convert_batch(cascade, programs, options)
    except ParallelExecutionError as error:
        print(f"error: {error}", file=sys.stderr)
        if args.checkpoint:
            print(f"parallel batch failed: progress journaled to "
                  f"{args.checkpoint}; rerun with --resume to finish",
                  file=sys.stderr)
        else:
            print("parallel batch failed (no --checkpoint: progress "
                  "discarded)", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        if args.checkpoint:
            print(f"interrupted: progress journaled to "
                  f"{args.checkpoint}; rerun with --resume to finish",
                  file=sys.stderr)
        else:
            print("interrupted (no --checkpoint: progress discarded)",
                  file=sys.stderr)
        return 130
    for report in batch.reports:
        print(report.render(), file=sys.stderr)
    print(batch.render(), file=sys.stderr)
    if args.out_dir:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        for report in batch.reports:
            if report.target_program is not None:
                path = out_dir / f"{report.program_name}.cob"
                path.write_text(render_program(report.target_program))
    failed = [r for r in batch.reports if not r.converted]
    return 1 if failed else 0


def _load_rules(args):
    from repro import api

    if not getattr(args, "rules", None):
        return None
    return api.load_rule_catalog(Path(args.rules))


def _load_inputs(args):
    from repro.programs.interpreter import ProgramInputs

    terminal = []
    if getattr(args, "inputs", None):
        terminal = _read(args.inputs).splitlines()
    return ProgramInputs(terminal=terminal)


def _build_database(schema, data_path: str | None):
    from repro.network.database import NetworkDatabase
    from repro.programs.interpreter import run_program

    db = NetworkDatabase(schema)
    if data_path:
        loader = parse_program(_read(data_path))
        run_program(loader, db, consistent=False)
    return db


def cmd_run(args) -> int:
    """Load a database from a loader program and run an application
    program against it -- on the source schema, or (with --spec) on
    the restructured database after converting the program."""
    from repro.programs.interpreter import run_program
    from repro.restructure import restructure_database

    schema = _load_schema(args)
    program = parse_program(_read(args.program))
    db = _build_database(schema, args.data)
    inputs = _load_inputs(args)
    if args.spec:
        from repro.options import ConversionOptions

        operator = parse_spec(_read(args.spec))
        _target_schema, db = restructure_database(
            db, operator, target_model=args.target_model or "network")
        supervisor = ConversionSupervisor(schema, operator)
        report = supervisor.convert_program(
            program,
            options=ConversionOptions(target_model=args.target_model))
        print(report.render(), file=sys.stderr)
        if report.target_program is None:
            return 1
        program = report.target_program
    trace = run_program(program, db, inputs, consistent=False)
    print(trace.render())
    return 0


def cmd_check(args) -> int:
    """The Section 1.1 loop in one command: run the source program on
    the source database and the converted program on the restructured
    database, and compare the I/O traces."""
    from repro.core import check_equivalence
    from repro.restructure import restructure_database

    schema = _load_schema(args)
    operator = parse_spec(_read(args.spec))
    program = parse_program(_read(args.program))
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(program)
    print(report.render(), file=sys.stderr)
    if report.target_program is None:
        return 1
    source_db = _build_database(schema, args.data)
    _target_schema, target_db = restructure_database(
        _build_database(schema, args.data), operator)
    result = check_equivalence(program, source_db,
                               report.target_program, target_db,
                               inputs=_load_inputs(args),
                               warnings=tuple(report.warnings),
                               consistent=False)
    print(result.render())
    if not result.equivalent:
        print("source trace:", file=sys.stderr)
        print(result.source_trace.render(), file=sys.stderr)
        print("target trace:", file=sys.stderr)
        print(result.target_trace.render(), file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    """Run a perf suite and write its machine-readable report:
    ``translate`` times the pipeline (BENCH_translate.json),
    ``programs`` runs the workload corpus under the three strategies
    and the indexed-vs-linear comparison (BENCH_programs.json)."""
    if args.diff:
        return _bench_diff(args)
    if args.suite == "programs":
        return _bench_programs(args)
    from repro import api
    from repro.perf.harness import summarize

    try:
        sizes = tuple(int(part) for part in args.sizes.split(",") if part)
    except ValueError:
        print(f"error: --sizes must be comma-separated integers, "
              f"got {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes:
        print("error: --sizes is empty", file=sys.stderr)
        return 2
    report = api.run_bench("translate", seed=args.seed, smoke=args.smoke,
                           sizes=sizes,
                           compare_linear=not args.no_compare,
                           out=args.out)
    print(summarize(report))
    print(f"wrote {args.out}")
    return 0


def _bench_diff(args) -> int:
    """Diff two BENCH_*.json reports: config/schema changes are fatal
    (exit 1), performance regressions warn only (exit 0)."""
    from repro.perf.diff import diff_report_files, render_markdown

    diff = diff_report_files(args.diff[0], args.diff[1])
    print(render_markdown(diff), end="")
    return 0 if diff.ok else 1


def cmd_trace_summarize(args) -> int:
    """Render the profile table of a trace file written by
    ``repro convert --trace``."""
    from repro.observe.export import load_trace, render_profile

    spans = load_trace(args.file)
    print(render_profile(spans, top=args.top))
    return 0


def _bench_programs(args) -> int:
    from repro import api
    from repro.perf import programs as perf_programs

    out = args.out
    if out == "BENCH_translate.json":  # the translate-suite default
        out = "BENCH_programs.json"
    report = api.run_bench("programs", seed=args.seed, smoke=args.smoke,
                           out=out)
    print(perf_programs.summarize_programs(report))
    print(f"wrote {out}")
    return 0


def cmd_serve(args) -> int:
    """Run the conversion service: a zero-dependency HTTP job server
    over the facade.  Jobs POSTed to /jobs run as checkpointed batch
    conversions on a bounded queue; progress streams as server-sent
    events; report and checkpoint artifacts download byte-identical to
    a ``repro convert`` run of the same inputs.  SIGTERM drains
    gracefully (resumable checkpoints) and exits 0."""
    from repro.service.server import serve

    return serve(args.spool, host=args.host, port=args.port,
                 queue_limit=args.queue_limit,
                 warm_pools=not args.no_warm_pools)


def cmd_rules_validate(args) -> int:
    """Load-time validate a rule-catalog file; a malformed catalog
    exits 2 with the offending file and line position."""
    from repro import api
    from repro.catalog import compile_catalog

    catalog = api.load_rule_catalog(Path(args.file))
    compiled = compile_catalog(catalog)
    print(f"catalog {catalog.name} version {catalog.version}: "
          f"{len(catalog.rules)} rule(s), "
          f"{len(catalog.templates)} template(s), "
          f"{len(catalog.algebra)} algebra rewrite(s)")
    print(f"identity {compiled.identity}")
    return 0


def cmd_rules_show(args) -> int:
    """Print a catalog in canonical text form (the builtin catalog by
    default) -- the starting point for writing a custom one."""
    from repro import api

    if args.file:
        catalog = api.load_rule_catalog(Path(args.file))
    else:
        catalog = api.default_catalog()
    print(catalog.render(), end="")
    return 0


def cmd_suggest_renames(args) -> int:
    """Propose rename hypotheses between two schemas."""
    source_schema = _load_schema(args)
    target_schema = parse_ddl(_read(args.target_ddl))
    suggestions = ConversionAnalyzer().suggest_renames(source_schema,
                                                       target_schema)
    if not suggestions:
        print("no rename hypotheses")
        return 0
    for suggestion in suggestions:
        print(suggestion.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database program conversion framework "
                    "(CODASYL Systems Committee, 1979)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser(
        "validate-ddl", help="parse and reformat a Figure 4.3 DDL file")
    sub.add_argument("file")
    sub.set_defaults(handler=cmd_validate_ddl)

    sub = subparsers.add_parser(
        "changes",
        help="classify the changes of a restructuring specification")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--spec", required=True)
    sub.add_argument("--target-ddl", action="store_true",
                     help="also print the target schema DDL")
    sub.set_defaults(handler=cmd_changes)

    sub = subparsers.add_parser(
        "analyze",
        help="run the Program Analyzer over a source program")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--program", required=True)
    sub.set_defaults(handler=cmd_analyze)

    sub = subparsers.add_parser(
        "convert",
        help="convert a program (Figure 4.1); repeat --program for a "
             "fault-isolated, checkpointed batch",
        epilog="exit codes: 0 all programs converted; 1 some programs "
               "did not convert; 2 usage or input error; 3 the parallel "
               "worker pool failed mid-batch (progress is journaled to "
               "--checkpoint -- rerun with --resume); 130 interrupted. "
               "repro serve exit codes: 0 clean drain (SIGTERM/SIGINT; "
               "interrupted jobs leave resumable checkpoints); 2 usage "
               "error; 4 the listener or spool could not be set up")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--spec", required=True)
    sub.add_argument("--program", required=True, action="append",
                     help="source program file; repeat for a batch")
    sub.add_argument("--target-model", default=None,
                     choices=["network", "relational", "hierarchical"])
    sub.add_argument("--no-optimize", action="store_true",
                     help="single-program mode only")
    sub.add_argument("--rules",
                     help="rule-catalog file driving the Program "
                          "Converter (default: the shipped builtin "
                          "catalog; see 'repro rules show')")
    sub.add_argument("--data",
                     help="batch mode: loader program building the "
                          "probe databases")
    sub.add_argument("--inputs",
                     help="batch mode: terminal input lines for the "
                          "validation probes")
    sub.add_argument("--checkpoint",
                     help="batch mode: JSON journal path, updated "
                          "after every program")
    sub.add_argument("--resume", action="store_true",
                     help="batch mode: skip programs already journaled "
                          "in --checkpoint")
    sub.add_argument("--jobs", type=int, default=os.cpu_count(),
                     help="batch mode: worker processes (default: one "
                          "per CPU); 1 runs in-process")
    sub.add_argument("--chunk-size", type=int, default=None,
                     help="batch mode: programs per parallel dispatch "
                          "chunk (default: auto, ~8 chunks per worker)")
    sub.add_argument("--parallel-threshold", type=int, default=None,
                     help="batch mode: minimum pending programs before "
                          "a worker pool is spawned; smaller batches "
                          "run in-process (default: max(2*jobs, 32))")
    sub.add_argument("--strategy-order", default="cost",
                     choices=["cost", "fixed"],
                     help="batch mode: order cascade stage attempts by "
                          "predicted cost, skipping rewrites that "
                          "static analysis is guaranteed to refuse "
                          "(default), or probe every stage in the "
                          "fixed rewrite-first order")
    sub.add_argument("--cost-model", default="auto",
                     choices=["auto", "default"],
                     help="batch mode: cardinalities for cost "
                          "prediction -- auto counts the source "
                          "database's records, default uses a flat "
                          "per-record estimate")
    sub.add_argument("--program-timeout", type=float, default=None,
                     help="batch mode: cooperative per-program watchdog "
                          "deadline in seconds; a program exceeding it "
                          "fails deterministically with a timeout fault "
                          "(serial and parallel alike)")
    sub.add_argument("--report-json",
                     help="batch mode: write the batch-report summary "
                          "JSON here (atomic write; byte-identical to "
                          "the conversion service's report artifact "
                          "for the same inputs)")
    sub.add_argument("--out-dir",
                     help="batch mode: write converted programs here, "
                          "one <name>.cob each")
    sub.add_argument("--trace",
                     help="write a trace file (Chrome trace format plus "
                          "the native span tree) of the conversion")
    sub.add_argument("--profile", action="store_true",
                     help="print the per-phase/per-operator time table "
                          "to stderr")
    sub.set_defaults(handler=cmd_convert)

    sub = subparsers.add_parser(
        "run",
        help="load a database (loader program) and run a program; "
             "with --spec, convert and run on the restructured DB")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--program", required=True)
    sub.add_argument("--data", help="loader program (STOREs)")
    sub.add_argument("--inputs", help="terminal input lines, one per line")
    sub.add_argument("--spec")
    sub.add_argument("--target-model", default=None,
                     choices=["network", "relational", "hierarchical"])
    sub.set_defaults(handler=cmd_run)

    sub = subparsers.add_parser(
        "check",
        help="convert a program and verify I/O equivalence "
             "(Section 1.1) against a loaded instance")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--spec", required=True)
    sub.add_argument("--program", required=True)
    sub.add_argument("--data", help="loader program (STOREs)")
    sub.add_argument("--inputs", help="terminal input lines, one per line")
    sub.set_defaults(handler=cmd_check)

    sub = subparsers.add_parser(
        "bench",
        help="run a perf suite (translate: BENCH_translate.json; "
             "programs: BENCH_programs.json)")
    sub.add_argument("--suite", choices=("translate", "programs"),
                     default="translate",
                     help="which suite to run (default: translate)")
    sub.add_argument("--sizes", default="1000",
                     help="translate suite: comma-separated total row "
                          "counts (default: 1000; the full baseline "
                          "uses 1000,10000)")
    sub.add_argument("--out", default="BENCH_translate.json",
                     help="report path (programs suite defaults to "
                          "BENCH_programs.json)")
    sub.add_argument("--seed", type=int, default=1979)
    sub.add_argument("--no-compare", action="store_true",
                     help="translate suite: skip the linear-scan "
                          "hierarchical load comparison (it is "
                          "quadratic by design)")
    sub.add_argument("--smoke", action="store_true",
                     help="smallest scales only, for CI smoke runs")
    sub.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                     help="diff two BENCH_*.json reports instead of "
                          "running a suite (regressions warn, "
                          "config/schema changes fail)")
    sub.set_defaults(handler=cmd_bench)

    sub = subparsers.add_parser(
        "trace",
        help="inspect trace files written by convert --trace")
    trace_subparsers = sub.add_subparsers(dest="trace_command",
                                          required=True)
    sub = trace_subparsers.add_parser(
        "summarize", help="render a trace file's profile table")
    sub.add_argument("file")
    sub.add_argument("--top", type=int, default=15,
                     help="show only the N hottest span names "
                          "(default: 15)")
    sub.set_defaults(handler=cmd_trace_summarize)

    sub = subparsers.add_parser(
        "serve",
        help="run the conversion service: an HTTP job server with "
             "SSE progress streaming over the batch facade",
        epilog="exit codes: 0 clean drain after SIGTERM/SIGINT (any "
               "interrupted job leaves a resumable checkpoint in the "
               "spool -- resubmit it with {\"resume\": \"<job-id>\"}); "
               "2 usage error; 4 the listener or spool could not be "
               "set up")
    sub.add_argument("--spool", required=True,
                     help="directory for job manifests, checkpoints, "
                          "and report artifacts (created if missing; "
                          "jobs found in it on startup are reloaded)")
    sub.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    sub.add_argument("--port", type=int, default=8979,
                     help="TCP port; 0 binds an ephemeral port "
                          "(default: 8979)")
    sub.add_argument("--queue-limit", type=int, default=16,
                     help="maximum queued jobs before POST /jobs "
                          "answers 503 (default: 16)")
    sub.add_argument("--no-warm-pools", action="store_true",
                     help="disable the shared warm-state caches "
                          "(worker pool and built cascade); each job "
                          "rebuilds its probe databases and each "
                          "parallel job spawns and tears down its own "
                          "pool")
    sub.set_defaults(handler=cmd_serve)

    sub = subparsers.add_parser(
        "rules",
        help="inspect and validate conversion-rule catalogs")
    rules_subparsers = sub.add_subparsers(dest="rules_command",
                                          required=True)
    sub = rules_subparsers.add_parser(
        "validate",
        help="load-time validate a rule-catalog file (exit 2 with "
             "file/line position on the first violation)")
    sub.add_argument("file")
    sub.set_defaults(handler=cmd_rules_validate)
    sub = rules_subparsers.add_parser(
        "show",
        help="print a catalog in canonical form (default: the "
             "shipped builtin catalog)")
    sub.add_argument("file", nargs="?", default=None)
    sub.set_defaults(handler=cmd_rules_show)

    sub = subparsers.add_parser(
        "suggest-renames",
        help="propose rename hypotheses between two schemas")
    sub.add_argument("--ddl", required=True)
    sub.add_argument("--target-ddl", required=True)
    sub.set_defaults(handler=cmd_suggest_renames)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
