"""Relational database over the common schema.

Record types become base relations over their *stored* fields plus, for
each non-SYSTEM set membership, foreign-key columns named after the
owner's CALC key (Figure 3.1a style).  Sets are metadata only: the
paper's point in Section 3.1 is that the relational model enforces
nothing but key uniqueness -- so inserts here check declared UniqueKey
constraints and nothing else, and the rest is caught (or not) at the
run-unit boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.engine.metrics import Metrics
from repro.engine.savepoint import Savepoint, check_owner, fingerprint
from repro.engine.storage import Record
from repro.errors import IntegrityError, QueryError, UniquenessViolation
from repro.relational.relation import Relation
from repro.schema.constraints import UniqueKey, Violation, check_all
from repro.schema.model import Schema, SetType


def fk_columns(schema: Schema, set_type: SetType,
               _visited: frozenset[str] = frozenset()) -> list[str]:
    """The member-side columns referencing the owner of a set.

    The owner's CALC key names, e.g. COURSE-OFFERING carries CNO for
    the course set and S for the semester set.  When the owner is
    itself a member of further sets (a *weak entity* like the
    interposed DEPT of Figure 4.4, whose DEPT-NAME is unique only
    within a division), the foreign key is composite: the owner's key
    plus, recursively, the owner's own foreign-key columns -- so EMP
    carries (DEPT-NAME, DIV-NAME).  Raises when the owner declares no
    CALC key (the relational interpretation needs one).
    """
    if set_type.system_owned:
        return []
    owner = schema.record(set_type.owner)
    if not owner.calc_keys:
        raise QueryError(
            f"set {set_type.name}: owner {set_type.owner} has no CALC key "
            "to serve as the relational foreign key"
        )
    columns = list(owner.calc_keys)
    if set_type.owner in _visited:
        return columns  # ownership cycle: stop at the direct key
    visited = _visited | {set_type.owner}
    for upper in schema.sets_with_member(set_type.owner):
        if upper.system_owned:
            continue
        for column in fk_columns(schema, upper, visited):
            if column not in columns:
                columns.append(column)
    return columns


def relation_columns(schema: Schema, record_name: str) -> list[str]:
    """Columns of a record type's base relation: stored fields plus any
    missing foreign-key columns for its set memberships."""
    record_type = schema.record(record_name)
    columns = list(record_type.stored_field_names())
    for set_type in schema.sets_with_member(record_name):
        for column in fk_columns(schema, set_type):
            if column not in columns:
                columns.append(column)
    return columns


def index_columns(schema: Schema, record_name: str) -> list[tuple[str, ...]]:
    """The column tuples worth indexing on a base relation: the CALC
    (primary) key, each set membership's foreign-key columns, the same
    columns on the owner side (so owner lookups are keyed), and every
    declared UniqueKey."""
    record_type = schema.record(record_name)
    relation_cols = set(relation_columns(schema, record_name))
    out: list[tuple[str, ...]] = []

    def add(columns: tuple[str, ...]) -> None:
        if not columns or columns in out:
            return
        if all(column in relation_cols for column in columns):
            out.append(columns)

    add(tuple(record_type.calc_keys))
    for set_type in schema.sets_with_member(record_name):
        add(tuple(fk_columns(schema, set_type)))
    for set_type in schema.sets_owned_by(record_name):
        if not set_type.system_owned:
            add(tuple(fk_columns(schema, set_type)))
    for constraint in schema.constraints:
        if isinstance(constraint, UniqueKey) and \
                constraint.record == record_name:
            add(tuple(constraint.fields))
    return out


class RelationalDatabase:
    """Base relations for every record type of a schema.

    ``use_indexes=False`` restores the seed's index-free linear-scan
    execution (the escape hatch mirroring the snapshot pattern); the
    default builds maintained HashIndexes on primary-key, foreign-key,
    and unique-key columns of every base relation.
    """

    def __init__(self, schema: Schema, metrics: Metrics | None = None,
                 use_indexes: bool = True):
        schema.validate()
        self.schema = schema
        self.metrics = metrics if metrics is not None else Metrics()
        self.use_indexes = use_indexes
        self.relations: dict[str, Relation] = {
            name: Relation(name, relation_columns(schema, name),
                           metrics=self.metrics, use_indexes=use_indexes)
            for name in schema.records
        }
        if use_indexes:
            for name, relation in self.relations.items():
                for columns in index_columns(schema, name):
                    relation.add_index(columns)

    # -- access -------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise QueryError(f"no relation {name}") from None

    def insert(self, relation_name: str, row: dict[str, Any],
               enforce_keys: bool = True) -> dict[str, Any]:
        """INSERT one row; checks declared UniqueKey constraints (the
        one thing the 1979 relational model enforces natively)."""
        self.metrics.dml_calls += 1
        relation = self.relation(relation_name)
        if enforce_keys:
            for constraint in self.schema.constraints:
                if not isinstance(constraint, UniqueKey):
                    continue
                if constraint.record != relation_name:
                    continue
                key = tuple(row.get(f) for f in constraint.fields)
                if any(part is None for part in key):
                    continue
                equal = dict(zip(constraint.fields, key))
                clashes = relation.lookup_rows(equal)
                if clashes is None:
                    clashes = [
                        existing for existing in relation
                        if tuple(existing.get(f)
                                 for f in constraint.fields) == key
                    ]
                if clashes:
                    raise UniquenessViolation(
                        f"{relation_name}: duplicate key {key!r} "
                        f"({constraint.name})"
                    )
        return relation.append(row)

    def insert_many(self, relation_name: str, rows: list[dict[str, Any]],
                    enforce_keys: bool = True) -> list[dict[str, Any]]:
        """Bulk :meth:`insert`: the UniqueKey check scans the existing
        relation once per constraint (building a key set) instead of
        once per inserted row."""
        self.metrics.dml_calls += 1
        relation = self.relation(relation_name)
        if enforce_keys:
            constraints = [
                c for c in self.schema.constraints
                if isinstance(c, UniqueKey) and c.record == relation_name
            ]
            for constraint in constraints:
                seen = set()
                for existing in relation:
                    key = tuple(existing.get(f) for f in constraint.fields)
                    if not any(part is None for part in key):
                        seen.add(key)
                for row in rows:
                    key = tuple(row.get(f) for f in constraint.fields)
                    if any(part is None for part in key):
                        continue
                    if key in seen:
                        raise UniquenessViolation(
                            f"{relation_name}: duplicate key {key!r} "
                            f"({constraint.name})"
                        )
                    seen.add(key)
        return relation.extend(rows)

    def delete_where(self, relation_name: str, predicate,
                     equal: dict[str, Any] | None = None) -> int:
        self.metrics.dml_calls += 1
        return self.relation(relation_name).remove_where(predicate,
                                                         equal=equal)

    def update_where(self, relation_name: str, predicate,
                     updates: dict[str, Any],
                     equal: dict[str, Any] | None = None) -> int:
        self.metrics.dml_calls += 1
        return self.relation(relation_name).update_where(predicate, updates,
                                                         equal=equal)

    # -- DatabaseView protocol -------------------------------------------------

    def instances(self, record_name: str) -> Iterator[Record]:
        """Rows exposed as Record objects (rid = 1-based row position)."""
        relation = self.relation(record_name)
        for position, row in enumerate(relation, start=1):
            yield Record(position, record_name, dict(row))

    def owner_record(self, set_name: str, member_rid: int) -> Record | None:
        set_type = self.schema.set_type(set_name)
        if set_type.system_owned:
            return None
        member_rows = self.relation(set_type.member).rows()
        if not 1 <= member_rid <= len(member_rows):
            return None
        member_row = member_rows[member_rid - 1]
        columns = fk_columns(self.schema, set_type)
        key = tuple(member_row.get(c) for c in columns)
        if any(part is None for part in key):
            return None
        owner_relation = self.relation(set_type.owner)
        hits = owner_relation.lookup_positions(dict(zip(columns, key)))
        if hits is not None:
            for position, row in hits:
                return Record(position, set_type.owner, dict(row))
            return None
        for position, row in enumerate(owner_relation, start=1):
            if tuple(row.get(c) for c in columns) == key:
                return Record(position, set_type.owner, dict(row))
        return None

    def member_records(self, set_name: str, owner_rid: int) -> Iterator[Record]:
        set_type = self.schema.set_type(set_name)
        columns = fk_columns(self.schema, set_type)
        if set_type.system_owned:
            yield from self.instances(set_type.member)
            return
        owner_rows = self.relation(set_type.owner).rows()
        if not 1 <= owner_rid <= len(owner_rows):
            return
        key = tuple(owner_rows[owner_rid - 1].get(c) for c in columns)
        member_relation = self.relation(set_type.member)
        hits = member_relation.lookup_positions(dict(zip(columns, key)))
        if hits is not None:
            for position, row in hits:
                yield Record(position, set_type.member, dict(row))
            return
        for position, row in enumerate(member_relation, start=1):
            if tuple(row.get(c) for c in columns) == key:
                yield Record(position, set_type.member, dict(row))

    def read_field(self, record: Record, field_name: str) -> Any:
        """Column access; VIRTUAL fields resolve through the FK."""
        record_type = self.schema.record(record.type_name)
        if record_type.has_field(field_name):
            fld = record_type.field(field_name)
            if fld.is_virtual:
                owner = self.owner_record(fld.virtual_via, record.rid)
                if owner is None:
                    return None
                return self.read_field(owner, fld.virtual_using)
        return record.get(field_name)

    # -- integrity ---------------------------------------------------------------

    def check_constraints(self) -> list[Violation]:
        return check_all(self)

    def verify_consistent(self) -> None:
        violations = self.check_constraints()
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise IntegrityError(
                f"database inconsistent ({len(violations)} violations): "
                f"{summary}",
                constraint=violations[0].constraint,
            )

    @contextmanager
    def run_unit(self) -> Iterator["RelationalDatabase"]:
        yield self
        self.verify_consistent()

    def count(self, relation_name: str) -> int:
        return len(self.relation(relation_name))

    # -- savepoints --------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture every base relation (metrics excluded, as for the
        other engines)."""
        parts = {
            f"relation:{name}": relation.savepoint()
            for name, relation in self.relations.items()
        }
        return Savepoint("relational-db", id(self), parts=parts)

    def rollback(self, savepoint: Savepoint) -> None:
        check_owner(savepoint, "relational-db", self)
        for name, relation in self.relations.items():
            relation.rollback(savepoint.part(f"relation:{name}"))

    def state_fingerprint(self) -> str:
        return fingerprint((
            "relational", self.schema.name,
            tuple(relation.state_fingerprint_data()
                  for relation in self.relations.values()),
        ))
