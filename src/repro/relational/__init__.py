"""Relational data model.

The 1979-vintage relational model as the paper discusses it: relations
of tuples, key declarations as the only native constraint (Section 3.1),
a relational algebra for the Michigan code-template work (Section 4.3),
and a SEQUEL subset for the Florida language templates (Section 4.1).

Owner-coupled sets from the common schema are interpreted as foreign
keys: the member relation carries columns matching the owner's CALC key
(exactly Figure 3.1a, where COURSE-OFFERING(CNO, S, ...) references
COURSE(CNO, ...) and SEMESTER(S, ...)).
"""

from repro.relational.relation import Relation
from repro.relational.database import RelationalDatabase
from repro.relational.algebra import (
    difference,
    join,
    project,
    rename,
    select,
    select_eq,
    select_join,
    sort,
    union,
)
from repro.relational.sequel import evaluate, parse_sequel, SequelQuery

__all__ = [
    "Relation",
    "RelationalDatabase",
    "select",
    "select_eq",
    "select_join",
    "project",
    "join",
    "union",
    "difference",
    "rename",
    "sort",
    "parse_sequel",
    "evaluate",
    "SequelQuery",
]
