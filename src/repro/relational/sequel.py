"""SEQUEL subset: parser and evaluator.

The Florida work expresses relational language templates in SEQUEL
(Section 4.1, example (A))::

    SELECT ENAME FROM EMP WHERE E# IN
        SELECT E# FROM EMP-DEPT
        WHERE D# = 'D2' AND YEAR-OF-SERVICE = 3

The subset implemented is what the paper's templates need: SELECT with
a column list or ``*``, one FROM table, a WHERE conjunction of
comparisons and uncorrelated IN-subqueries, and ORDER BY.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Union

from repro.errors import QueryError
from repro.relational.algebra import project, select_eq, sort
from repro.relational.database import RelationalDatabase
from repro.relational.relation import Relation


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A ``?NAME`` placeholder, substituted from a program variable
    before evaluation (the RelQuery parameter mechanism)."""

    name: str

    def render(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Comparison:
    """``column op literal`` -- op in =, <>, <, <=, >, >=."""

    column: str
    op: str
    value: Any

    def render(self) -> str:
        if isinstance(self.value, Param):
            value = self.value.render()
        elif isinstance(self.value, str):
            value = f"'{self.value}'"
        else:
            value = str(self.value)
        return f"{self.column} {self.op} {value}"


@dataclass(frozen=True)
class InSubquery:
    """``column IN (SELECT ...)``."""

    column: str
    query: "SequelQuery"

    def render(self) -> str:
        return f"{self.column} IN ({self.query.render()})"


Condition = Union[Comparison, InSubquery]


@dataclass(frozen=True)
class SequelQuery:
    """One SELECT block."""

    columns: tuple[str, ...]          # empty tuple means SELECT *
    table: str
    where: tuple[Condition, ...] = ()
    order_by: tuple[str, ...] = ()

    def render(self) -> str:
        column_text = ", ".join(self.columns) if self.columns else "*"
        text = f"SELECT {column_text} FROM {self.table}"
        if self.where:
            text += " WHERE " + " AND ".join(c.render() for c in self.where)
        if self.order_by:
            text += " ORDER BY " + ", ".join(self.order_by)
        return text


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


_SEQUEL_TOKEN_RE = re.compile(
    r"""
    '(?:[^']*)'
    | \?[A-Za-z0-9][A-Za-z0-9\-#_.]*
    | [A-Za-z0-9][A-Za-z0-9\-#_.]*
    | <> | <= | >= | [=<>(),*]
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "IN", "ORDER", "BY"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _SEQUEL_TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"SEQUEL: unexpected character {text[pos]!r}")
        tokens.append(match.group(0))
        pos = match.end()
    return tokens


class _SequelParser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _peek_upper(self) -> str | None:
        token = self._peek()
        return token.upper() if token is not None else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("SEQUEL: unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, keyword: str) -> None:
        token = self._next()
        if token.upper() != keyword:
            raise QueryError(f"SEQUEL: expected {keyword}, got {token!r}")

    def parse_query(self) -> SequelQuery:
        self._expect("SELECT")
        columns: tuple[str, ...]
        if self._peek() == "*":
            self._next()
            columns = ()
        else:
            names = [self._identifier()]
            while self._peek() == ",":
                self._next()
                names.append(self._identifier())
            columns = tuple(names)
        self._expect("FROM")
        table = self._identifier()
        where: list[Condition] = []
        order_by: tuple[str, ...] = ()
        if self._peek_upper() == "WHERE":
            self._next()
            where.append(self._condition())
            while self._peek_upper() == "AND":
                self._next()
                where.append(self._condition())
        if self._peek_upper() == "ORDER":
            self._next()
            self._expect("BY")
            keys = [self._identifier()]
            while self._peek() == ",":
                self._next()
                keys.append(self._identifier())
            order_by = tuple(keys)
        return SequelQuery(columns, table, tuple(where), order_by)

    def _identifier(self) -> str:
        token = self._next()
        if token.upper() in _KEYWORDS or not re.match(r"[A-Za-z0-9]", token):
            raise QueryError(f"SEQUEL: expected identifier, got {token!r}")
        return token.upper()

    def _condition(self) -> Condition:
        column = self._identifier()
        token = self._next()
        upper = token.upper()
        if upper == "IN":
            parenthesized = self._peek() == "("
            if parenthesized:
                self._next()
            subquery = self.parse_query()
            if parenthesized:
                closing = self._next()
                if closing != ")":
                    raise QueryError(
                        f"SEQUEL: expected ')', got {closing!r}"
                    )
            return InSubquery(column, subquery)
        if upper in ("=", "<>", "<", "<=", ">", ">="):
            return Comparison(column, upper, self._literal())
        raise QueryError(f"SEQUEL: expected an operator, got {token!r}")

    def _literal(self) -> Any:
        token = self._next()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        if token.startswith("?"):
            return Param(token[1:])
        try:
            return int(token)
        except ValueError:
            raise QueryError(
                f"SEQUEL: expected a literal, got {token!r}"
            ) from None


def parse_sequel(text: str) -> SequelQuery:
    """Parse one SEQUEL SELECT statement."""
    parser = _SequelParser(_tokenize(text))
    query = parser.parse_query()
    trailing = parser._peek()
    if trailing is not None:
        raise QueryError(f"SEQUEL: text after query: {trailing!r}")
    return query


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
}


RowCheck = Callable[[dict[str, Any]], bool]

#: Per-statement plan cache: (query, base columns) -> (equality
#: conjuncts answerable by an index, compiled residual checks).  Frozen
#: dataclass queries hash by value, so re-parsing the same statement
#: text still hits.
_PLAN_CACHE: dict[tuple[SequelQuery, tuple[str, ...]],
                  tuple[dict[str, Any], tuple[RowCheck, ...]]] = {}


def _compile_comparison(comparison: Comparison, table: str) -> RowCheck:
    """One comparison AST node -> one reusable closure over a row.

    The per-row error semantics of the interpreted path are preserved:
    unbound parameters and unknown columns only raise when a row is
    actually tested.
    """
    value = comparison.value
    if isinstance(value, Param):
        def check(row: dict[str, Any], name: str = value.name) -> bool:
            raise QueryError(
                f"SEQUEL: unbound parameter ?{name} "
                "(substitute program variables before evaluation)"
            )
        return check
    op = _OPS[comparison.op]
    column = comparison.column

    def check(row: dict[str, Any]) -> bool:
        if column not in row:
            raise QueryError(
                f"SEQUEL: {table} has no column {column}"
            )
        return op(row[column], value)
    return check


def _plan(query: SequelQuery, columns: list[str]
          ) -> tuple[dict[str, Any], tuple[RowCheck, ...]]:
    """Split the WHERE comparisons into index-routable equality
    conjuncts and compiled residual checks, caching per statement."""
    cache_key = (query, tuple(columns))
    cached = _PLAN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    equal: dict[str, Any] = {}
    checks: list[RowCheck] = []
    known = set(columns)
    for condition in query.where:
        if not isinstance(condition, Comparison):
            continue
        routable = (
            condition.op == "="
            and not isinstance(condition.value, Param)
            and condition.column in known
            and condition.column not in equal
        )
        if routable:
            equal[condition.column] = condition.value
        else:
            checks.append(_compile_comparison(condition, query.table))
    plan = (equal, tuple(checks))
    _PLAN_CACHE[cache_key] = plan
    return plan


def evaluate(query: SequelQuery, db: RelationalDatabase) -> Relation:
    """Run a query, returning a materialized result relation.

    Subqueries are uncorrelated, so each is materialized once and
    turned into a membership set.  Equality conjuncts over base columns
    route through the relation's covering index when one is maintained;
    the remaining conditions run as compiled residual checks (cached per
    statement, not rebuilt per row).
    """
    db.metrics.dml_calls += 1
    base = db.relation(query.table)
    memberships: list[tuple[str, set]] = []
    for condition in query.where:
        if isinstance(condition, InSubquery):
            inner = evaluate(condition.query, db)
            if len(inner.columns) != 1 and condition.query.columns:
                values = set(inner.column_values(condition.query.columns[0]))
            else:
                values = set(inner.column_values(inner.columns[0]))
            memberships.append((condition.column, values))
    equal, checks = _plan(query, base.columns)

    def predicate(row: dict[str, Any]) -> bool:
        for check in checks:
            if not check(row):
                return False
        for column, values in memberships:
            if row.get(column) not in values:
                return False
        return True

    residual = predicate if (checks or memberships) else None
    result = select_eq(base, equal, residual, name=f"result({query.table})")
    if query.order_by:
        result = sort(result, query.order_by)
    if query.columns:
        result = project(result, query.columns, dedup=False,
                         name=f"result({query.table})")
    return result
