"""Relational algebra.

The Michigan code-template approach builds conversion around operators
"correspond[ing] to a operator in the relational algebra" (Section 4.3),
and Housel's common language is "a subset of CONVERT plus some of Codd's
relational operators ... designed to have convenient algebraic
properties to facilitate program transformation" (Section 2.2).  These
are those operators, over materialized :class:`Relation` values.

Every operator returns a fresh Relation wired to the same metrics
object, so the cost of intermediate materialization shows up in the
experiments (the bridge strategy's reconstruction cost, E5).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.engine.index import _orderable
from repro.errors import QueryError
from repro.relational.relation import Relation

Predicate = Callable[[dict[str, Any]], bool]


def select(relation: Relation, predicate: Predicate,
           name: str | None = None) -> Relation:
    """sigma: rows satisfying the predicate."""
    out = relation.derived(name or f"select({relation.name})",
                           relation.columns)
    for row in relation:
        if predicate(row):
            out.append(row)
    return out


def project(relation: Relation, columns: Iterable[str],
            name: str | None = None, dedup: bool = True) -> Relation:
    """pi: keep the named columns; duplicates removed by default (Codd
    semantics; pass dedup=False for the multiset behaviour SEQUEL
    exhibits)."""
    columns = list(columns)
    missing = [c for c in columns if c not in relation.columns]
    if missing:
        raise QueryError(
            f"project: {relation.name} has no columns {missing}"
        )
    out = relation.derived(name or f"project({relation.name})", columns)
    seen: set[tuple] = set()
    for row in relation:
        projected = {c: row[c] for c in columns}
        if dedup:
            key = tuple(_orderable(projected[c]) for c in columns)
            if key in seen:
                continue
            seen.add(key)
        out.append(projected)
    return out


def join(left: Relation, right: Relation,
         on: Iterable[tuple[str, str]],
         name: str | None = None) -> Relation:
    """Equi-join on (left column, right column) pairs.

    Right columns that collide with left column names are prefixed
    with the right relation's name.
    """
    on = list(on)
    for left_col, right_col in on:
        if left_col not in left.columns:
            raise QueryError(f"join: {left.name} has no column {left_col}")
        if right_col not in right.columns:
            raise QueryError(f"join: {right.name} has no column {right_col}")
    rename_map = {
        col: (f"{right.name}.{col}" if col in left.columns else col)
        for col in right.columns
    }
    out_columns = left.columns + [rename_map[c] for c in right.columns]
    out = left.derived(name or f"join({left.name},{right.name})", out_columns)
    # Hash join on the right side.
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for row in right:
        key = tuple(_orderable(row[rc]) for _lc, rc in on)
        buckets.setdefault(key, []).append(row)
    for row in left:
        key = tuple(_orderable(row[lc]) for lc, _rc in on)
        left.metrics.index_probes += 1
        for match in buckets.get(key, []):
            combined = dict(row)
            combined.update({rename_map[c]: match[c] for c in right.columns})
            out.append(combined)
    return out


def union(left: Relation, right: Relation,
          name: str | None = None) -> Relation:
    """Set union (columns must match by name)."""
    if set(left.columns) != set(right.columns):
        raise QueryError(
            f"union: column mismatch {left.columns} vs {right.columns}"
        )
    out = left.derived(name or f"union({left.name},{right.name})",
                       left.columns)
    seen: set[tuple] = set()
    for source in (left, right):
        for row in source:
            key = tuple(_orderable(row[c]) for c in left.columns)
            if key in seen:
                continue
            seen.add(key)
            out.append({c: row[c] for c in left.columns})
    return out


def difference(left: Relation, right: Relation,
               name: str | None = None) -> Relation:
    """Set difference (left rows absent from right)."""
    if set(left.columns) != set(right.columns):
        raise QueryError(
            f"difference: column mismatch {left.columns} vs {right.columns}"
        )
    exclude = {
        tuple(_orderable(row[c]) for c in left.columns)
        for row in right
    }
    out = left.derived(name or f"difference({left.name},{right.name})",
                       left.columns)
    for row in left:
        key = tuple(_orderable(row[c]) for c in left.columns)
        if key not in exclude:
            out.append(row)
    return out


def rename(relation: Relation, mapping: dict[str, str],
           name: str | None = None) -> Relation:
    """rho: rename columns."""
    for old in mapping:
        if old not in relation.columns:
            raise QueryError(f"rename: {relation.name} has no column {old}")
    out_columns = [mapping.get(c, c) for c in relation.columns]
    out = relation.derived(name or f"rename({relation.name})", out_columns)
    for row in relation:
        out.append({mapping.get(c, c): row[c] for c in relation.columns})
    return out


def sort(relation: Relation, keys: Iterable[str],
         name: str | None = None) -> Relation:
    """Order rows by the key columns (the Maryland SORT(FIND(...))
    wrapper of Section 4.2)."""
    keys = list(keys)
    for key in keys:
        if key not in relation.columns:
            raise QueryError(f"sort: {relation.name} has no column {key}")
    relation.metrics.sort_operations += 1
    ordered = sorted(
        relation,
        key=lambda row: tuple(_orderable(row[k]) for k in keys),
    )
    out = relation.derived(name or f"sort({relation.name})",
                           relation.columns)
    for row in ordered:
        out.append(row)
    return out
