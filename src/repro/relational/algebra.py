"""Relational algebra.

The Michigan code-template approach builds conversion around operators
"correspond[ing] to a operator in the relational algebra" (Section 4.3),
and Housel's common language is "a subset of CONVERT plus some of Codd's
relational operators ... designed to have convenient algebraic
properties to facilitate program transformation" (Section 2.2).  These
are those operators, over materialized :class:`Relation` values.

Every operator returns a fresh Relation wired to the same metrics
object, so the cost of intermediate materialization shows up in the
experiments (the bridge strategy's reconstruction cost, E5).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.engine.ordering import orderable
from repro.errors import QueryError
from repro.relational.relation import Relation

Predicate = Callable[[dict[str, Any]], bool]


def select(relation: Relation, predicate: Predicate,
           name: str | None = None) -> Relation:
    """sigma: rows satisfying the predicate."""
    out = relation.derived(name or f"select({relation.name})",
                           relation.columns)
    for row in relation:
        if predicate(row):
            out.append(row)
    return out


def select_eq(relation: Relation, equal: dict[str, Any],
              predicate: Predicate | None = None,
              name: str | None = None) -> Relation:
    """sigma over equality conjuncts plus an optional residual predicate.

    The equality part is answered through the relation's best covering
    index when one is maintained; otherwise (derived relations, disabled
    indexes) this degenerates to a counted full scan with identical
    results and row order.
    """
    for column in equal:
        if column not in relation.columns:
            raise QueryError(
                f"select: {relation.name} has no column {column}"
            )
    out = relation.derived(name or f"select({relation.name})",
                           relation.columns)
    rows = relation.lookup_rows(equal) if equal else None
    if rows is not None:
        for row in rows:
            if predicate is None or predicate(row):
                out.append(row)
        return out
    if equal:
        relation.metrics.full_scans += 1
    for row in relation:
        if all(row.get(c) == v for c, v in equal.items()) and \
                (predicate is None or predicate(row)):
            out.append(row)
    return out


def project(relation: Relation, columns: Iterable[str],
            name: str | None = None, dedup: bool = True) -> Relation:
    """pi: keep the named columns; duplicates removed by default (Codd
    semantics; pass dedup=False for the multiset behaviour SEQUEL
    exhibits)."""
    columns = list(columns)
    missing = [c for c in columns if c not in relation.columns]
    if missing:
        raise QueryError(
            f"project: {relation.name} has no columns {missing}"
        )
    out = relation.derived(name or f"project({relation.name})", columns)
    seen: set[tuple] = set()
    for row in relation:
        projected = {c: row[c] for c in columns}
        if dedup:
            key = tuple(orderable(projected[c]) for c in columns)
            if key in seen:
                continue
            seen.add(key)
        out.append(projected)
    return out


def join(left: Relation, right: Relation,
         on: Iterable[tuple[str, str]],
         name: str | None = None) -> Relation:
    """Equi-join on (left column, right column) pairs.

    Right columns that collide with left column names are prefixed
    with the right relation's name.
    """
    on = list(on)
    for left_col, right_col in on:
        if left_col not in left.columns:
            raise QueryError(f"join: {left.name} has no column {left_col}")
        if right_col not in right.columns:
            raise QueryError(f"join: {right.name} has no column {right_col}")
    rename_map = {
        col: (f"{right.name}.{col}" if col in left.columns else col)
        for col in right.columns
    }
    out_columns = left.columns + [rename_map[c] for c in right.columns]
    out = left.derived(name or f"join({left.name},{right.name})", out_columns)

    def combine(row: dict[str, Any], match: dict[str, Any]) -> None:
        combined = dict(row)
        combined.update({rename_map[c]: match[c] for c in right.columns})
        out.append(combined)

    # Hash join, building the table over the smaller (cardinality-
    # ordered) input.  Output order is left-major either way: for each
    # left row in order, its matches in right-scan order.
    if len(right) <= len(left):
        buckets: dict[tuple, list[dict[str, Any]]] = {}
        for row in right:
            key = tuple(orderable(row[rc]) for _lc, rc in on)
            buckets.setdefault(key, []).append(row)
        for row in left:
            key = tuple(orderable(row[lc]) for lc, _rc in on)
            left.metrics.index_probes += 1
            for match in buckets.get(key, []):
                combine(row, match)
    else:
        left_buckets: dict[tuple, list[int]] = {}
        left_rows: list[dict[str, Any]] = []
        for position, row in enumerate(left):
            key = tuple(orderable(row[lc]) for lc, _rc in on)
            left_buckets.setdefault(key, []).append(position)
            left_rows.append(row)
        matches: dict[int, list[dict[str, Any]]] = {}
        for row in right:
            key = tuple(orderable(row[rc]) for _lc, rc in on)
            right.metrics.index_probes += 1
            for position in left_buckets.get(key, []):
                matches.setdefault(position, []).append(row)
        for position, row in enumerate(left_rows):
            for match in matches.get(position, []):
                combine(row, match)
    return out


def select_join(left: Relation, right: Relation,
                on: Iterable[tuple[str, str]],
                left_equal: dict[str, Any] | None = None,
                right_equal: dict[str, Any] | None = None,
                left_predicate: Predicate | None = None,
                right_predicate: Predicate | None = None,
                name: str | None = None) -> Relation:
    """Plan ``sigma(join(L, R))`` as ``join(sigma(L), sigma(R))``.

    Per-side selections are pushed below the join -- served by each base
    relation's covering index where one exists -- and the filtered
    inputs then feed :func:`join`, which hashes whichever side came out
    smaller.  Equivalent to joining first and selecting after, but the
    access-path length scales with the filtered cardinalities.
    """
    if left_equal or left_predicate is not None:
        left = select_eq(left, left_equal or {}, left_predicate,
                         name=f"select({left.name})")
    if right_equal or right_predicate is not None:
        right = select_eq(right, right_equal or {}, right_predicate,
                          name=f"select({right.name})")
    return join(left, right, on, name=name)


def union(left: Relation, right: Relation,
          name: str | None = None) -> Relation:
    """Set union (columns must match by name)."""
    if set(left.columns) != set(right.columns):
        raise QueryError(
            f"union: column mismatch {left.columns} vs {right.columns}"
        )
    out = left.derived(name or f"union({left.name},{right.name})",
                       left.columns)
    seen: set[tuple] = set()
    for source in (left, right):
        for row in source:
            key = tuple(orderable(row[c]) for c in left.columns)
            if key in seen:
                continue
            seen.add(key)
            out.append({c: row[c] for c in left.columns})
    return out


def difference(left: Relation, right: Relation,
               name: str | None = None) -> Relation:
    """Set difference (left rows absent from right)."""
    if set(left.columns) != set(right.columns):
        raise QueryError(
            f"difference: column mismatch {left.columns} vs {right.columns}"
        )
    exclude = {
        tuple(orderable(row[c]) for c in left.columns)
        for row in right
    }
    out = left.derived(name or f"difference({left.name},{right.name})",
                       left.columns)
    for row in left:
        key = tuple(orderable(row[c]) for c in left.columns)
        if key not in exclude:
            out.append(row)
    return out


def rename(relation: Relation, mapping: dict[str, str],
           name: str | None = None) -> Relation:
    """rho: rename columns."""
    for old in mapping:
        if old not in relation.columns:
            raise QueryError(f"rename: {relation.name} has no column {old}")
    out_columns = [mapping.get(c, c) for c in relation.columns]
    out = relation.derived(name or f"rename({relation.name})", out_columns)
    for row in relation:
        out.append({mapping.get(c, c): row[c] for c in relation.columns})
    return out


def sort(relation: Relation, keys: Iterable[str],
         name: str | None = None) -> Relation:
    """Order rows by the key columns (the Maryland SORT(FIND(...))
    wrapper of Section 4.2)."""
    keys = list(keys)
    for key in keys:
        if key not in relation.columns:
            raise QueryError(f"sort: {relation.name} has no column {key}")
    relation.metrics.sort_operations += 1
    ordered = sorted(
        relation,
        key=lambda row: tuple(orderable(row[k]) for k in keys),
    )
    out = relation.derived(name or f"sort({relation.name})",
                           relation.columns)
    for row in ordered:
        out.append(row)
    return out
