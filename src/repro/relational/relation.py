"""Relations: named, typed collections of tuples.

A :class:`Relation` is a materialized table -- either a base relation
living in a :class:`RelationalDatabase` or an intermediate result of
the algebra.  Rows are plain dicts; column order is declared and
preserved through operations so printed results are deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.engine.metrics import Metrics
from repro.errors import QueryError


class Relation:
    """An ordered collection of rows over a fixed column list."""

    def __init__(self, name: str, columns: Iterable[str],
                 rows: Iterable[dict[str, Any]] = (),
                 metrics: Metrics | None = None):
        self.name = name
        self.columns = list(columns)
        self.metrics = metrics if metrics is not None else Metrics()
        self._rows: list[dict[str, Any]] = []
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self._rows:
            self.metrics.records_read += 1
            yield row

    def append(self, row: dict[str, Any]) -> dict[str, Any]:
        """Add a row (missing columns become None; extras rejected)."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise QueryError(
                f"relation {self.name}: unknown columns {sorted(unknown)}"
            )
        complete = {col: row.get(col) for col in self.columns}
        self._rows.append(complete)
        self.metrics.records_written += 1
        return complete

    def extend(self, rows: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
        """Bulk :meth:`append`: same validation per row, one metrics
        update for the whole batch."""
        known = set(self.columns)
        completed = []
        for row in rows:
            unknown = set(row) - known
            if unknown:
                raise QueryError(
                    f"relation {self.name}: unknown columns "
                    f"{sorted(unknown)}"
                )
            completed.append({col: row.get(col) for col in self.columns})
        self._rows.extend(completed)
        self.metrics.records_written += len(completed)
        return completed

    def rows(self) -> list[dict[str, Any]]:
        """All rows (uncounted bulk access for assertions/translation)."""
        return [dict(row) for row in self._rows]

    def remove_where(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete matching rows, returning the count removed."""
        kept = []
        removed = 0
        for row in self._rows:
            self.metrics.records_read += 1
            if predicate(row):
                removed += 1
                self.metrics.records_deleted += 1
            else:
                kept.append(row)
        self._rows = kept
        return removed

    def update_where(self, predicate: Callable[[dict[str, Any]], bool],
                     updates: dict[str, Any]) -> int:
        """Update matching rows in place, returning the count changed."""
        unknown = set(updates) - set(self.columns)
        if unknown:
            raise QueryError(
                f"relation {self.name}: unknown columns {sorted(unknown)}"
            )
        changed = 0
        for row in self._rows:
            self.metrics.records_read += 1
            if predicate(row):
                row.update(updates)
                changed += 1
                self.metrics.records_written += 1
        return changed

    def column_values(self, column: str) -> list[Any]:
        """The values of one column, in row order."""
        if column not in self.columns:
            raise QueryError(
                f"relation {self.name}: no column {column}"
            )
        return [row[column] for row in self._rows]

    def derived(self, name: str, columns: Iterable[str]) -> "Relation":
        """An empty relation sharing this one's metrics (for algebra
        results, so intermediate materialization is measured)."""
        return Relation(name, columns, metrics=self.metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name}({', '.join(self.columns)}) {len(self)} rows>"
