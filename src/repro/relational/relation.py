"""Relations: named, typed collections of tuples.

A :class:`Relation` is a materialized table -- either a base relation
living in a :class:`RelationalDatabase` or an intermediate result of
the algebra.  Rows are plain dicts; column order is declared and
preserved through operations so printed results are deterministic.

Base relations may carry maintained :class:`~repro.engine.index.HashIndex`
secondary indexes over column tuples (primary keys, foreign keys,
declared unique keys).  Indexes are kept consistent through
:meth:`append`/:meth:`extend`/:meth:`remove_where`/:meth:`update_where`
and consulted by the equality fast paths (:meth:`lookup_rows` and the
``equal=`` forms of the mutating verbs); ``use_indexes=False`` restores
the seed's linear-scan behaviour everywhere.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.engine.index import HashIndex
from repro.engine.metrics import Metrics
from repro.engine.savepoint import Savepoint, check_owner
from repro.errors import QueryError


class Relation:
    """An ordered collection of rows over a fixed column list."""

    def __init__(self, name: str, columns: Iterable[str],
                 rows: Iterable[dict[str, Any]] = (),
                 metrics: Metrics | None = None,
                 use_indexes: bool = True):
        self.name = name
        self.columns = list(columns)
        self.metrics = metrics if metrics is not None else Metrics()
        self.use_indexes = use_indexes
        self._rows: list[dict[str, Any]] = []
        #: Stable internal row ids, parallel to ``_rows`` (indexes
        #: reference rows by these so deletions cannot dangle).
        self._rids: list[int] = []
        self._row_by_rid: dict[int, dict[str, Any]] = {}
        self._next_rid = 1
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        # Lazy rid -> 0-based position map (positions shift on delete).
        self._pos_by_rid: dict[int, int] | None = None
        for row in rows:
            self.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        for row in self._rows:
            self.metrics.records_read += 1
            yield row

    # -- secondary indexes --------------------------------------------------

    def add_index(self, columns: Iterable[str]) -> HashIndex:
        """Declare (and build) a maintained index over a column tuple.

        Idempotent; returns the index.  With ``use_indexes=False`` the
        declaration is remembered as a no-op and lookups scan instead.
        """
        key_columns = tuple(columns)
        for column in key_columns:
            if column not in self.columns:
                raise QueryError(
                    f"relation {self.name}: no column {column}"
                )
        existing = self._indexes.get(key_columns)
        if existing is not None:
            return existing
        index = HashIndex(f"{self.name}({','.join(key_columns)})",
                          metrics=self.metrics)
        for rid, row in zip(self._rids, self._rows):
            index.insert(tuple(row[c] for c in key_columns), rid)
        self._indexes[key_columns] = index
        return index

    def indexed_columns(self) -> list[tuple[str, ...]]:
        """The column tuples with maintained indexes."""
        return list(self._indexes)

    def _index_insert(self, rid: int, row: dict[str, Any]) -> None:
        for key_columns, index in self._indexes.items():
            index.insert(tuple(row[c] for c in key_columns), rid)

    def _index_remove(self, rid: int, row: dict[str, Any]) -> None:
        for key_columns, index in self._indexes.items():
            index.remove(tuple(row[c] for c in key_columns), rid)

    def lookup_rows(self, equal: dict[str, Any]
                    ) -> list[dict[str, Any]] | None:
        """Rows matching every ``column = value`` pair via the best
        covering index, in row order -- or None when no index covers a
        subset of the pairs (or indexes are disabled).

        The caller must still apply any residual predicate: the chosen
        index may cover only a subset of the equality conjuncts.
        """
        index_key = self._best_index(equal)
        if index_key is None:
            return None
        rids = self._indexes[index_key].lookup(
            tuple(equal[c] for c in index_key)
        )
        self.metrics.index_hits += 1
        rows = [self._row_by_rid[rid] for rid in rids]
        self.metrics.records_read += len(rows)
        residual = [c for c in equal if c not in index_key]
        if residual:
            rows = [row for row in rows
                    if all(row[c] == equal[c] for c in residual)]
        return rows

    def lookup_positions(self, equal: dict[str, Any]
                         ) -> list[tuple[int, dict[str, Any]]] | None:
        """Like :meth:`lookup_rows` but pairing each row with its
        1-based row position (the DatabaseView rid), in row order."""
        index_key = self._best_index(equal)
        if index_key is None:
            return None
        rids = self._indexes[index_key].lookup(
            tuple(equal[c] for c in index_key)
        )
        self.metrics.index_hits += 1
        if self._pos_by_rid is None:
            self._pos_by_rid = {
                rid: pos for pos, rid in enumerate(self._rids)
            }
        out = []
        residual = [c for c in equal if c not in index_key]
        for rid in rids:
            row = self._row_by_rid[rid]
            self.metrics.records_read += 1
            if all(row[c] == equal[c] for c in residual):
                out.append((self._pos_by_rid[rid] + 1, row))
        return out

    def _best_index(self, equal: dict[str, Any]) -> tuple[str, ...] | None:
        """The widest maintained index whose columns all appear in the
        equality conjuncts."""
        if not self.use_indexes or not equal:
            return None
        best: tuple[str, ...] | None = None
        for key_columns in self._indexes:
            if all(column in equal for column in key_columns):
                if best is None or len(key_columns) > len(best):
                    best = key_columns
        return best

    # -- mutation ----------------------------------------------------------

    def append(self, row: dict[str, Any]) -> dict[str, Any]:
        """Add a row (missing columns become None; extras rejected)."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise QueryError(
                f"relation {self.name}: unknown columns {sorted(unknown)}"
            )
        complete = {col: row.get(col) for col in self.columns}
        rid = self._next_rid
        self._next_rid += 1
        self._rows.append(complete)
        self._rids.append(rid)
        self._row_by_rid[rid] = complete
        if self._pos_by_rid is not None:
            self._pos_by_rid[rid] = len(self._rows) - 1
        self._index_insert(rid, complete)
        self.metrics.records_written += 1
        return complete

    def extend(self, rows: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
        """Bulk :meth:`append`: same validation per row, one metrics
        update for the whole batch."""
        known = set(self.columns)
        completed = []
        for row in rows:
            unknown = set(row) - known
            if unknown:
                raise QueryError(
                    f"relation {self.name}: unknown columns "
                    f"{sorted(unknown)}"
                )
            completed.append({col: row.get(col) for col in self.columns})
        rid = self._next_rid
        for complete in completed:
            self._rows.append(complete)
            self._rids.append(rid)
            self._row_by_rid[rid] = complete
            if self._pos_by_rid is not None:
                self._pos_by_rid[rid] = len(self._rows) - 1
            self._index_insert(rid, complete)
            rid += 1
        self._next_rid = rid
        self.metrics.records_written += len(completed)
        return completed

    def rows(self) -> list[dict[str, Any]]:
        """All rows (uncounted bulk access for assertions/translation)."""
        return [dict(row) for row in self._rows]

    def remove_where(self, predicate: Callable[[dict[str, Any]], bool],
                     equal: dict[str, Any] | None = None) -> int:
        """Delete matching rows, returning the count removed.

        ``equal`` optionally names equality conjuncts already implied by
        the predicate; when an index covers them, only the candidate
        rows are tested instead of the whole relation.
        """
        doomed = self._candidate_rids(predicate, equal)
        if not doomed:
            return 0
        for rid in doomed:
            row = self._row_by_rid.pop(rid)
            self._index_remove(rid, row)
            self.metrics.records_deleted += 1
        kept_rows, kept_rids = [], []
        for rid, row in zip(self._rids, self._rows):
            if rid not in doomed:
                kept_rows.append(row)
                kept_rids.append(rid)
        self._rows = kept_rows
        self._rids = kept_rids
        self._pos_by_rid = None
        return len(doomed)

    def update_where(self, predicate: Callable[[dict[str, Any]], bool],
                     updates: dict[str, Any],
                     equal: dict[str, Any] | None = None) -> int:
        """Update matching rows in place, returning the count changed."""
        unknown = set(updates) - set(self.columns)
        if unknown:
            raise QueryError(
                f"relation {self.name}: unknown columns {sorted(unknown)}"
            )
        touched = [
            key_columns for key_columns in self._indexes
            if any(column in updates for column in key_columns)
        ]
        changed = self._candidate_rids(predicate, equal)
        for rid in changed:
            row = self._row_by_rid[rid]
            for key_columns in touched:
                self._indexes[key_columns].remove(
                    tuple(row[c] for c in key_columns), rid)
            row.update(updates)
            for key_columns in touched:
                self._indexes[key_columns].insert(
                    tuple(row[c] for c in key_columns), rid)
            self.metrics.records_written += 1
        return len(changed)

    def _candidate_rids(self, predicate: Callable[[dict[str, Any]], bool],
                        equal: dict[str, Any] | None) -> set[int]:
        """Rids of rows satisfying the predicate, via the narrowest
        available equality index else a counted full scan."""
        index_key = self._best_index(equal or {})
        if index_key is not None:
            self.metrics.index_hits += 1
            rids = self._indexes[index_key].lookup(
                tuple(equal[c] for c in index_key)
            )
            matched = set()
            for rid in rids:
                self.metrics.records_read += 1
                if predicate(self._row_by_rid[rid]):
                    matched.add(rid)
            return matched
        if equal:
            self.metrics.full_scans += 1
        matched = set()
        for rid, row in zip(self._rids, self._rows):
            self.metrics.records_read += 1
            if predicate(row):
                matched.add(rid)
        return matched

    def column_values(self, column: str) -> list[Any]:
        """The values of one column, in row order."""
        if column not in self.columns:
            raise QueryError(
                f"relation {self.name}: no column {column}"
            )
        return [row[column] for row in self._rows]

    # -- savepoints --------------------------------------------------------

    def savepoint(self) -> Savepoint:
        """Capture rows and rids.

        Rows are mutable dicts (``update_where`` writes in place), so
        each row is copied -- O(rows).  Secondary indexes are NOT
        captured; rollback rebuilds them from the restored rows, which
        costs the same one pass and cannot go stale.
        """
        return Savepoint("relation", id(self), payload=(
            [dict(row) for row in self._rows],
            list(self._rids),
            self._next_rid,
        ))

    def rollback(self, savepoint: Savepoint) -> None:
        check_owner(savepoint, "relation", self)
        rows, rids, next_rid = savepoint.payload
        self._rows = [dict(row) for row in rows]
        self._rids = list(rids)
        self._row_by_rid = dict(zip(self._rids, self._rows))
        self._next_rid = next_rid
        self._pos_by_rid = None
        for key_columns, index in self._indexes.items():
            index.restore_entries({})
            for rid, row in zip(self._rids, self._rows):
                index.insert(tuple(row[c] for c in key_columns), rid)

    def state_fingerprint_data(self) -> tuple:
        return (
            self.name,
            tuple(self.columns),
            self._next_rid,
            tuple(
                (rid, tuple(row.items()))
                for rid, row in zip(self._rids, self._rows)
            ),
        )

    def derived(self, name: str, columns: Iterable[str]) -> "Relation":
        """An empty relation sharing this one's metrics (for algebra
        results, so intermediate materialization is measured)."""
        return Relation(name, columns, metrics=self.metrics,
                        use_indexes=self.use_indexes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name}({', '.join(self.columns)}) {len(self)} rows>"
