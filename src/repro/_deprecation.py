"""Warn-once plumbing for the deprecated pre-facade entry points.

The :mod:`repro.api` facade replaced the divergent kwargs that had
accreted on :meth:`ConversionSupervisor.convert_program`,
:meth:`FallbackCascade.convert`, and :func:`repro.batch.convert_batch`
with one :class:`~repro.options.ConversionOptions` dataclass.  The old
signatures remain as thin shims; each distinct shim warns exactly once
per process (a batch looping a deprecated call site should not emit a
thousand identical warnings), keyed by shim name rather than call
site so the guarantee is testable.

This module has no repro dependencies so every layer can import it
without cycles.
"""

from __future__ import annotations

import warnings

#: Shim keys that have already warned in this process.
_WARNED: set[str] = set()


def warn_deprecated(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key``, at most once per process.

    The key is recorded *before* warning so a ``-W error`` run (the CI
    tier-1 configuration) that turns the warning into an exception
    still counts the shim as having warned.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which shims warned (test isolation hook)."""
    _WARNED.clear()
