"""CDML evaluation against a network database.

The access path "begins with a SYSTEM owned set or a collection of
previously retrieved target records" and "can be extended by set name
and record name pairs" (Section 4.2).  Traversal direction is inferred
per pair: owner -> member (downward, fan-out in set order) or member ->
owner (upward).  Results come back as ordered lists of records, one
per Section 4.2's "collections of records of a single record type".
"""

from __future__ import annotations

from typing import Any

from repro.cdml.ast import (
    Cmp,
    DeleteStmt,
    FindStmt,
    ModifyStmt,
    Qual,
    QualAnd,
    QualOr,
    SortStmt,
    Statement,
    StoreStmt,
)
from repro.engine.ordering import orderable
from repro.engine.storage import Record
from repro.errors import QueryError
from repro.network.database import NetworkDatabase
from repro.network.dml import DMLSession
from repro.network.sets import SYSTEM_OWNER_RID

_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
}


class CdmlEngine:
    """Executes CDML statements against one network database.

    Collections produced by FIND can be stashed under a ``$NAME`` and
    used as the start of a later path ("the output of one retrieval
    statement can provide input for another").
    """

    def __init__(self, db: NetworkDatabase):
        self.db = db
        self.collections: dict[str, list[Record]] = {}
        # Per-statement compiled-qualification cache, keyed by id()
        # with the node kept alive in the value (Qual trees are frozen
        # dataclasses; literal values may be unhashable).
        self._compiled: dict[int, tuple[Qual, Any]] = {}

    # -- qualification -------------------------------------------------

    def _matches(self, record: Record, qual: Qual | None) -> bool:
        if qual is None:
            return True
        cached = self._compiled.get(id(qual))
        if cached is not None and cached[0] is qual:
            return cached[1](record)
        compiled = self._compile_qual(qual)
        self._compiled[id(qual)] = (qual, compiled)
        return compiled(record)

    def _compile_qual(self, qual: Qual):
        """One qualification tree -> one closure over a record, so a
        FIND applied to thousands of candidates walks the tree once."""
        if isinstance(qual, Cmp):
            op = _OPS[qual.op]
            field_name = qual.field
            value = qual.value
            read_field = self.db.read_field
            return lambda record: op(read_field(record, field_name), value)
        if isinstance(qual, QualAnd):
            left = self._compile_qual(qual.left)
            right = self._compile_qual(qual.right)
            return lambda record: left(record) and right(record)
        if isinstance(qual, QualOr):
            left = self._compile_qual(qual.left)
            right = self._compile_qual(qual.right)
            return lambda record: left(record) or right(record)
        raise QueryError(f"unknown qualification {qual!r}")

    # -- FIND ----------------------------------------------------------

    def find(self, stmt: FindStmt) -> list[Record]:
        self.db.metrics.dml_calls += 1
        path = list(stmt.path)
        if not path:
            raise QueryError("FIND: empty path")
        head = path[0]

        current: list[Record] | None
        if head.name == "SYSTEM":
            if head.qual is not None:
                raise QueryError("FIND: SYSTEM cannot be qualified")
            current = None  # positioned at SYSTEM, before the first set
            index = 1
        elif head.name.startswith("$"):
            stash = self.collections.get(head.name)
            if stash is None:
                raise QueryError(f"FIND: no collection {head.name}")
            current = [r for r in stash if self._matches(r, head.qual)]
            index = 1
        else:
            raise QueryError(
                f"FIND: path must start with SYSTEM or a $collection, "
                f"got {head.name}"
            )

        while index < len(path):
            set_item = path[index]
            if set_item.qual is not None:
                raise QueryError(
                    f"FIND: set {set_item.name} cannot be qualified"
                )
            if index + 1 >= len(path):
                raise QueryError(
                    f"FIND: set {set_item.name} must be followed by a "
                    "record name"
                )
            record_item = path[index + 1]
            current = self._traverse(current, set_item.name, record_item.name,
                                     record_item.qual)
            index += 2

        if current is None:
            raise QueryError("FIND: path has no record steps")
        if current and current[0].type_name != stmt.target:
            raise QueryError(
                f"FIND: path ends at {current[0].type_name}, "
                f"target is {stmt.target}"
            )
        return current

    def _traverse(self, current: list[Record] | None, set_name: str,
                  record_name: str, qual: Qual | None) -> list[Record]:
        set_type = self.db.schema.set_type(set_name)
        set_store = self.db.set_store(set_name)
        out: list[Record] = []
        if current is None:
            # From SYSTEM through a SYSTEM-owned set.
            if not set_type.system_owned:
                raise QueryError(
                    f"FIND: set {set_name} is not SYSTEM-owned"
                )
            if set_type.member != record_name:
                raise QueryError(
                    f"FIND: {record_name} is not the member of {set_name}"
                )
            for rid in set_store.members(SYSTEM_OWNER_RID):
                self.db.metrics.set_traversals += 1
                record = self.db.store(record_name).fetch(rid)
                if self._matches(record, qual):
                    out.append(record)
            return out
        if not current:
            return []
        source_type = current[0].type_name
        if set_type.owner == source_type and set_type.member == record_name:
            # Downward: owners to members, in set order.
            for owner in current:
                for rid in set_store.members(owner.rid):
                    self.db.metrics.set_traversals += 1
                    record = self.db.store(record_name).fetch(rid)
                    if self._matches(record, qual):
                        out.append(record)
            return out
        if set_type.member == source_type and set_type.owner == record_name:
            # Upward: members to owners (duplicates collapsed, ordered
            # by first encounter).
            seen: set[int] = set()
            for member in current:
                owner_rid = set_store.owner(member.rid)
                if owner_rid is None or owner_rid in seen:
                    continue
                seen.add(owner_rid)
                self.db.metrics.set_traversals += 1
                record = self.db.store(record_name).fetch(owner_rid)
                if self._matches(record, qual):
                    out.append(record)
            return out
        raise QueryError(
            f"FIND: set {set_name} does not connect {source_type} "
            f"and {record_name}"
        )

    # -- other statements ---------------------------------------------------

    def sort(self, stmt: SortStmt) -> list[Record]:
        records = self.find(stmt.inner)
        self.db.metrics.sort_operations += 1
        return sorted(
            records,
            key=lambda r: tuple(
                orderable(self.db.read_field(r, key)) for key in stmt.keys
            ),
        )

    def store(self, stmt: StoreStmt) -> Record:
        session = DMLSession(self.db)
        values = dict(stmt.values)
        if stmt.ensure_path:
            self._ensure_owners(stmt.record, values)
        return session.store(stmt.record, values)

    def _ensure_owners(self, record_name: str,
                       values: dict[str, Any]) -> None:
        """Create missing interposed owners selected by virtual-field
        values (the conversion-inserted enforcement path).

        Virtual values routed through the *same* set select one owner
        together: an EMP stored with DEPT-NAME and (chained) DIV-NAME
        needs one DEPT matching both, connected under the right DIV.
        """
        record_type = self.db.schema.record(record_name)
        by_set: dict[str, dict[str, Any]] = {}
        for name, value in values.items():
            fld = record_type.field(name)
            if fld.is_virtual and value is not None:
                by_set.setdefault(fld.virtual_via, {})[
                    fld.virtual_using] = value
        for set_name, wanted in by_set.items():
            set_type = self.db.schema.set_type(set_name)
            exists = any(
                all(self.db.read_field(record, field_name) == value
                    for field_name, value in wanted.items())
                for record in self.db.store(set_type.owner).all_records()
            )
            if not exists:
                self._ensure_owners(set_type.owner, wanted)
                session = DMLSession(self.db)
                session.store(set_type.owner, wanted)

    def delete(self, stmt: DeleteStmt) -> int:
        records = self.find(stmt.find)
        for record in records:
            self.db.delete_record(record.type_name, record.rid,
                                  all_members=stmt.cascade)
        return len(records)

    def modify(self, stmt: ModifyStmt) -> int:
        records = self.find(stmt.find)
        for record in records:
            self.db.update_record(record.type_name, record.rid,
                                  dict(stmt.updates))
        return len(records)

    # -- dispatch --------------------------------------------------------------

    def execute(self, stmt: Statement, into: str | None = None):
        """Run any statement; FIND/SORT results may be stashed under a
        ``$NAME`` collection for later paths."""
        if isinstance(stmt, FindStmt):
            result = self.find(stmt)
        elif isinstance(stmt, SortStmt):
            result = self.sort(stmt)
        elif isinstance(stmt, StoreStmt):
            return self.store(stmt)
        elif isinstance(stmt, DeleteStmt):
            return self.delete(stmt)
        elif isinstance(stmt, ModifyStmt):
            return self.modify(stmt)
        else:
            raise QueryError(f"unknown statement {stmt!r}")
        if into is not None:
            if not into.startswith("$"):
                raise QueryError("collection names start with '$'")
            self.collections[into] = result
        return result
