"""CDML statement conversion under schema transformations.

"A conversion is considered as a sequence of transformations applied to
the source schema ... These same transformations are also used to
translate the database and to convert the DML statements written for
the source schema." (Section 4.2)

The headline rule is the interposition rewrite that produces the
paper's two converted FIND statements:

* qualification conjuncts that mention only the interposed record's key
  fields are *pushed down* onto the new record step;
* when those conjuncts pin every key field with equality, the original
  member order within the single remaining group is intact and no SORT
  is needed (the paper's MACHINERY/SALES example);
* otherwise the converted FIND is wrapped in ``SORT ... ON`` the
  original set's order keys (the paper's AGE > 30 example).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cdml.ast import (
    Cmp,
    DeleteStmt,
    FindStmt,
    ModifyStmt,
    PathItem,
    Qual,
    QualAnd,
    QualOr,
    SortStmt,
    Statement,
    StoreStmt,
    qual_and_all,
    split_conjuncts,
)
from repro.schema.diff import (
    ConstraintAdded,
    FieldRenamed,
    MembershipChanged,
    RecordInterposed,
    RecordRenamed,
    RecordsMerged,
    SchemaChange,
    SetOrderChanged,
    SetRenamed,
)
from repro.schema.model import Schema


@dataclass(frozen=True)
class ConversionResult:
    """A converted statement plus analyst-facing notes."""

    statement: Statement
    notes: tuple[str, ...] = ()


def convert_statement(stmt: Statement, changes: list[SchemaChange],
                      source_schema: Schema, target_schema: Schema,
                      strict: bool = False) -> ConversionResult:
    """Convert one CDML statement for a list of classified changes.

    With ``strict=False`` (default) the interposition rule emits the
    paper's own converted forms -- including its ``SORT ON (EMP-NAME)``
    wrapper, which preserves order only *within* upstream groups.  With
    ``strict=True`` the SORT keys are extended with the upstream sets'
    order keys (readable on the target through virtual-field chains)
    so the converted statement is exactly I/O-equivalent.
    """
    notes: list[str] = []
    for change in changes:
        stmt = _apply_change(stmt, change, source_schema, target_schema,
                             notes, strict)
    return ConversionResult(stmt, tuple(notes))


def _apply_change(stmt: Statement, change: SchemaChange,
                  source_schema: Schema, target_schema: Schema,
                  notes: list[str], strict: bool) -> Statement:
    if isinstance(change, RecordRenamed):
        return _rename_record(stmt, change.old_name, change.new_name)
    if isinstance(change, SetRenamed):
        return _rename_set(stmt, change.old_name, change.new_name)
    if isinstance(change, FieldRenamed):
        return _rename_field(stmt, change.record, change.old_name,
                             change.new_name, source_schema)
    if isinstance(change, RecordInterposed):
        return _interpose(stmt, change, source_schema, target_schema,
                          notes, strict)
    if isinstance(change, RecordsMerged):
        return _merge(stmt, change, source_schema, notes)
    if isinstance(change, SetOrderChanged):
        return _reorder(stmt, change, notes)
    if isinstance(change, MembershipChanged):
        notes.append(
            f"membership of set {change.set_name} changed "
            f"({change.old_insertion.value}/{change.old_retention.value} -> "
            f"{change.new_insertion.value}/{change.new_retention.value}); "
            "STORE/DELETE statements may now fail where they succeeded"
        )
        return stmt
    if isinstance(change, ConstraintAdded):
        notes.append(
            f"new constraint {change.constraint.describe()}: converted "
            "programs enforce the new requirement (Section 5.2: desired, "
            "but not strictly I/O equivalent)"
        )
        return stmt
    # Changes with no CDML impact (additions, removals handled upstream).
    return stmt


# ---------------------------------------------------------------------------
# Renames
# ---------------------------------------------------------------------------


def _map_find(stmt: Statement, fn) -> Statement:
    """Apply ``fn`` to every FindStmt inside a statement."""
    if isinstance(stmt, FindStmt):
        return fn(stmt)
    if isinstance(stmt, SortStmt):
        return replace(stmt, inner=fn(stmt.inner))
    if isinstance(stmt, DeleteStmt):
        return replace(stmt, find=fn(stmt.find))
    if isinstance(stmt, ModifyStmt):
        return replace(stmt, find=fn(stmt.find))
    return stmt


def _rename_record(stmt: Statement, old: str, new: str) -> Statement:
    def fix(find: FindStmt) -> FindStmt:
        return FindStmt(
            new if find.target == old else find.target,
            tuple(
                replace(item, name=new) if item.name == old else item
                for item in find.path
            ),
        )

    stmt = _map_find(stmt, fix)
    if isinstance(stmt, StoreStmt) and stmt.record == old:
        stmt = replace(stmt, record=new)
    return stmt


def _rename_set(stmt: Statement, old: str, new: str) -> Statement:
    def fix(find: FindStmt) -> FindStmt:
        return replace(find, path=tuple(
            replace(item, name=new) if item.name == old else item
            for item in find.path
        ))

    return _map_find(stmt, fix)


def _rename_qual_field(qual: Qual | None, old: str, new: str) -> Qual | None:
    if qual is None:
        return None
    if isinstance(qual, Cmp):
        return replace(qual, field=new) if qual.field == old else qual
    if isinstance(qual, QualAnd):
        return QualAnd(_rename_qual_field(qual.left, old, new),
                       _rename_qual_field(qual.right, old, new))
    return QualOr(_rename_qual_field(qual.left, old, new),
                  _rename_qual_field(qual.right, old, new))


def _rename_field(stmt: Statement, record: str, old: str, new: str,
                  source_schema: Schema) -> Statement:
    def fix(find: FindStmt) -> FindStmt:
        return replace(find, path=tuple(
            replace(item, qual=_rename_qual_field(item.qual, old, new))
            if item.name == record else item
            for item in find.path
        ))

    stmt = _map_find(stmt, fix)
    if isinstance(stmt, StoreStmt) and stmt.record == record:
        stmt = replace(stmt, values=tuple(
            (new if name == old else name, value)
            for name, value in stmt.values
        ))
    if isinstance(stmt, ModifyStmt) and stmt.find.target == record:
        stmt = replace(stmt, updates=tuple(
            (new if name == old else name, value)
            for name, value in stmt.updates
        ))
    if isinstance(stmt, SortStmt) and stmt.inner.target == record:
        stmt = replace(stmt, keys=tuple(
            new if key == old else key for key in stmt.keys
        ))
    return stmt


# ---------------------------------------------------------------------------
# Interposition (Figure 4.2 -> Figure 4.4)
# ---------------------------------------------------------------------------


def _split_key_conjuncts(qual: Qual | None,
                         key_fields: tuple[str, ...]
                         ) -> tuple[Qual | None, Qual | None, bool]:
    """Split a qualification into (key-only part, rest, pinned).

    ``pinned`` is True when equality conjuncts cover every key field --
    the condition under which the original member ordering survives.
    OR-groups mixing key and non-key fields cannot be split; they stay
    on the member (still correct: key fields are VIRTUAL there).
    """
    key_part: list[Qual] = []
    rest: list[Qual] = []
    pinned_fields: set[str] = set()
    for conjunct in split_conjuncts(qual):
        fields = conjunct.fields()
        if fields and fields <= set(key_fields):
            key_part.append(conjunct)
            if isinstance(conjunct, Cmp) and conjunct.op == "=":
                pinned_fields.add(conjunct.field)
        else:
            rest.append(conjunct)
    pinned = pinned_fields == set(key_fields)
    return qual_and_all(key_part), qual_and_all(rest), pinned


def _interpose(stmt: Statement, change: RecordInterposed,
               source_schema: Schema, target_schema: Schema,
               notes: list[str], strict: bool) -> Statement:
    if change.member:
        member_name, owner_name = change.member, change.owner
        sort_keys = change.order_keys
    else:
        set_type = source_schema.set_type(change.old_set)
        member_name, owner_name = set_type.member, set_type.owner
        sort_keys = set_type.order_keys
    needs_sort = False
    target_is_member = False
    upstream_keys: list[str] = []

    def fix(find: FindStmt) -> FindStmt:
        nonlocal needs_sort, target_is_member, upstream_keys
        path: list[PathItem] = []
        index = 0
        matched = False
        items = list(find.path)
        while index < len(items):
            item = items[index]
            if item.name != change.old_set:
                if (not matched and item.name in source_schema.sets
                        and index + 1 < len(items)):
                    # A set step before the restructured one: its order
                    # keys contribute to the source's result grouping,
                    # unless the following record step pins them.
                    keys = source_schema.set_type(item.name).order_keys
                    qual = items[index + 1].qual
                    if keys and not (qual is not None
                                     and _pins_all(qual, keys)):
                        upstream_keys.extend(keys)
                path.append(item)
                index += 1
                continue
            matched = True
            record_item = items[index + 1]
            if record_item.name == member_name:
                # Downward: OLD_SET, M(q) -> UPPER, N(q_key), LOWER, M(q_rest)
                key_qual, rest_qual, pinned = _split_key_conjuncts(
                    record_item.qual, change.key_fields
                )
                path.append(PathItem(change.upper_set))
                path.append(PathItem(change.new_record, key_qual))
                path.append(PathItem(change.lower_set))
                path.append(record_item.with_qual(rest_qual))
                if not pinned:
                    is_last = index + 2 >= len(items)
                    if is_last and find.target == member_name:
                        target_is_member = True
                        needs_sort = True
                    else:
                        notes.append(
                            f"FIND traverses restructured set "
                            f"{change.old_set} mid-path; result order may "
                            "differ from the source program "
                            "(analyst review advised)"
                        )
            elif record_item.name == owner_name:
                # Upward: OLD_SET, O(q) -> LOWER, N, UPPER, O(q)
                path.append(PathItem(change.lower_set))
                path.append(PathItem(change.new_record))
                path.append(PathItem(change.upper_set))
                path.append(record_item)
            else:
                path.append(item)
                path.append(record_item)
            index += 2
        return replace(find, path=tuple(path))

    converted = _map_find(stmt, fix)
    if needs_sort and target_is_member and sort_keys \
            and isinstance(converted, FindStmt):
        keys = list(sort_keys)
        if strict and upstream_keys:
            target_record = target_schema.record(member_name)
            readable = [k for k in upstream_keys
                        if target_record.has_field(k)]
            if len(readable) == len(upstream_keys):
                keys = readable + keys
                notes.append(
                    "strict mode: SORT keys extended with upstream "
                    f"grouping keys ({', '.join(readable)}) for exact "
                    "I/O equivalence"
                )
            else:
                missing = [k for k in upstream_keys
                           if not target_record.has_field(k)]
                notes.append(
                    f"strict mode: upstream grouping keys {missing} are "
                    f"not readable on {member_name}; falling back to "
                    "member-key SORT (order preserved only within groups)"
                )
        elif upstream_keys:
            notes.append(
                "SORT restores member-key order globally; the source "
                "grouped results by upstream sets "
                f"({', '.join(sorted(set(upstream_keys)))}) -- strict "
                "I/O equivalence needs strict mode (Section 5.2's "
                "'levels of successful conversion')"
            )
        notes.append(
            f"wrapped in SORT ON ({', '.join(keys)}) to preserve the "
            f"original {change.old_set} member ordering"
        )
        converted = SortStmt(converted, tuple(keys))
    elif needs_sort and not sort_keys:
        notes.append(
            f"set {change.old_set} had no order keys; original chained "
            "order cannot be reconstructed (analyst review advised)"
        )
    if isinstance(converted, StoreStmt) and \
            converted.record == member_name:
        stored_keys = {name for name, _ in converted.values}
        if stored_keys & set(change.key_fields):
            converted = replace(converted, ensure_path=True)
            notes.append(
                f"STORE {member_name} now routes through interposed "
                f"{change.new_record}; missing owners are created "
                "(conversion-inserted enforcement, Section 4.1)"
            )
    return converted


def _merge(stmt: Statement, change: RecordsMerged,
           source_schema: Schema, notes: list[str]) -> Statement:
    upper = source_schema.set_type(change.upper_set)
    lower = source_schema.set_type(change.lower_set)
    needs_sort = False

    def fix(find: FindStmt) -> FindStmt:
        nonlocal needs_sort
        path: list[PathItem] = []
        index = 0
        items = list(find.path)
        while index < len(items):
            item = items[index]
            # Downward O -> N -> M collapses to O -> M.
            if (item.name == change.upper_set
                    and index + 3 < len(items)
                    and items[index + 1].name == change.removed_record
                    and items[index + 2].name == change.lower_set):
                middle_qual = items[index + 1].qual
                member_item = items[index + 3]
                merged_qual = qual_and_all(
                    split_conjuncts(middle_qual)
                    + split_conjuncts(member_item.qual)
                )
                path.append(PathItem(change.new_set))
                path.append(member_item.with_qual(merged_qual))
                if middle_qual is None or not _pins_all(
                        middle_qual, change.inherited_fields):
                    needs_sort = True
                index += 4
                continue
            # Upward M -> N -> O collapses to M -> O.
            if (item.name == change.lower_set
                    and index + 3 < len(items)
                    and items[index + 1].name == change.removed_record
                    and items[index + 2].name == change.upper_set):
                if items[index + 1].qual is not None:
                    notes.append(
                        f"qualification on merged record "
                        f"{change.removed_record} during upward traversal "
                        "was re-attached to the member step"
                    )
                path.append(PathItem(change.new_set))
                path.append(items[index + 3])
                index += 4
                continue
            # A path ending at the removed record itself cannot be
            # converted mechanically.
            if item.name == change.removed_record:
                notes.append(
                    f"path step {change.removed_record} no longer exists "
                    "after the merge; analyst must redesign this access"
                )
            path.append(item)
            index += 1
        return replace(find, path=tuple(path))

    converted = _map_find(stmt, fix)
    if needs_sort and isinstance(converted, FindStmt) and \
            converted.target == lower.member:
        grouped_keys = tuple(change.inherited_fields) + lower.order_keys
        notes.append(
            f"wrapped in SORT ON ({', '.join(grouped_keys)}) to preserve "
            f"the source's grouped-by-{change.removed_record} ordering"
        )
        converted = SortStmt(converted, grouped_keys)
    del upper
    return converted


def _pins_all(qual: Qual, fields: tuple[str, ...]) -> bool:
    pinned = {
        c.field for c in split_conjuncts(qual)
        if isinstance(c, Cmp) and c.op == "="
    }
    return set(fields) <= pinned


# ---------------------------------------------------------------------------
# Order changes
# ---------------------------------------------------------------------------


def _reorder(stmt: Statement, change: SetOrderChanged,
             notes: list[str]) -> Statement:
    if isinstance(stmt, SortStmt):
        return stmt  # explicit SORT already fixes the order
    if not isinstance(stmt, FindStmt):
        return stmt
    uses = any(item.name == change.set_name for item in stmt.path)
    if not uses:
        return stmt
    last_set = stmt.path[-2].name if len(stmt.path) >= 2 else None
    if last_set == change.set_name and change.old_keys:
        notes.append(
            f"set {change.set_name} ordering changed; wrapped in SORT ON "
            f"({', '.join(change.old_keys)}) to preserve source order"
        )
        return SortStmt(stmt, tuple(change.old_keys))
    notes.append(
        f"set {change.set_name} ordering changed mid-path; result order "
        "may differ (analyst review advised)"
    )
    return stmt
