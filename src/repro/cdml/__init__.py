"""The Maryland conversion DDL/DML (Section 4.2).

"At the University of Maryland, the approach has been to create a new
DDL and DML which would be familiar while facilitating conversion."
The DDL is :mod:`repro.schema.ddl` (Figure 4.3); this package is the
DML: FIND statements naming a target record type and a qualified access
path, plus SORT, STORE, DELETE and MODIFY::

    FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30))
    FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
         DIV-EMP, EMP(DEPT-NAME = 'SALES'))

and the schema-transformation-driven statement conversion that turns
them into the Figure 4.4 forms (one SORT-wrapped, one not).
"""

from repro.cdml.ast import (
    Cmp,
    DeleteStmt,
    FindStmt,
    ModifyStmt,
    PathItem,
    Qual,
    QualAnd,
    QualOr,
    SortStmt,
    StoreStmt,
)
from repro.cdml.parser import parse_cdml
from repro.cdml.evaluator import CdmlEngine
from repro.cdml.transform import convert_statement

__all__ = [
    "Cmp",
    "QualAnd",
    "QualOr",
    "Qual",
    "PathItem",
    "FindStmt",
    "SortStmt",
    "StoreStmt",
    "DeleteStmt",
    "ModifyStmt",
    "parse_cdml",
    "CdmlEngine",
    "convert_statement",
]
