"""CDML abstract syntax.

A FIND statement is ``FIND(target: start, p1, p2, ...)`` where the
path alternates set names and record names starting from SYSTEM (or a
previously retrieved collection, named ``$VAR``).  Record items may
carry a boolean qualification over the record's fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Union


# -- qualifications -----------------------------------------------------------


@dataclass(frozen=True)
class Cmp:
    """``field op literal``."""

    field: str
    op: str
    value: Any

    def render(self) -> str:
        value = f"'{self.value}'" if isinstance(self.value, str) \
            else str(self.value)
        return f"{self.field} {self.op} {value}"

    def fields(self) -> set[str]:
        return {self.field}


@dataclass(frozen=True)
class QualAnd:
    left: "Qual"
    right: "Qual"

    def render(self) -> str:
        return f"{self.left.render()} AND {self.right.render()}"

    def fields(self) -> set[str]:
        return self.left.fields() | self.right.fields()


@dataclass(frozen=True)
class QualOr:
    left: "Qual"
    right: "Qual"

    def render(self) -> str:
        return f"({self.left.render()} OR {self.right.render()})"

    def fields(self) -> set[str]:
        return self.left.fields() | self.right.fields()


Qual = Union[Cmp, QualAnd, QualOr]


def qual_and_all(quals: list[Qual]) -> Qual | None:
    """Conjunction of a list of qualifications (None when empty)."""
    result: Qual | None = None
    for qual in quals:
        result = qual if result is None else QualAnd(result, qual)
    return result


def split_conjuncts(qual: Qual | None) -> list[Qual]:
    """Flatten top-level AND into a conjunct list."""
    if qual is None:
        return []
    if isinstance(qual, QualAnd):
        return split_conjuncts(qual.left) + split_conjuncts(qual.right)
    return [qual]


# -- path -----------------------------------------------------------------------


@dataclass(frozen=True)
class PathItem:
    """One path element: a set name or a (possibly qualified) record."""

    name: str
    qual: Qual | None = None

    def render(self) -> str:
        if self.qual is None:
            return self.name
        return f"{self.name}({self.qual.render()})"

    def with_qual(self, qual: Qual | None) -> "PathItem":
        return replace(self, qual=qual)


# -- statements ---------------------------------------------------------------------


@dataclass(frozen=True)
class FindStmt:
    """``FIND(target: path...)`` -- returns a collection of target
    records in access-path order."""

    target: str
    path: tuple[PathItem, ...]

    def render(self) -> str:
        items = ", ".join(item.render() for item in self.path)
        return f"FIND({self.target}: {items})"


@dataclass(frozen=True)
class SortStmt:
    """``SORT(FIND(...)) ON (keys)`` (Section 4.2's converted form)."""

    inner: FindStmt
    keys: tuple[str, ...]

    def render(self) -> str:
        return f"SORT({self.inner.render()}) ON ({', '.join(self.keys)})"


@dataclass(frozen=True)
class StoreStmt:
    """``STORE(record: F1 = v1, ...)``.

    ``ensure_path`` is set by statement conversion when a restructuring
    interposed a record on the storage path: the engine then creates
    the missing interposed owner, reproducing Su's "the system will
    insert statements to traverse this relationship and continue to
    enforce" (Section 4.1).
    """

    record: str
    values: tuple[tuple[str, Any], ...]
    ensure_path: bool = False

    def render(self) -> str:
        pairs = ", ".join(
            f"{name} = {value!r}" for name, value in self.values
        )
        return f"STORE({self.record}: {pairs})"


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE(FIND(...))`` -- erase every found record."""

    find: FindStmt
    cascade: bool = False

    def render(self) -> str:
        return f"DELETE({self.find.render()})"


@dataclass(frozen=True)
class ModifyStmt:
    """``MODIFY(FIND(...): F1 = v1, ...)``."""

    find: FindStmt
    updates: tuple[tuple[str, Any], ...]

    def render(self) -> str:
        pairs = ", ".join(
            f"{name} = {value!r}" for name, value in self.updates
        )
        return f"MODIFY({self.find.render()}: {pairs})"


Statement = Union[FindStmt, SortStmt, StoreStmt, DeleteStmt, ModifyStmt]
