"""CDML parser.

Accepts the Section 4.2 surface syntax::

    FIND(EMP: SYSTEM, ALL-DIV, DIV(DIV-NAME = 'MACHINERY'),
         DIV-EMP, EMP(DEPT-NAME = 'SALES'))
    SORT(FIND(EMP: SYSTEM, ALL-DIV, DIV, DIV-EMP, EMP(AGE > 30)))
        ON (EMP-NAME)
    STORE(EMP: EMP-NAME = 'JONES', AGE = 30)
    DELETE(FIND(...))
    MODIFY(FIND(...): AGE = 31)
"""

from __future__ import annotations

import re
from typing import Any

from repro.cdml.ast import (
    Cmp,
    DeleteStmt,
    FindStmt,
    ModifyStmt,
    PathItem,
    Qual,
    QualAnd,
    QualOr,
    SortStmt,
    Statement,
    StoreStmt,
)
from repro.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    '(?:[^']*)'
    | \$?[A-Za-z0-9][A-Za-z0-9\-#]*
    | <> | <= | >= | [=<>(),:]
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"CDML: unexpected character {text[pos]!r}")
        tokens.append(match.group(0))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise QueryError("CDML: unexpected end of statement")
        self._pos += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._next()
        if token.upper() != expected:
            raise QueryError(f"CDML: expected {expected!r}, got {token!r}")

    def _identifier(self) -> str:
        token = self._next()
        if not re.match(r"\$?[A-Za-z0-9]", token):
            raise QueryError(f"CDML: expected a name, got {token!r}")
        return token.upper()

    def _literal(self) -> Any:
        token = self._next()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        try:
            return int(token)
        except ValueError:
            raise QueryError(
                f"CDML: expected a literal, got {token!r}"
            ) from None

    def statement(self) -> Statement:
        keyword = self._identifier()
        if keyword == "FIND":
            return self._find()
        if keyword == "SORT":
            return self._sort()
        if keyword == "STORE":
            return self._store()
        if keyword == "DELETE":
            return self._delete()
        if keyword == "MODIFY":
            return self._modify()
        raise QueryError(f"CDML: unknown statement {keyword!r}")

    def _find(self) -> FindStmt:
        self._expect("(")
        target = self._identifier()
        self._expect(":")
        path = [self._path_item()]
        while self._peek() == ",":
            self._next()
            path.append(self._path_item())
        self._expect(")")
        return FindStmt(target, tuple(path))

    def _path_item(self) -> PathItem:
        name = self._identifier()
        qual = None
        if self._peek() == "(":
            self._next()
            qual = self._qual()
            self._expect(")")
        return PathItem(name, qual)

    def _qual(self) -> Qual:
        left = self._qual_term()
        while self._peek() is not None and \
                self._peek().upper() in ("AND", "OR"):
            op = self._next().upper()
            right = self._qual_term()
            left = QualAnd(left, right) if op == "AND" else QualOr(left, right)
        return left

    def _qual_term(self) -> Qual:
        if self._peek() == "(":
            self._next()
            inner = self._qual()
            self._expect(")")
            return inner
        field = self._identifier()
        op = self._next()
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            raise QueryError(f"CDML: expected an operator, got {op!r}")
        return Cmp(field, op, self._literal())

    def _sort(self) -> SortStmt:
        self._expect("(")
        keyword = self._identifier()
        if keyword != "FIND":
            raise QueryError("CDML: SORT expects a FIND argument")
        inner = self._find()
        self._expect(")")
        self._expect("ON")
        self._expect("(")
        keys = [self._identifier()]
        while self._peek() == ",":
            self._next()
            keys.append(self._identifier())
        self._expect(")")
        return SortStmt(inner, tuple(keys))

    def _assignments(self) -> tuple[tuple[str, Any], ...]:
        pairs = []
        while True:
            name = self._identifier()
            self._expect("=")
            pairs.append((name, self._literal()))
            if self._peek() == ",":
                self._next()
                continue
            break
        return tuple(pairs)

    def _store(self) -> StoreStmt:
        self._expect("(")
        record = self._identifier()
        self._expect(":")
        values = self._assignments()
        self._expect(")")
        return StoreStmt(record, values)

    def _delete(self) -> DeleteStmt:
        self._expect("(")
        keyword = self._identifier()
        if keyword != "FIND":
            raise QueryError("CDML: DELETE expects a FIND argument")
        find = self._find()
        self._expect(")")
        return DeleteStmt(find)

    def _modify(self) -> ModifyStmt:
        self._expect("(")
        keyword = self._identifier()
        if keyword != "FIND":
            raise QueryError("CDML: MODIFY expects a FIND argument")
        find = self._find()
        self._expect(":")
        updates = self._assignments()
        self._expect(")")
        return ModifyStmt(find, updates)


def parse_cdml(text: str) -> Statement:
    """Parse one CDML statement."""
    parser = _Parser(_tokenize(text))
    statement = parser.statement()
    trailing = parser._peek()
    if trailing is not None:
        raise QueryError(f"CDML: text after statement: {trailing!r}")
    return statement
