"""repro: a working reproduction of "Database Program Conversion: A
Framework for Research" (CODASYL Systems Committee, 1979).

The package builds everything the paper describes: the three 1979 data
models (CODASYL network, relational with a SEQUEL subset, hierarchical
with DL/I calls) over a common schema description, the host-program
model with I/O-trace equivalence, restructuring operators with data
translation and Housel inverses, the Figure 4.1 conversion pipeline
(analyzers, transformation rules, optimizer, generator, supervisor),
the Maryland CDML (Section 4.2), the Florida access patterns (Section
4.1), and the emulation/bridge baseline strategies (Section 2.1.2).

Quickstart::

    from repro.workloads import company
    from repro.network import NetworkDatabase
    from repro.restructure import restructure_database
    from repro.core import ConversionSupervisor

    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    db = company.company_db()
    target_schema, target_db = restructure_database(db, operator)

    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(my_program)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.api import (
    convert,
    convert_batch,
    default_catalog,
    load_rule_catalog,
    load_schema,
    reset_deprecation_warnings,
    run_bench,
)
from repro.catalog.model import RuleCatalog
from repro.errors import (
    AnalysisError,
    CatalogError,
    ConversionError,
    DMLError,
    EngineError,
    IntegrityError,
    NotInvertible,
    ReproError,
    RestructureError,
    SchemaError,
    UnconvertiblePattern,
)
from repro.options import ConversionOptions
from repro.parallel import ParallelExecutionError, ParallelExecutor, WorkerPool

__version__ = "1.4.0"

__all__ = [
    # -- facade (repro.api) -------------------------------------------
    "ConversionOptions",
    "convert",
    "convert_batch",
    "load_schema",
    "run_bench",
    "reset_deprecation_warnings",
    # -- rule catalogs (repro.catalog) --------------------------------
    "RuleCatalog",
    "default_catalog",
    "load_rule_catalog",
    # -- parallel execution -------------------------------------------
    "ParallelExecutor",
    "ParallelExecutionError",
    "WorkerPool",
    # -- error hierarchy ----------------------------------------------
    "ReproError",
    "EngineError",
    "SchemaError",
    "IntegrityError",
    "DMLError",
    "RestructureError",
    "NotInvertible",
    "ConversionError",
    "AnalysisError",
    "CatalogError",
    "UnconvertiblePattern",
    "__version__",
]
