"""Streaming span consumption: the tracer-to-event bridge.

The :class:`~repro.observe.tracing.Tracer` collects a span forest and
hands it over *after* the traced activity finishes -- the right shape
for trace files and profile tables, and the wrong one for a
long-running service that wants to narrate a conversion *while it
runs*.  :class:`StreamingTracer` closes that gap: it is an ordinary
tracer (the span forest, the registry snapshots, the sampling -- all
unchanged), except that every span it closes is also handed to an
``on_close`` callback, optionally filtered by name prefix.

:func:`span_event` renders a closed span as the flat JSON-able dict
the service's server-sent-event stream carries: name, duration,
attributes, and the ``supervision.*`` / ``cost.*`` counter movement
observed inside the span.  The schema is deliberately small -- it is
the service's public wire format (see README "Conversion as a
service"), not an export of the whole span tree.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.observe.tracing import Span, Tracer

#: Counter namespaces a :func:`span_event` carries: the self-healing
#: supervision counters and the COBRA cost-model counters, the two
#: bundles a conversion service's clients act on (respawn storms,
#: quarantine decisions, rewrite-skip rates).
EVENT_COUNTER_PREFIXES = ("supervision.", "cost.")


class StreamingTracer(Tracer):
    """A tracer that reports every closed span to a callback.

    ``on_close`` receives the :class:`~repro.observe.tracing.Span`
    *after* it closed -- ``end`` is set and the metrics delta is
    computed -- including spans that closed by exception, so a fault
    mid-conversion still produces its event.  ``prefixes`` restricts
    the callback to span names starting with any of the given strings
    (``None`` reports everything); unreported spans are still recorded
    in the span tree exactly as a plain tracer would.

    The callback runs on the traced thread, inside the instrumented
    region's caller: keep it cheap (the service's implementation
    appends to an in-memory event buffer) and never let it raise
    unless the intent is to abort the traced activity itself.
    """

    def __init__(
        self,
        on_close: Callable[[Span], None],
        prefixes: tuple[str, ...] | None = None,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        self.on_close = on_close
        self.prefixes = prefixes

    def _reports(self, name: str) -> bool:
        if self.prefixes is None:
            return True
        return name.startswith(self.prefixes)

    @contextmanager
    def span(
        self, name: str, capture_metrics: bool = True, **attrs: Any
    ) -> Iterator[Span]:
        closed: Span | None = None
        try:
            with super().span(
                name, capture_metrics=capture_metrics, **attrs
            ) as opened:
                closed = opened
                yield opened
        finally:
            # The inner context has exited by the time this finally
            # runs: end and metrics_delta are final, even when the
            # body raised.
            if closed is not None and self._reports(name):
                self.on_close(closed)


def span_event(
    span: Span,
    prefixes: tuple[str, ...] = EVENT_COUNTER_PREFIXES,
) -> dict[str, Any]:
    """A closed span as the service's flat SSE payload.

    ``{"name", "seconds", **attrs}`` plus a ``"counters"`` mapping of
    the span's non-zero counter movement restricted to ``prefixes``.
    Attribute values are used as-is -- instrumented sites only attach
    JSON-able scalars (program names, counts, outcomes).
    """
    event: dict[str, Any] = {
        "name": span.name,
        "seconds": round(span.duration, 6),
    }
    event.update(span.attrs)
    counters = {
        name: value
        for name, value in span.metrics_delta.items()
        if name.startswith(prefixes) and value
    }
    if counters:
        event["counters"] = counters
    return event


__all__ = ["EVENT_COUNTER_PREFIXES", "StreamingTracer", "span_event"]
