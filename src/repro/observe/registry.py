"""Unified metrics registry.

Before this layer the codebase grew three disjoint counter families:
engine :class:`~repro.engine.metrics.Metrics` bundles, snapshot
:class:`~repro.restructure.translator.SnapshotStats`, and the ad-hoc
per-strategy counts buried in benchmark reports.  The registry unifies
them under namespaced counter names (``engine.records_read``,
``snapshot.index_probes``, ``emulation.store``, ...) without touching
the hot increment paths: a counter bundle keeps its plain attribute
API (the back-compat shim -- every pre-existing call site still works
and still passes its exact-count tests) and *registers itself* at
construction; the registry aggregates on read by summing the live
bundles.

Writes therefore cost exactly what they cost in the seed -- one int
attribute store -- and reads (span snapshots, ``ConversionReport``
metrics) pay one pass over the live bundles.  Bundles are held weakly,
so the registry never extends an engine's lifetime; a snapshot taken
after a bundle is collected (or ``reset``) can be lower than one taken
before, which is why span deltas are computed within one span's
lifetime where the instrumented code keeps its bundles alive.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable, Protocol


class MetricsSource(Protocol):
    """Anything that can report namespaced counter values."""

    def metrics_items(self) -> Iterable[tuple[str, int]]:
        """Yield ``(namespaced_name, value)`` pairs."""
        ...


class MetricsRegistry:
    """An aggregated, named view over every registered counter bundle.

    ``snapshot()`` returns ``{namespaced_name: value}`` summed across
    the live bundles; two bundles reporting the same name (two engines,
    say) sum into one counter, which is the per-process total the
    observability layer wants.
    """

    def __init__(self) -> None:
        self._sources: weakref.WeakValueDictionary[int, MetricsSource] = (
            weakref.WeakValueDictionary()
        )
        self._lock = threading.Lock()

    def register(self, source: MetricsSource) -> None:
        """Add a counter bundle to the aggregate view (weakly held)."""
        with self._lock:
            self._sources[id(source)] = source

    def sources(self) -> list[MetricsSource]:
        """The currently-live registered bundles."""
        with self._lock:
            return list(self._sources.values())

    def snapshot(self) -> dict[str, int]:
        """Sum every live bundle into one ``{name: value}`` dict."""
        out: dict[str, int] = {}
        for source in self.sources():
            for name, value in source.metrics_items():
                out[name] = out.get(name, 0) + value
        return dict(sorted(out.items()))


def registry_delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    """The non-zero counter movement between two registry snapshots.

    Counters absent from ``before`` count from zero; counters that
    vanished from ``after`` (a collected bundle) are dropped rather
    than reported as negative.
    """
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


class NamedCounters:
    """A mutable bag of namespaced counters, registered on creation.

    The migration target for counter families that never had a typed
    bundle -- e.g. the per-verb emulation and bridge counts.  ``bump``
    is a dict increment, so it is safe on hot paths.
    """

    def __init__(self, namespace: str, registry: "MetricsRegistry | None" = None):
        self.namespace = namespace
        self._counts: dict[str, int] = {}
        (registry if registry is not None else get_registry()).register(self)

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment one counter (created at zero on first use)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """The current value of one counter (zero when never bumped)."""
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain dict copy of the current counts (un-namespaced)."""
        return dict(self._counts)

    def metrics_items(self) -> Iterable[tuple[str, int]]:
        """Yield ``(namespace.name, value)`` pairs for the registry."""
        for name, value in self._counts.items():
            yield f"{self.namespace}.{name}", value

    def __getstate__(self) -> dict:
        return {"namespace": self.namespace, "_counts": self._counts}

    def __setstate__(self, state: dict) -> None:
        # Mirror Metrics.__setstate__: a counter bag rehydrated in a
        # worker process (the cascade's cost counters travel inside
        # the pickled pool seed) must re-register so its movement
        # shows up in the worker's registry deltas.
        self.namespace = state["namespace"]
        self._counts = state["_counts"]
        get_registry().register(self)


class FrozenMetricsSource:
    """An immutable ``{name: value}`` bag exposed as a registry source.

    The parallel coordinator absorbs each worker's registry delta by
    wrapping it in one of these and registering it: the worker's counts
    then sum into the coordinator's aggregate view exactly as if the
    work had run in-process.  The registry holds sources weakly, so the
    absorber must keep a strong reference for as long as the counts
    should remain visible.
    """

    def __init__(self, counts: dict[str, int]):
        self._counts = dict(counts)

    def metrics_items(self) -> Iterable[tuple[str, int]]:
        return iter(self._counts.items())


#: The process-wide registry every bundle registers into by default.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _GLOBAL


#: Process-wide named-counter bundles, held strongly (the registry
#: itself only holds sources weakly).
_NAMED: dict[str, NamedCounters] = {}
_NAMED_LOCK = threading.Lock()


def named_counters(namespace: str) -> NamedCounters:
    """The process-wide :class:`NamedCounters` bag for ``namespace``.

    Counter families that have no natural owner object -- e.g. the
    batch supervisor's ``supervision.*`` counts, bumped from the
    coordinator, the serial engine, and worker processes alike -- need
    a bundle that outlives any one conversion.  This accessor creates
    the bag on first use, keeps a strong reference so the registry's
    weak registration never drops it, and returns the same instance for
    the life of the process (in a worker, that is the worker process:
    its movement reaches the coordinator through the registry delta
    shipped at flush).
    """
    with _NAMED_LOCK:
        counters = _NAMED.get(namespace)
        if counters is None:
            counters = NamedCounters(namespace)
            _NAMED[namespace] = counters
        return counters
