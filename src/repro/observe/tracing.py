"""Context-var based tracing: timed span trees over the pipeline.

A :class:`Tracer` produces a tree of :class:`Span` objects.  The
current span lives in a :mod:`contextvars` context variable, so
nesting follows the call stack and two threads (which start from
fresh contexts) never see each other's spans.  Instrumented code uses
the module-level :func:`span` / :func:`sampled_span` helpers: when no
tracer is active they return one shared null context manager, so the
tracing-off cost is a single context-var read per instrumented site.

Real spans close with a snapshot of the unified metrics registry and
the non-zero delta over their lifetime, tying the paper's
access-path-length counters to wall-clock phases; per-program-run hot
spans opt out with ``capture_metrics=False`` so the two registry reads
do not dominate the region they measure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Iterator

from repro.observe.registry import MetricsRegistry, get_registry, registry_delta

#: How many same-named sampled spans share one recorded span by
#: default.  Prime, so sampling does not phase-lock with the power-of-
#: ten loop strides the workload generators favour.
DEFAULT_SAMPLE_EVERY = 97


@dataclass
class Span:
    """One timed region: name, attributes, children, metrics movement.

    ``start``/``end`` are clock readings (``time.perf_counter`` unless
    the tracer was given another clock); ``metrics`` is the registry
    snapshot at close (non-zero entries only) and ``metrics_delta`` the
    movement between open and close.
    """

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)
    metrics: dict[str, int] = field(default_factory=dict)
    metrics_delta: dict[str, int] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        return (self.end if self.end is not None else self.start) - self.start

    def self_seconds(self) -> float:
        """Duration not attributed to any child span."""
        return self.duration - sum(child.duration for child in self.children)

    def set_attr(self, name: str, value: Any) -> None:
        """Attach one attribute (safe on the null span too)."""
        self.attrs[name] = value

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        """The native tree form (see :mod:`repro.observe.export`)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        if self.metrics_delta:
            out["metrics_delta"] = dict(self.metrics_delta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree written by :meth:`to_dict`."""
        return cls(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            start=data["start"],
            end=data.get("end"),
            children=[cls.from_dict(child) for child in data.get("children", ())],
            metrics=dict(data.get("metrics", {})),
            metrics_delta=dict(data.get("metrics_delta", {})),
        )


class _NullSpan:
    """The do-nothing span handed out when no tracer is active."""

    __slots__ = ()

    def set_attr(self, name: str, value: Any) -> None:
        """Discard the attribute."""

    def __bool__(self) -> bool:
        return False


#: Shared null span; ``span(...)`` yields it when tracing is off.
NULL_SPAN = _NullSpan()


class _NullContext:
    """The do-nothing context manager behind inactive ``span()`` calls."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()

#: The tracer instrumented code reports to, per execution context.
#: Threads start from fresh contexts, so a tracer activated in one
#: thread is invisible to the others -- the isolation the cascade's
#: differential probes rely on.
_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro-active-tracer", default=None)


class Tracer:
    """Collects a forest of spans for one traced activity.

    Activate with ``with tracer:`` -- every :func:`span` call in the
    same execution context then records into ``tracer.roots``.  Spans
    opened while another span is open nest under it (tracked with a
    context variable, so threads and async tasks stay isolated).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        registry: MetricsRegistry | None = None,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
    ):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.roots: list[Span] = []
        self.sample_every = sample_every
        self._clock = clock
        self._registry = registry if registry is not None else get_registry()
        self._current: ContextVar[Span | None] = ContextVar(
            "repro-current-span", default=None
        )
        self._sample_counts: dict[str, int] = {}
        self._tokens: list[Any] = []

    # -- activation ----------------------------------------------------

    def __enter__(self) -> "Tracer":
        self._tokens.append(_ACTIVE.set(self))
        return self

    def __exit__(self, *exc_info: object) -> bool:
        _ACTIVE.reset(self._tokens.pop())
        return False

    # -- spans ---------------------------------------------------------

    @contextmanager
    def span(
        self, name: str, capture_metrics: bool = True, **attrs: Any
    ) -> Iterator[Span]:
        """Open a child of the current span (or a new root).

        ``capture_metrics=False`` skips the open/close registry
        snapshots -- the opt-out for spans opened once per program
        execution (the interpreter's ``program.run``), where two
        full-registry reads would dominate the measured region.
        """
        parent = self._current.get()
        opened = Span(name, dict(attrs), start=self._clock())
        before = self._registry.snapshot() if capture_metrics else {}
        if parent is None:
            self.roots.append(opened)
        else:
            parent.children.append(opened)
        token = self._current.set(opened)
        try:
            yield opened
        finally:
            self._current.reset(token)
            opened.end = self._clock()
            if capture_metrics:
                after = self._registry.snapshot()
                opened.metrics = {k: v for k, v in after.items() if v}
                opened.metrics_delta = registry_delta(before, after)

    def sampled_span(self, name: str, **attrs: Any) -> ContextManager[Any]:
        """Record every ``sample_every``-th same-named span.

        Unrecorded calls still count; ``sample_counts`` carries the
        true per-name totals, and each recorded span is stamped with
        the 1-based ``sample_index`` it represents.
        """
        count = self._sample_counts.get(name, 0) + 1
        self._sample_counts[name] = count
        if (count - 1) % self.sample_every:
            return _NULL_CONTEXT
        return self.span(name, sample_index=count, **attrs)

    @property
    def sample_counts(self) -> dict[str, int]:
        """True call counts per sampled-span name (copies)."""
        return dict(self._sample_counts)


def current_tracer() -> Tracer | None:
    """The tracer active in this execution context, if any."""
    return _ACTIVE.get()


def span(name: str, capture_metrics: bool = True, **attrs: Any) -> ContextManager[Any]:
    """A span on the active tracer, or the shared null context."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, capture_metrics=capture_metrics, **attrs)


def sampled_span(name: str, **attrs: Any) -> ContextManager[Any]:
    """A sampled span on the active tracer, or the null context."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.sampled_span(name, **attrs)
