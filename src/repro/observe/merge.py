"""Merging worker span forests into a coordinator trace.

Each parallel worker process runs under its own :class:`Tracer` with
its own ``time.perf_counter`` origin, so its span timestamps mean
nothing in the coordinator's clock.  The merge rebases every worker
span by a constant offset (preserving all durations and gaps), wraps
the worker's forest under one synthetic ``parallel.worker`` root span,
and appends that root to the coordinator's tracer.

The synthetic root spans exactly the interval from its first child's
start to its last child's end, so the profile table's reconciliation
invariant survives the merge: within each root, self times still
partition the root's duration exactly (the worker root's own self time
is precisely the idle gap between its children's spans).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.observe.tracing import Span, Tracer

#: Name of the synthetic per-worker root span.
WORKER_ROOT = "parallel.worker"


def rebase_spans(spans: Iterable[Span], offset: float) -> None:
    """Shift every span (and descendant) by ``offset`` seconds,
    in place.  Durations and inter-span gaps are unchanged."""
    for root in spans:
        for node in root.walk():
            node.start += offset
            if node.end is not None:
                node.end += offset


def worker_root(
    worker_id: int, spans: list[Span], **attrs: Any
) -> Span:
    """Wrap a worker's (non-empty) span forest under one root span
    covering exactly the children's envelope.

    Extra ``attrs`` ride on the root (the warm-pool executor has no
    per-batch attrs today, but chunk provenance can mount here without
    another merge-shape change).
    """
    if not spans:
        raise ValueError("cannot root an empty span forest")
    start = min(node.start for node in spans)
    end = max(node.end if node.end is not None else node.start for node in spans)
    return Span(
        WORKER_ROOT,
        {"worker": worker_id, **attrs},
        start=start,
        end=end,
        children=list(spans),
    )


def merge_worker_trace(
    tracer: Tracer,
    worker_id: int,
    span_dicts: list[dict[str, Any]],
    worker_base: float,
    coordinator_base: float,
    **attrs: Any,
) -> Span | None:
    """Fold one worker's serialized span forest into ``tracer``.

    ``worker_base`` is the worker's clock reading when it started its
    first program; ``coordinator_base`` is the coordinator-clock
    instant the parallel batch began.  Rebasing by their difference
    places every worker's spans on the coordinator timeline starting
    at the batch start, so concurrent workers overlap there just as
    they did in real time.

    Returns the appended root span, or ``None`` for an empty forest
    (a worker with no assigned programs).  Extra ``attrs`` land on the
    synthetic root (the executor stamps each worker's cost-model
    counters there, so a trace shows which workers skipped rewrites).
    """
    spans = [Span.from_dict(entry) for entry in span_dicts]
    if not spans:
        return None
    rebase_spans(spans, coordinator_base - worker_base)
    root = worker_root(worker_id, spans, **attrs)
    tracer.roots.append(root)
    return root


__all__ = [
    "WORKER_ROOT",
    "merge_worker_trace",
    "rebase_spans",
    "worker_root",
]
