"""Observability: structured tracing plus a unified metrics registry.

The paper puts a Conversion Supervisor over five phases precisely
because conversion jobs are long-running and opaque -- the Conversion
Analyst needs to see *where* a conversion spends its time and *why* a
strategy was chosen.  This package is the cross-cutting layer that
answers both questions:

* :mod:`repro.observe.registry` -- one :class:`MetricsRegistry` giving
  a namespaced, aggregated view over every live counter bundle in the
  process (engine :class:`~repro.engine.metrics.Metrics`, snapshot
  :class:`~repro.restructure.translator.SnapshotStats`, per-verb
  strategy counters), with zero write-path overhead: bundles keep
  their plain attribute APIs and register themselves for reading.
* :mod:`repro.observe.tracing` -- a context-var based :class:`Tracer`
  whose :func:`span` context manager produces a tree of timed spans,
  each closing with a registry snapshot and delta.  When no tracer is
  active every ``span(...)`` call is a shared null context manager, so
  instrumented code pays one context-var read when tracing is off.
* :mod:`repro.observe.export` -- Chrome ``chrome://tracing`` event
  export (plus a native tree form in the same file), round-trip
  loading, and the per-phase/per-operator profile table.
* :mod:`repro.observe.stream` -- :class:`StreamingTracer`, the
  span-to-event bridge behind the conversion service's server-sent
  progress stream: every closed span is handed to a callback while
  the traced activity is still running.
"""

from repro.observe.export import (
    load_trace,
    profile_rows,
    profile_summary,
    render_profile,
    spans_from_chrome,
    to_chrome,
    write_trace,
)
from repro.observe.merge import (
    WORKER_ROOT,
    merge_worker_trace,
    rebase_spans,
    worker_root,
)
from repro.observe.registry import (
    FrozenMetricsSource,
    MetricsRegistry,
    NamedCounters,
    get_registry,
    named_counters,
    registry_delta,
)
from repro.observe.stream import (
    EVENT_COUNTER_PREFIXES,
    StreamingTracer,
    span_event,
)
from repro.observe.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    sampled_span,
    span,
)

__all__ = [
    "EVENT_COUNTER_PREFIXES",
    "FrozenMetricsSource",
    "MetricsRegistry",
    "NamedCounters",
    "NULL_SPAN",
    "WORKER_ROOT",
    "Span",
    "StreamingTracer",
    "Tracer",
    "current_tracer",
    "span_event",
    "get_registry",
    "load_trace",
    "merge_worker_trace",
    "named_counters",
    "rebase_spans",
    "worker_root",
    "profile_rows",
    "profile_summary",
    "registry_delta",
    "render_profile",
    "sampled_span",
    "span",
    "spans_from_chrome",
    "to_chrome",
    "write_trace",
]
