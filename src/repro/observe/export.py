"""Trace serialization and the profile table.

One trace file serves two audiences: the ``traceEvents`` key is the
Chrome trace event format (open the file in ``chrome://tracing`` or
Perfetto), and the ``reproTrace`` key is the native span-tree form
this package reads back losslessly.  Chrome-only files (or files
produced by other tools) are reconstructed from event containment.

The profile table aggregates spans by name into calls / total /
self-time rows; self times partition the root span's duration exactly
(every recorded instant belongs to exactly one innermost span), which
is the reconciliation property ``repro convert --profile`` and the
observability tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.jsonio import write_json_atomic
from repro.observe.tracing import Span, Tracer

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


def _roots(trace: "Tracer | Iterable[Span]") -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.roots)
    return list(trace)


def chrome_events(trace: "Tracer | Iterable[Span]") -> list[dict[str, Any]]:
    """Flatten a span forest into Chrome complete ('X') events.

    Timestamps are microseconds from the earliest span start, one
    event per span in depth-first order; attributes and the metrics
    delta ride in ``args``.
    """
    roots = _roots(trace)
    if not roots:
        return []
    base = min(root.start for root in roots)
    events: list[dict[str, Any]] = []
    for root in roots:
        for node in root.walk():
            args: dict[str, Any] = dict(node.attrs)
            if node.metrics_delta:
                args["metrics_delta"] = dict(node.metrics_delta)
            events.append(
                {
                    "name": node.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (node.start - base) * 1e6,
                    "dur": node.duration * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
    return events


def to_chrome(trace: "Tracer | Iterable[Span]") -> dict[str, Any]:
    """The full trace document: Chrome events plus the native tree."""
    roots = _roots(trace)
    return {
        "traceEvents": chrome_events(roots),
        "displayTimeUnit": "ms",
        "reproTrace": {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "spans": [root.to_dict() for root in roots],
        },
    }


def write_trace(trace: "Tracer | Iterable[Span]", out_path: "str | Path") -> Path:
    """Serialize a trace to ``out_path`` (atomic, parents created)."""
    return write_json_atomic(to_chrome(trace), out_path)


def spans_from_chrome(events: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild a span forest from Chrome complete events.

    Nesting is inferred from interval containment, which is exact for
    traces this package wrote (children open after and close before
    their parent); zero-duration boundary ties can land a span one
    level off, so the native ``reproTrace`` form is preferred when
    present (see :func:`load_trace`).
    """
    complete = [event for event in events if event.get("ph") == "X"]
    ordered = sorted(complete, key=lambda event: (event["ts"], -event.get("dur", 0.0)))
    roots: list[Span] = []
    stack: list[tuple[Span, float]] = []
    for event in ordered:
        start = event["ts"] / 1e6
        end = start + event.get("dur", 0.0) / 1e6
        args = dict(event.get("args", {}))
        delta = args.pop("metrics_delta", {})
        node = Span(
            event.get("name", "?"),
            args,
            start=start,
            end=end,
            metrics_delta=dict(delta),
        )
        while stack and start >= stack[-1][1]:
            stack.pop()
        if stack:
            stack[-1][0].children.append(node)
        else:
            roots.append(node)
        stack.append((node, end))
    return roots


def load_trace(path: "str | Path") -> list[Span]:
    """Load a trace file back into a span forest.

    Accepts the documents :func:`write_trace` produces (native tree
    preferred), bare Chrome ``{"traceEvents": [...]}`` documents, and
    bare event arrays.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and "reproTrace" in data:
        spans = data["reproTrace"].get("spans", [])
        return [Span.from_dict(entry) for entry in spans]
    if isinstance(data, dict) and "spans" in data:
        return [Span.from_dict(entry) for entry in data["spans"]]
    if isinstance(data, dict):
        return spans_from_chrome(data.get("traceEvents", []))
    return spans_from_chrome(data)


# ---------------------------------------------------------------------------
# Profile table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileRow:
    """Aggregate of every span sharing one name."""

    name: str
    calls: int
    total_seconds: float
    self_seconds: float


def profile_rows(trace: "Tracer | Iterable[Span]") -> list[ProfileRow]:
    """Aggregate spans by name, hottest self-time first."""
    agg: dict[str, list[float]] = {}
    for root in _roots(trace):
        for node in root.walk():
            entry = agg.setdefault(node.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += node.duration
            entry[2] += node.self_seconds()
    rows = [
        ProfileRow(name, int(calls), total, self_s)
        for name, (calls, total, self_s) in agg.items()
    ]
    rows.sort(key=lambda row: (-row.self_seconds, row.name))
    return rows


def profile_summary(
    trace: "Tracer | Iterable[Span]", top: int | None = None
) -> list[dict[str, Any]]:
    """The profile as JSON-able rows (for ``BENCH_*.json`` reports)."""
    rows = profile_rows(trace)
    if top is not None:
        rows = rows[:top]
    return [
        {
            "name": row.name,
            "calls": row.calls,
            "total_seconds": row.total_seconds,
            "self_seconds": row.self_seconds,
        }
        for row in rows
    ]


def render_profile(trace: "Tracer | Iterable[Span]", top: int | None = None) -> str:
    """The human-readable per-phase/per-operator time table.

    Self times sum to the root spans' wall clock (the reconciliation
    line at the bottom makes the accounting visible).
    """
    roots = _roots(trace)
    rows = profile_rows(roots)
    shown = rows if top is None else rows[:top]
    root_total = sum(root.duration for root in roots)
    lines = [f"{'span':<40} {'calls':>7} {'total':>10} {'self':>10} {'self%':>7}"]
    for row in shown:
        share = (row.self_seconds / root_total * 100) if root_total else 0.0
        lines.append(
            f"{row.name:<40} {row.calls:>7} {row.total_seconds:>9.4f}s"
            f" {row.self_seconds:>9.4f}s {share:>6.1f}%"
        )
    if top is not None and len(rows) > top:
        lines.append(f"... {len(rows) - top} more span name(s)")
    total_self = sum(row.self_seconds for row in rows)
    lines.append(
        f"{len(roots)} root span(s), {root_total:.4f}s wall clock; "
        f"self times sum to {total_self:.4f}s"
    )
    return "\n".join(lines)
