#!/usr/bin/env python3
"""The paper's own conversion, end to end: Figures 4.2 -> 4.4.

* parses the Figure 4.3 DDL;
* applies the InterposeRecord restructuring (DEPT between DIV and EMP);
* translates the database instance;
* converts the paper's two FIND statements -- reproducing the paper's
  printed converted forms exactly -- and runs source and target to show
  which are strictly equivalent;
* converts a STORE and shows the conversion-inserted group creation.

Run:  python examples/company_restructure.py
"""

from repro.cdml import CdmlEngine, convert_statement, parse_cdml
from repro.restructure import restructure_database
from repro.schema.ddl import format_ddl
from repro.workloads import company


def main() -> None:
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    changes = operator.changes(schema)
    source_db = company.company_db(seed=1979, divisions=3,
                                   employees_per_division=8)
    target_schema, target_db = restructure_database(source_db, operator)

    print("=== target schema (the Figure 4.4 structure) ===")
    print(format_ddl(target_schema))

    source_engine = CdmlEngine(source_db)
    target_engine = CdmlEngine(target_db)

    for label, text in (("query 1", company.FIND_OVER_30),
                        ("query 2", company.FIND_MACHINERY_SALES)):
        print(f"=== {label} ===")
        print(f"source   : {text}")
        statement = parse_cdml(text)
        paper = convert_statement(statement, changes, schema,
                                  target_schema)
        strict = convert_statement(statement, changes, schema,
                                   target_schema, strict=True)
        print(f"paper    : {paper.statement.render()}")
        print(f"strict   : {strict.statement.render()}")
        for note in paper.notes:
            print(f"  note: {note}")
        source_names = [r["EMP-NAME"] for r in source_engine.find(statement)]
        paper_names = [r["EMP-NAME"]
                       for r in target_engine.execute(paper.statement)]
        strict_names = [r["EMP-NAME"]
                        for r in target_engine.execute(strict.statement)]
        print(f"source answers : {source_names}")
        print(f"paper answers  : {paper_names}"
              f"  ({'strict' if paper_names == source_names else 'order differs'})")
        print(f"strict answers : {strict_names}"
              f"  ({'strict' if strict_names == source_names else 'order differs'})")
        print()

    print("=== STORE conversion ===")
    store_text = ("STORE(EMP: EMP-NAME = 'NEWHIRE', DEPT-NAME = 'ROBOTICS',"
                  " AGE = 27, DIV-NAME = 'MACHINERY')")
    statement = parse_cdml(store_text)
    converted = convert_statement(statement, changes, schema, target_schema)
    print(f"source   : {store_text}")
    print(f"converted: {converted.statement.render()}")
    for note in converted.notes:
        print(f"  note: {note}")
    departments_before = target_db.count("DEPT")
    target_engine.execute(converted.statement)
    print(f"DEPT groups before: {departments_before}, "
          f"after: {target_db.count('DEPT')} "
          "(the missing ROBOTICS group was created)")
    target_db.verify_consistent()
    print("target database consistent: yes")


if __name__ == "__main__":
    main()
