#!/usr/bin/env python3
"""Mehl & Wang's hierarchical order transformation (Section 2.2).

A course hierarchy (offerings and textbooks under courses) has its
sibling segment order swapped.  A DL/I program that counts the
dependents of a course with an *untyped* GNP loop keeps working; one
that depends on visit order would not -- so command substitution
rewrites the untyped loop into typed loops in the original order, and
the converted program's trace matches the source exactly.

Run:  python examples/hierarchical_reorder.py
"""

from repro.core.command_substitution import convert_hierarchical_program
from repro.hierarchical import HierarchicalDatabase
from repro.programs import ast
from repro.programs import builder as b
from repro.programs.ast import render_program
from repro.programs.interpreter import run_program
from repro.restructure import SwapSiblingOrder, restructure_database
from repro.schema import Schema

HIER_OK = ast.Bin("=", ast.Var("DB-STATUS"), ast.Const("  "))


def build_schema() -> Schema:
    schema = Schema("IMS")
    schema.define_record("COURSE", {"CNO": "X(6)"}, calc_keys=["CNO"])
    schema.define_record("OFFERING", {"S": "X(4)"})
    schema.define_record("TEXTBOOK", {"TITLE": "X(12)"})
    schema.define_set("ALL-COURSE", "SYSTEM", "COURSE", order_keys=["CNO"])
    schema.define_set("C-OFF", "COURSE", "OFFERING", order_keys=["S"])
    schema.define_set("C-TXT", "COURSE", "TEXTBOOK", order_keys=["TITLE"])
    return schema


def populate(schema: Schema) -> HierarchicalDatabase:
    db = HierarchicalDatabase(schema)
    for cno in ("C1", "C2"):
        course = db.insert_segment("COURSE", {"CNO": cno})
        for term in ("F78", "S79"):
            db.insert_segment("OFFERING", {"S": term},
                              ("COURSE", course.rid))
        db.insert_segment("TEXTBOOK", {"TITLE": f"{cno}-PRIMER"},
                          ("COURSE", course.rid))
    return db


def walk_program() -> ast.Program:
    return b.program("COUNT-DEPS", "hierarchical", "IMS", [
        b.gu(b.ssa("COURSE", "CNO", "=", "C1")),
        b.assign("N", 0),
        b.gnp(),
        b.while_(HIER_OK, [
            b.assign("N", b.add(b.v("N"), 1)),
            b.gnp(),
        ]),
        b.display("C1 DEPENDENTS:", b.v("N")),
    ])


def main() -> None:
    schema = build_schema()
    swap = SwapSiblingOrder("COURSE", ("C-TXT", "C-OFF"))
    change = swap.changes(schema)[0]

    source_db = populate(schema)
    print("source hierarchical sequence:",
          " ".join(name for name, _ in source_db.preorder()))
    _target_schema, target_db = restructure_database(
        populate(schema), swap, target_model="hierarchical")
    print("target hierarchical sequence:",
          " ".join(name for name, _ in target_db.preorder()))

    print("\n=== source program ===")
    print(render_program(walk_program()))
    source_trace = run_program(walk_program(), source_db,
                               consistent=False)
    print("source trace:", source_trace.terminal_lines())

    result = convert_hierarchical_program(walk_program(), change, schema)
    print("\n=== converted program (command substitution) ===")
    print(render_program(result.program))
    for note in result.notes:
        print(f"note: {note}")

    converted_trace = run_program(result.program, target_db,
                                  consistent=False)
    print("converted trace:", converted_trace.terminal_lines())
    print("\ntraces identical:", converted_trace == source_trace)


if __name__ == "__main__":
    main()
