#!/usr/bin/env python3
"""The Michigan code-template approach (Section 4.3).

Programs are written as nested code templates -- each "correspond[ing]
to a operator in the relational algebra" -- and conversion happens at
the algebra level: the schema transformation rewrites the expression,
which is then re-expanded into target DML.  No program analysis, which
is the point: "the problem of decompiling an arbitrary host language
program which does not use code templates is a open problem".

Run:  python examples/michigan_templates.py
"""

from repro.core import ProgramGenerator
from repro.core.abstract import ACond
from repro.core.code_templates import (
    Join,
    Project,
    RelationRef,
    Select,
    TemplateProgram,
    convert_algebra,
    expand,
)
from repro.programs import ast
from repro.programs.ast import render_program
from repro.programs.interpreter import run_program
from repro.restructure import restructure_database
from repro.workloads import company


def main() -> None:
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()

    template = TemplateProgram(
        "SALES-REPORT", "COMPANY-NAME",
        Project(
            Select(
                Join(RelationRef("DIV"), "DIV-EMP", "EMP"),
                (ACond("DEPT-NAME", "=", ast.Const("SALES")),
                 ACond("AGE", ">", ast.Const(40))),
            ),
            ("DIV.DIV-NAME", "EMP.EMP-NAME"),
        ),
    )
    print("=== template program (relational-algebra form) ===")
    print(template.render())

    source_program = ProgramGenerator(schema).generate(
        expand(template, schema), "network")
    print("\n=== expanded to CODASYL DML ===")
    print(render_program(source_program))

    source_db = company.company_db(seed=1979)
    source_trace = run_program(source_program, source_db,
                               consistent=False)
    print("source answers:")
    for line in source_trace.terminal_lines():
        print(f"  {line}")

    # -- algebra-level conversion (Schindler) ---------------------------
    changes = operator.changes(schema)
    target_schema = operator.apply_schema(schema)
    converted = convert_algebra(template, changes)
    print("\n=== converted template (Figure 4.2 -> 4.4 change) ===")
    print(converted.render())

    target_program = ProgramGenerator(target_schema).generate(
        expand(converted, target_schema), "network")
    print("\n=== re-expanded for the target schema ===")
    print(render_program(target_program))

    _ts, target_db = restructure_database(company.company_db(seed=1979),
                                          operator)
    target_trace = run_program(target_program, target_db,
                               consistent=False)
    print("target answers:")
    for line in target_trace.terminal_lines():
        print(f"  {line}")

    same = sorted(source_trace.terminal_lines()) == \
        sorted(target_trace.terminal_lines())
    print(f"\nanswers identical (as multisets): {same}")


if __name__ == "__main__":
    main()
