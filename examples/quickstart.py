#!/usr/bin/env python3
"""Quickstart: one database program through every box of Figure 4.1.

The paper's architecture (Conversion Analyzer, Program Analyzer,
Program Converter, Optimizer, Program Generator, all under the
Conversion Supervisor) is driven end to end for the paper's own
restructuring -- Figure 4.2's company database gaining a DEPT level
(Figure 4.4) -- and every intermediate artifact is printed.

Run:  python examples/quickstart.py
"""

from repro.core import ConversionSupervisor, check_equivalence
from repro.core.abstract import render_abstract
from repro.core.analyzer_db import ConversionAnalyzer
from repro.programs import builder as b
from repro.programs.ast import render_program
from repro.restructure import restructure_database
from repro.schema.ddl import format_ddl
from repro.workloads import company


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    # -- the inputs of Section 1.1 -----------------------------------------
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    source_db = company.company_db(seed=1979)

    banner("Source schema (Figure 4.3)")
    print(format_ddl(schema))

    banner("Restructuring definition")
    print(operator.describe())

    # -- a database program against the source schema ----------------------
    program = b.program("LIST-OLD-EMPLOYEES", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 50), [
                b.display(b.field("EMP", "EMP-NAME"),
                          b.field("EMP", "DEPT-NAME")),
            ]),
        ]),
        b.display("END OF REPORT"),
    ])
    banner("Source program")
    print(render_program(program))

    # -- Conversion Analyzer ------------------------------------------------
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    banner("Conversion Analyzer: classified changes")
    print(catalog.summary())

    # -- the full supervisor run -------------------------------------------
    supervisor = ConversionSupervisor(schema, operator)
    report = supervisor.convert_program(program)

    banner("Program Analyzer: abstract source program")
    print(render_abstract(report.abstract_source))

    banner("Converter + Optimizer: abstract target program")
    print(render_abstract(report.abstract_target))

    banner("Program Generator: target program")
    print(render_program(report.target_program))

    banner("Supervisor report")
    print(report.render())

    # -- "runs equivalently" (Section 1.1) ----------------------------------
    target_schema, target_db = restructure_database(source_db, operator)
    fresh_source = company.company_db(seed=1979)
    result = check_equivalence(program, fresh_source,
                               report.target_program, target_db,
                               warnings=tuple(report.warnings))
    banner("Equivalence check")
    print(result.render())
    print("\nsource trace:")
    print(result.source_trace.render())
    print("\ntarget trace:")
    print(result.target_trace.render())
    del target_schema


if __name__ == "__main__":
    main()
