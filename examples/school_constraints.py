#!/usr/bin/env python3
"""The Figure 3.1 school database and the Section 3.1 constraint story.

Demonstrates, on a live CODASYL database:

1. existence enforcement: inserting a course offering fails when its
   course does not exist (AUTOMATIC + MANDATORY membership);
2. the "null instructor" option: offerings may exist without an
   instructor (MANUAL + OPTIONAL);
3. the ERASE hazard: erasing an instructor WITH ALL MEMBERS silently
   deletes its offerings;
4. the rule no 1979 model could declare -- "a course may not be
   offered more than twice in a school year" -- caught by the
   declarative CardinalityLimit;
5. the same instance in relational form (Figure 3.1a) with CNO and S
   foreign-key columns.

Run:  python examples/school_constraints.py
"""

from repro.errors import ExistenceViolation
from repro.network import DMLSession
from repro.workloads import school


def main() -> None:
    db = school.school_network_db(seed=1979)
    session = DMLSession(db)
    print(f"school database: {db.count('COURSE')} courses, "
          f"{db.count('SEMESTER')} semesters, "
          f"{db.count('OFFERING')} offerings, "
          f"{db.count('INSTRUCTOR')} instructors")

    # 1. existence enforcement ------------------------------------------------
    print("\n[1] inserting an offering for a course that does not exist:")
    try:
        session.store("OFFERING", {"SECTION": 1, "ENROLLMENT": 10,
                                   "CNO": "GHOST", "S": "F75"})
    except ExistenceViolation as error:
        print(f"    refused: {error}")

    # 2. the null-instructor option -------------------------------------------
    print("\n[2] an offering without an instructor is legal "
          "(MANUAL/OPTIONAL set):")
    offering = db.store("OFFERING").all_records()[0]
    owner = db.owner_record(school.INSTRUCTOR_OFF, offering.rid)
    print(f"    offering rid {offering.rid} instructor: {owner}")
    db.verify_consistent()
    print("    database consistent: yes")

    # 3. the ERASE hazard -----------------------------------------------------
    print("\n[3] ERASE instructor WITH ALL MEMBERS deletes offerings:")
    instructor = session.find_any("INSTRUCTOR")
    session.find_any("COURSE", **{"CNO": "C000"})
    session.find_first("OFFERING", school.COURSE_OFF)
    session.find_any("INSTRUCTOR", **{"INAME": instructor["INAME"]})
    session.find_current("OFFERING")
    session.connect(school.INSTRUCTOR_OFF)
    before = db.count("OFFERING")
    session.find_any("INSTRUCTOR", **{"INAME": instructor["INAME"]})
    session.erase(all_members=True)
    print(f"    offerings before: {before}, after: {db.count('OFFERING')}"
          f"  (one offering silently gone -- the Section 3.1 hazard)")

    # 4. the twice-per-year rule ------------------------------------------------
    print("\n[4] offering course C001 three times in one year:")
    semesters = db.store("SEMESTER").all_records()
    by_year: dict[int, list[str]] = {}
    for semester in semesters:
        by_year.setdefault(semester["YEAR"], []).append(semester["S"])
    year, keys = next((y, k) for y, k in by_year.items() if len(k) >= 2)
    for index, key in enumerate((keys * 2)[:3]):
        session.find_any("COURSE", **{"CNO": "C001"})
        session.store("OFFERING", {"SECTION": 70 + index,
                                   "ENROLLMENT": 5,
                                   "CNO": "C001", "S": key})
    violations = db.check_constraints()
    for violation in violations:
        print(f"    violation: {violation}")
    print(f"    (rule: LIMIT {school.COURSE_OFF} TO 2 PER (YEAR) "
          f"for year {year})")

    # 5. the relational form ---------------------------------------------------
    print("\n[5] the same schema in relational form (Figure 3.1a):")
    relational = school.school_relational_db(seed=1979)
    row = relational.relation("OFFERING").rows()[0]
    print(f"    OFFERING row: {row}")
    print("    (CNO and S are the foreign keys the paper's Figure 3.1a "
          "shows)")


if __name__ == "__main__":
    main()
