#!/usr/bin/env python3
"""Section 2.1.2's three strategies, head to head.

The same source program runs against the restructured database through

* DML emulation (Honeywell Task 609 style),
* a bridge program with differential files (WAND style), and
* framework rewriting (Figure 4.1),

at three database sizes.  Operation counts reproduce the paper's
qualitative claim: rewriting avoids both the per-call emulation
overhead and the bridge's reconstruction cost.

Run:  python examples/strategy_shootout.py
"""

from repro.core.analyzer_db import ConversionAnalyzer
from repro.programs import builder as b
from repro.restructure import restructure_database
from repro.strategies import (
    BridgeStrategy,
    EmulationStrategy,
    RewriteStrategy,
)
from repro.workloads import company


def report_program():
    return b.program("REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.if_(b.gt(b.field("EMP", "AGE"), 40), [
                b.display(b.field("EMP", "EMP-NAME")),
            ]),
        ]),
    ])


def main() -> None:
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()
    catalog = ConversionAnalyzer().analyze_operator(schema, operator)
    program = report_program()

    print(f"{'size':>6} | {'strategy':<10} | {'cost':>6} | "
          f"{'reads':>6} | {'dml':>5} | {'mapping':>7} | {'bridge':>7}")
    print("-" * 66)
    for size in (10, 40, 160):
        for name in ("rewrite", "emulation", "bridge"):
            source_db = company.company_db(seed=1979,
                                           employees_per_division=size)
            _ts, target_db = restructure_database(source_db, operator)
            if name == "emulation":
                strategy = EmulationStrategy(target_db, catalog)
            elif name == "bridge":
                strategy = BridgeStrategy(target_db, operator, catalog)
            else:
                strategy = RewriteStrategy(target_db, schema, operator)
            run = strategy.run(program)
            metrics = run.metrics
            print(f"{size:>6} | {name:<10} | {run.cost():>6} | "
                  f"{metrics.records_read:>6} | {metrics.dml_calls:>5} | "
                  f"{metrics.emulation_mappings:>7} | "
                  f"{metrics.bridge_materializations:>7}")
        print("-" * 66)
    print("\nshape: cost(rewrite) < cost(emulation) < cost(bridge), "
          "bridge growing with database size (Section 2.1.2).")


if __name__ == "__main__":
    main()
