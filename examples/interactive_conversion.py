#!/usr/bin/env python3
"""The Conversion Analyst in the loop (Section 4).

"We expect that an interactive system would be most successful in
resolving issues of database integrity and application program
requirements" -- this example shows the three analyst touch-points:

1. a program whose DML verb arrives from the terminal (Section 3.2)
   fails mechanical analysis; the analyst pins the verb and conversion
   proceeds;
2. the Conversion Analyzer proposes rename hypotheses for remove+add
   schema pairs, which the analyst would confirm;
3. an information-reducing restructuring makes a program genuinely
   unconvertible, and the supervisor reports exactly why.

Run:  python examples/interactive_conversion.py
"""

from repro.core import ConversionSupervisor, RefusingAnalyst
from repro.core.analyzer_db import ConversionAnalyzer
from repro.programs import builder as b
from repro.programs.ast import render_program
from repro.restructure import DropField, RenameField, RenameRecord
from repro.workloads import company


def variable_verb_program():
    return b.program("OPERATOR-CONSOLE", "network", "COMPANY-NAME", [
        b.accept("REQUEST", prompt="OPERATION?"),
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        b.generic_call(b.v("REQUEST"), "EMP", **{
            "EMP-NAME": "CONSOLE-HIRE", "DEPT-NAME": "SALES",
            "AGE": 30, "DIV-NAME": "MACHINERY",
        }),
        b.display("REQUEST COMPLETE"),
    ])


def main() -> None:
    schema = company.figure_42_schema()
    operator = company.figure_44_operator()

    # -- 1. verb variability: refused, then analyst-pinned ----------------
    print("=" * 70)
    print("[1] run-time verb variability (Section 3.2)")
    print("=" * 70)
    program = variable_verb_program()
    print(render_program(program))

    refusing = ConversionSupervisor(schema, operator,
                                    analyst=RefusingAnalyst())
    report = refusing.convert_program(program)
    print(f"without the analyst: {report.status}")
    print(f"  reason: {report.failure}\n")

    assisted = ConversionSupervisor(
        schema, operator,
        verb_pins={"OPERATOR-CONSOLE": {0: "STORE"}})
    report = assisted.convert_program(program)
    print(f"with the analyst pinning the verb to STORE: {report.status}")
    for question in report.questions:
        print(f"  analyst dialogue: {question}")
    print()
    print(render_program(report.target_program))

    # -- 2. rename hypotheses ------------------------------------------------
    print("=" * 70)
    print("[2] rename inference (Section 5.1)")
    print("=" * 70)
    renamed = RenameRecord("EMP", "WORKER").apply_schema(schema)
    renamed = RenameField("WORKER", "AGE", "YEARS").apply_schema(renamed)
    analyzer = ConversionAnalyzer()
    print("the analyst receives these hypotheses for confirmation:")
    for suggestion in analyzer.suggest_renames(schema, renamed):
        print(f"  {suggestion.render()}")
    print()

    # -- 3. genuinely unconvertible ---------------------------------------------
    print("=" * 70)
    print("[3] information-reducing change (Section 5.2)")
    print("=" * 70)
    reader = b.program("AGE-REPORT", "network", "COMPANY-NAME", [
        b.find_any("DIV", **{"DIV-NAME": "MACHINERY"}),
        *b.scan_set("EMP", "DIV-EMP", [
            b.display(b.field("EMP", "AGE")),
        ]),
    ])
    dropping = ConversionSupervisor(
        schema, DropField("EMP", "AGE", force=True))
    report = dropping.convert_program(reader)
    print(f"status: {report.status}")
    print(f"reason: {report.failure}")
    print("(the paper: 'conversion when not all information is preserved "
          "is a different and more difficult conversion problem')")


if __name__ == "__main__":
    main()
